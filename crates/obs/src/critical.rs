//! Critical-path extraction: where each query's issue-to-decision latency
//! actually went.
//!
//! For one resolved query, the attributed events between its `query-init`
//! and `query-resolved` records form a time-ordered chain (the simulator
//! dispatches in time order, and the JSONL trace preserves dispatch
//! order). Each inter-event gap is classified by the event that *ends* it:
//! a `transmit` ends a **queueing** wait (the message sat behind the link's
//! busy time), a `deliver`/`loss` ends a **transit** span, an
//! `annotate`/`query-resolved` ends an **annotation** span (judging
//! evidence at the origin), and everything else ends **scheduler wait**
//! (planning, PIT bookkeeping, timer waits between retries).
//!
//! Because every accounted event advances the walk's clock and the walk
//! runs from `query-init` to the terminal event, the four segment sums
//! partition the observed latency exactly:
//! `queueing + transit + annotation + scheduler_wait == latency_us`.
//! That identity is asserted by the conservation tests, so the breakdown
//! can be trusted as an accounting of real simulated time, not an estimate.
//!
//! Announce-flood records and background (prefetch-class) transmissions are
//! excluded from the walk — they serve the query but are not on its
//! resolve path; their time folds into the enclosing segment. Their bytes
//! are still charged in the [`CostLedger`](crate::ledger::CostLedger).

use crate::attrib::{LedgerView, ViewKind};
use crate::json::JsonValue;

/// How one query's issue-to-decision latency decomposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathBreakdown {
    /// Time spent waiting for links to free up (ended by a `transmit`).
    pub queueing_us: u64,
    /// Time on the wire (ended by a `deliver` or `loss`).
    pub transit_us: u64,
    /// Time judging evidence at the origin (ended by `annotate`/resolve).
    pub annotation_us: u64,
    /// Everything else: planning, PIT bookkeeping, retry timers.
    pub scheduler_wait_us: u64,
}

impl PathBreakdown {
    /// Segment names in [`PathBreakdown::fractions`] order.
    pub const SEGMENT_NAMES: [&'static str; 4] =
        ["queueing", "transit", "annotation", "scheduler_wait"];

    /// Sum of all four segments; equals the query's observed latency for
    /// resolved queries.
    pub fn total_us(&self) -> u64 {
        self.queueing_us
            .saturating_add(self.transit_us)
            .saturating_add(self.annotation_us)
            .saturating_add(self.scheduler_wait_us)
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, other: &PathBreakdown) {
        self.queueing_us = self.queueing_us.saturating_add(other.queueing_us);
        self.transit_us = self.transit_us.saturating_add(other.transit_us);
        self.annotation_us = self.annotation_us.saturating_add(other.annotation_us);
        self.scheduler_wait_us = self
            .scheduler_wait_us
            .saturating_add(other.scheduler_wait_us);
    }

    /// The four segments as fractions of the total, or `None` for an empty
    /// (zero-length) path.
    pub fn fractions(&self) -> Option<[f64; 4]> {
        let total = self.total_us();
        if total == 0 {
            return None;
        }
        let t = total as f64;
        Some([
            self.queueing_us as f64 / t,
            self.transit_us as f64 / t,
            self.annotation_us as f64 / t,
            self.scheduler_wait_us as f64 / t,
        ])
    }

    /// The breakdown as an ordered JSON object (microsecond fields).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "queueing_us".into(),
                JsonValue::Int(self.queueing_us as i64),
            ),
            ("transit_us".into(), JsonValue::Int(self.transit_us as i64)),
            (
                "annotation_us".into(),
                JsonValue::Int(self.annotation_us as i64),
            ),
            (
                "scheduler_wait_us".into(),
                JsonValue::Int(self.scheduler_wait_us as i64),
            ),
        ])
    }
}

/// Incremental critical-path walk state for one query. O(1) memory: only
/// the walk clock and the four accumulators are kept, so a live sink can
/// maintain one per in-flight query without buffering the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathWalk {
    started: bool,
    done: bool,
    last_us: u64,
    breakdown: PathBreakdown,
}

/// Which segment an event terminates, if it is on the resolve path at all.
fn segment_of(kind: &ViewKind) -> Option<Segment> {
    match kind {
        ViewKind::Transmit {
            msg, background, ..
        } => {
            if msg == "announce" || *background {
                None
            } else {
                Some(Segment::Queueing)
            }
        }
        ViewKind::Deliver { msg } => {
            if msg == "announce" {
                None
            } else {
                Some(Segment::Transit)
            }
        }
        ViewKind::Loss { .. } => Some(Segment::Transit),
        ViewKind::Annotate | ViewKind::QueryResolved { .. } => Some(Segment::Annotation),
        _ => Some(Segment::SchedulerWait),
    }
}

#[derive(Debug, Clone, Copy)]
enum Segment {
    Queueing,
    Transit,
    Annotation,
    SchedulerWait,
}

impl PathWalk {
    /// Advance the walk with one event already known to be attributed to
    /// this walk's query.
    pub fn observe(&mut self, view: &LedgerView) {
        if self.done {
            return;
        }
        if matches!(view.kind, ViewKind::QueryInit) {
            self.started = true;
            self.last_us = view.t_us;
            return;
        }
        if !self.started {
            return;
        }
        let Some(segment) = segment_of(&view.kind) else {
            return;
        };
        let gap = view.t_us.saturating_sub(self.last_us);
        self.last_us = view.t_us;
        match segment {
            Segment::Queueing => {
                self.breakdown.queueing_us = self.breakdown.queueing_us.saturating_add(gap)
            }
            Segment::Transit => {
                self.breakdown.transit_us = self.breakdown.transit_us.saturating_add(gap)
            }
            Segment::Annotation => {
                self.breakdown.annotation_us = self.breakdown.annotation_us.saturating_add(gap)
            }
            Segment::SchedulerWait => {
                self.breakdown.scheduler_wait_us =
                    self.breakdown.scheduler_wait_us.saturating_add(gap)
            }
        }
        if matches!(
            view.kind,
            ViewKind::QueryResolved { .. } | ViewKind::QueryMissed
        ) {
            self.done = true;
        }
    }

    /// The breakdown accumulated so far.
    pub fn breakdown(&self) -> &PathBreakdown {
        &self.breakdown
    }

    /// Whether the walk reached a terminal event.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(t_us: u64, kind: ViewKind) -> LedgerView {
        LedgerView {
            t_us,
            node: 0,
            kind,
            query: Some(1),
            pred: None,
        }
    }

    fn tx(t_us: u64, msg: &str, background: bool) -> LedgerView {
        view(
            t_us,
            ViewKind::Transmit {
                msg: msg.to_string(),
                bytes: 100,
                background,
            },
        )
    }

    #[test]
    fn segments_partition_the_latency() {
        let mut walk = PathWalk::default();
        walk.observe(&view(100, ViewKind::QueryInit));
        walk.observe(&view(110, ViewKind::RequestSend { name: "/a".into() })); // 10us scheduler
        walk.observe(&tx(130, "request", false)); // 20us queueing
        walk.observe(&view(180, ViewKind::Deliver { msg: "data".into() })); // 50us transit
        walk.observe(&view(200, ViewKind::Annotate)); // 20us annotation
        walk.observe(&view(
            250,
            ViewKind::QueryResolved {
                outcome: "viable".into(),
                latency_us: 150,
            },
        )); // 50us annotation
        let b = *walk.breakdown();
        assert!(walk.is_done());
        assert_eq!(b.scheduler_wait_us, 10);
        assert_eq!(b.queueing_us, 20);
        assert_eq!(b.transit_us, 50);
        assert_eq!(b.annotation_us, 70);
        assert_eq!(b.total_us(), 150, "segments must sum to the latency");
    }

    #[test]
    fn announce_and_background_traffic_fold_into_the_next_segment() {
        let mut walk = PathWalk::default();
        walk.observe(&view(0, ViewKind::QueryInit));
        walk.observe(&tx(10, "announce", false)); // excluded
        walk.observe(&tx(30, "data", true)); // background: excluded
        walk.observe(&tx(40, "request", false)); // 40us queueing (absorbs both)
        walk.observe(&view(
            50,
            ViewKind::QueryResolved {
                outcome: "viable".into(),
                latency_us: 50,
            },
        ));
        let b = *walk.breakdown();
        assert_eq!(b.queueing_us, 40);
        assert_eq!(b.annotation_us, 10);
        assert_eq!(b.total_us(), 50);
    }

    #[test]
    fn events_after_resolution_are_ignored() {
        let mut walk = PathWalk::default();
        walk.observe(&view(0, ViewKind::QueryInit));
        walk.observe(&view(
            5,
            ViewKind::QueryResolved {
                outcome: "viable".into(),
                latency_us: 5,
            },
        ));
        walk.observe(&tx(100, "data", false));
        assert_eq!(walk.breakdown().total_us(), 5);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = PathBreakdown {
            queueing_us: 10,
            transit_us: 20,
            annotation_us: 30,
            scheduler_wait_us: 40,
        };
        let f = b.fractions().expect("non-empty");
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(PathBreakdown::default().fractions(), None);
    }
}

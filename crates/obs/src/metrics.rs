//! Live wall-clock metrics: a lock-free registry of counters, gauges, and
//! fixed-bucket histograms with a deterministic exposition snapshot.
//!
//! This module serves the *live* cluster backend (`dde-net`'s TCP runtime),
//! which is the one sanctioned place in the workspace where wall-clock time
//! and thread scheduling exist (DESIGN.md §5g). The metric *values* are
//! therefore nondeterministic by nature — what stays deterministic is the
//! exposition format: [`MetricsSnapshot`] sorts every series by name and
//! renders through the insertion-ordered [`JsonValue`] writer, so two
//! snapshots with the same values are byte-identical and snapshot diffs are
//! structural, not fuzzy.
//!
//! Hot-path updates are wait-free: [`Counter`], [`Gauge`], and [`WallHist`]
//! are plain atomics with `Relaxed` ordering (each series is an independent
//! statistic; no cross-series invariant is read concurrently). The registry
//! itself takes a `Mutex` only on the cold paths — series registration and
//! snapshotting — mirroring the sanctioned [`SharedSink`] coordinator lock.
//! None of this is reachable from the DES: the simulator crates never link
//! these types, so the byte-identical trace guarantee is unaffected by
//! construction (see DESIGN.md §5i and the R5 rationale in `lint.toml`).
//!
//! [`SharedSink`]: crate::sink::SharedSink

use crate::hist::{Histogram, BUCKET_BOUNDS_US, BUCKET_COUNT};
use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
// The registry's registration/snapshot lock is a sanctioned coordinator
// site: dde-obs is outside the region-pinned simulation path, and the lock
// is never taken on a per-event hot path (see lint.toml R5 rationale).
#[allow(clippy::disallowed_types)]
use std::sync::Mutex;

/// A monotonic event counter. Updates are wait-free (`Relaxed` atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, readiness flag, heartbeat).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A wall-clock duration histogram over the same 1–2–5 bucket ladder as the
/// deterministic [`Histogram`] ([`BUCKET_BOUNDS_US`]), recordable from many
/// threads without locking.
#[derive(Debug)]
pub struct WallHist {
    counts: [AtomicU64; BUCKET_COUNT],
    max_us: AtomicU64,
}

impl Default for WallHist {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }
}

impl WallHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_COUNT - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Materialize the current contents as a deterministic [`Histogram`].
    /// Concurrent recorders may land between bucket loads; each bucket read
    /// is individually exact, which is all the percentile read-out needs.
    pub fn snapshot(&self) -> Histogram {
        let counts = std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        Histogram::from_bucket_counts(counts, self.max_us.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    hists: BTreeMap<String, Arc<WallHist>>,
}

/// A named collection of live metric series.
///
/// `counter`/`gauge`/`hist` are get-or-create: callers grab an `Arc` handle
/// once (under the registration lock) and then update it wait-free forever
/// after. [`snapshot`](Self::snapshot) freezes every series into a
/// [`MetricsSnapshot`] sorted by name.
// Registration/snapshot lock only — never taken per event. See the module
// docs and the lint.toml R5 coordinator_allow rationale.
#[allow(clippy::disallowed_types)]
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

#[allow(clippy::disallowed_types)]
impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        // A poisoned lock means a holder panicked between map operations;
        // the maps are still structurally sound (BTreeMap ops finished or
        // didn't), and the series data lives in the Arcs — recover it.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.with_inner(|i| Arc::clone(i.counters.entry(name.to_string()).or_default()))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.with_inner(|i| Arc::clone(i.gauges.entry(name.to_string()).or_default()))
    }

    /// The wall-clock histogram named `name`, created on first use.
    pub fn hist(&self, name: &str) -> Arc<WallHist> {
        self.with_inner(|i| Arc::clone(i.hists.entry(name.to_string()).or_default()))
    }

    /// Freeze every registered series into a sorted, deterministic
    /// snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_inner(|i| MetricsSnapshot {
            counters: i
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: i.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: i
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        })
    }
}

/// A malformed metrics snapshot document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError {
    /// What was wrong, with the offending key where applicable.
    pub msg: String,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed metrics snapshot: {}", self.msg)
    }
}

impl std::error::Error for MetricsError {}

fn bad(msg: impl Into<String>) -> MetricsError {
    MetricsError { msg: msg.into() }
}

/// A frozen, name-sorted view of a [`MetricsRegistry`] with a deterministic
/// JSON/text exposition format and a structural diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter series, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge series, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram series, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

fn int_u64(v: u64) -> JsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn hist_percentile_us(h: &Histogram, p: f64) -> u64 {
    h.percentile(p).map(|d| d.as_micros()).unwrap_or(0)
}

impl MetricsSnapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Fold another snapshot into this one: counters add, gauges take the
    /// latest (other wins), histograms merge exactly. Used to aggregate
    /// per-node snapshots into a cluster view.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self
                .counters
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
            {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
            {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Render as a deterministic JSON value: three insertion-ordered
    /// objects (`counters`, `gauges`, `histograms`) with series sorted by
    /// name. Histograms carry their raw buckets plus derived
    /// `count`/`max_us`/`p50_us`/`p95_us`/`p99_us` fields for human eyes;
    /// [`from_json_value`](Self::from_json_value) revalidates the derived
    /// fields against the buckets.
    pub fn to_json_value(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), int_u64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Int(*v)))
            .collect();
        let hists = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h.bucket_counts().iter().map(|&c| int_u64(c)).collect();
                (
                    k.clone(),
                    JsonValue::Object(vec![
                        ("count".into(), int_u64(h.count())),
                        ("max_us".into(), int_u64(h.max_us())),
                        ("p50_us".into(), int_u64(hist_percentile_us(h, 50.0))),
                        ("p95_us".into(), int_u64(hist_percentile_us(h, 95.0))),
                        ("p99_us".into(), int_u64(hist_percentile_us(h, 99.0))),
                        ("buckets".into(), JsonValue::Array(buckets)),
                    ]),
                )
            })
            .collect();
        JsonValue::Object(vec![
            ("counters".into(), JsonValue::Object(counters)),
            ("gauges".into(), JsonValue::Object(gauges)),
            ("histograms".into(), JsonValue::Object(hists)),
        ])
    }

    /// Parse a snapshot back from its [`to_json_value`](Self::to_json_value)
    /// shape, validating structure: the three sections must be objects,
    /// counters non-negative integers, histogram buckets exactly
    /// [`BUCKET_COUNT`] non-negative integers whose sum equals `count`.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, MetricsError> {
        let JsonValue::Object(_) = v else {
            return Err(bad("document is not an object"));
        };
        let section = |key: &str| -> Result<&[(String, JsonValue)], MetricsError> {
            match v.get(key) {
                Some(JsonValue::Object(pairs)) => Ok(pairs),
                Some(_) => Err(bad(format!("`{key}` is not an object"))),
                None => Err(bad(format!("missing `{key}` section"))),
            }
        };
        let need_u64 = |ctx: &str, val: &JsonValue| -> Result<u64, MetricsError> {
            val.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| bad(format!("`{ctx}` is not a non-negative integer")))
        };

        let mut counters = Vec::new();
        for (name, val) in section("counters")? {
            counters.push((name.clone(), need_u64(name, val)?));
        }
        let mut gauges = Vec::new();
        for (name, val) in section("gauges")? {
            let i = val
                .as_int()
                .ok_or_else(|| bad(format!("gauge `{name}` is not an integer")))?;
            gauges.push((name.clone(), i));
        }
        let mut histograms = Vec::new();
        for (name, val) in section("histograms")? {
            let Some(JsonValue::Array(raw)) = val.get("buckets") else {
                return Err(bad(format!("histogram `{name}` has no `buckets` array")));
            };
            if raw.len() != BUCKET_COUNT {
                return Err(bad(format!(
                    "histogram `{name}` has {} buckets, expected {BUCKET_COUNT}",
                    raw.len()
                )));
            }
            let mut counts = [0u64; BUCKET_COUNT];
            for (i, b) in raw.iter().enumerate() {
                counts[i] = need_u64(&format!("{name}.buckets[{i}]"), b)?;
            }
            let max_us = need_u64(
                &format!("{name}.max_us"),
                val.get("max_us").unwrap_or(&JsonValue::Null),
            )?;
            let count = need_u64(
                &format!("{name}.count"),
                val.get("count").unwrap_or(&JsonValue::Null),
            )?;
            let h = Histogram::from_bucket_counts(counts, max_us);
            if h.count() != count {
                return Err(bad(format!(
                    "histogram `{name}`: count {} does not match bucket sum {}",
                    count,
                    h.count()
                )));
            }
            histograms.push((name.clone(), h));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }

    /// Parse from JSON text (convenience over [`crate::json::parse`] +
    /// [`from_json_value`](Self::from_json_value)).
    pub fn parse(src: &str) -> Result<Self, MetricsError> {
        let v = crate::json::parse(src).map_err(|e| bad(e.to_string()))?;
        Self::from_json_value(&v)
    }

    /// Render as fixed-layout text, one series per line, sorted by name —
    /// the human-facing exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist {name} count={} max_us={} p50_us={} p95_us={} p99_us={}\n",
                h.count(),
                h.max_us(),
                hist_percentile_us(h, 50.0),
                hist_percentile_us(h, 95.0),
                hist_percentile_us(h, 99.0),
            ));
        }
        out
    }

    /// Structural diff against `other` (self = before, other = after): one
    /// line per changed/added/removed series, empty when identical.
    pub fn diff(&self, other: &MetricsSnapshot) -> String {
        let mut out = String::new();
        diff_series(
            &mut out,
            "counter",
            &self.counters,
            &other.counters,
            |a, b| {
                let delta = *b as i128 - *a as i128;
                format!("{a} -> {b} ({delta:+})")
            },
            |v| v.to_string(),
        );
        // Gauges.
        diff_series(
            &mut out,
            "gauge",
            &self.gauges,
            &other.gauges,
            |a, b| format!("{a} -> {b} ({:+})", *b as i128 - *a as i128),
            |v| v.to_string(),
        );
        // Histograms: compare count/max/percentiles.
        diff_series(
            &mut out,
            "hist",
            &self.histograms,
            &other.histograms,
            |a, b| {
                format!(
                    "count {} -> {}, p95_us {} -> {}",
                    a.count(),
                    b.count(),
                    hist_percentile_us(a, 95.0),
                    hist_percentile_us(b, 95.0)
                )
            },
            |h| format!("count={}", h.count()),
        );
        out
    }
}

/// Walk two name-sorted series lists and describe changes. `changed`
/// renders an in-place value change, `solo` renders an added/removed value.
fn diff_series<T: PartialEq>(
    out: &mut String,
    kind: &str,
    before: &[(String, T)],
    after: &[(String, T)],
    changed: impl Fn(&T, &T) -> String,
    solo: impl Fn(&T) -> String,
) {
    let mut i = 0;
    let mut j = 0;
    while i < before.len() || j < after.len() {
        match (before.get(i), after.get(j)) {
            (Some((ka, va)), Some((kb, vb))) if ka == kb => {
                if va != vb {
                    out.push_str(&format!("~ {kind} {ka}: {}\n", changed(va, vb)));
                }
                i += 1;
                j += 1;
            }
            (Some((ka, va)), Some((kb, _))) if ka < kb => {
                out.push_str(&format!("- {kind} {ka}: {}\n", solo(va)));
                i += 1;
            }
            (Some(_), Some((kb, vb))) => {
                out.push_str(&format!("+ {kind} {kb}: {}\n", solo(vb)));
                j += 1;
            }
            (Some((ka, va)), None) => {
                out.push_str(&format!("- {kind} {ka}: {}\n", solo(va)));
                i += 1;
            }
            (None, Some((kb, vb))) => {
                out.push_str(&format!("+ {kind} {kb}: {}\n", solo(vb)));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// Parse a metrics document that is either a bare snapshot or a per-node
/// collection `{"nodes": [{"node": N, "metrics": {...}}, ...]}` (the shape
/// `cluster_demo` writes). Returns `(node, snapshot)` pairs; a bare
/// snapshot comes back as a single pair with `node = None`.
pub fn parse_snapshot_document(
    v: &JsonValue,
) -> Result<Vec<(Option<u64>, MetricsSnapshot)>, MetricsError> {
    match v.get("nodes") {
        Some(JsonValue::Array(entries)) => {
            let mut out = Vec::new();
            for (i, entry) in entries.iter().enumerate() {
                let node = entry
                    .get("node")
                    .and_then(JsonValue::as_int)
                    .and_then(|n| u64::try_from(n).ok())
                    .ok_or_else(|| bad(format!("nodes[{i}] has no integer `node`")))?;
                let metrics = entry
                    .get("metrics")
                    .ok_or_else(|| bad(format!("nodes[{i}] has no `metrics`")))?;
                out.push((Some(node), MetricsSnapshot::from_json_value(metrics)?));
            }
            Ok(out)
        }
        Some(_) => Err(bad("`nodes` is not an array")),
        None => Ok(vec![(None, MetricsSnapshot::from_json_value(v)?)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("tcp.frames_out").add(3);
        reg.counter("tcp.frames_out").inc();
        reg.gauge("host.queue_depth").set(7);
        reg.gauge("host.queue_depth").add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("tcp.frames_out"), Some(4));
        assert_eq!(snap.gauge("host.queue_depth"), Some(5));

        let parsed = MetricsSnapshot::parse(&snap.to_json_value().to_compact_string()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn hist_snapshot_matches_deterministic_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.hist("send_us");
        h.record_us(1_500);
        h.record_us(1_500);
        h.record_us(400_000);
        let snap = reg.snapshot();
        let got = snap.histogram("send_us").unwrap();
        assert_eq!(got.count(), 3);
        assert_eq!(got.max_us(), 400_000);
        // Same buckets as the deterministic histogram ladder.
        assert_eq!(hist_percentile_us(got, 50.0), 2_000);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("c");
                let h = reg.hist("h");
                for i in 0..1_000u64 {
                    c.inc();
                    h.record_us(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(4_000));
        assert_eq!(snap.histogram("h").unwrap().count(), 4_000);
    }

    #[test]
    fn exposition_is_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        let a = reg.snapshot().to_json_value().to_compact_string();
        let b = reg.snapshot().to_json_value().to_compact_string();
        assert_eq!(a, b);
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        // Not an object.
        assert!(MetricsSnapshot::parse("[1,2]").is_err());
        // Missing sections.
        assert!(MetricsSnapshot::parse("{}").is_err());
        // Negative counter.
        assert!(
            MetricsSnapshot::parse(r#"{"counters":{"c":-1},"gauges":{},"histograms":{}}"#).is_err()
        );
        // Bucket-count mismatch.
        assert!(MetricsSnapshot::parse(
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"max_us":5,"buckets":[1]}}}"#
        )
        .is_err());
        // count != bucket sum.
        let mut buckets = vec!["0"; BUCKET_COUNT];
        buckets[0] = "2";
        let doc = format!(
            r#"{{"counters":{{}},"gauges":{{}},"histograms":{{"h":{{"count":1,"max_us":5,"buckets":[{}]}}}}}}"#,
            buckets.join(",")
        );
        assert!(MetricsSnapshot::parse(&doc).is_err());
    }

    #[test]
    fn merge_adds_counters_and_merges_hists() {
        let a = MetricsRegistry::new();
        a.counter("c").add(2);
        a.hist("h").record_us(1_000);
        let b = MetricsRegistry::new();
        b.counter("c").add(3);
        b.counter("only_b").inc();
        b.hist("h").record_us(900_000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.counter("only_b"), Some(1));
        assert_eq!(snap.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn diff_reports_changes_additions_removals() {
        let a = MetricsRegistry::new();
        a.counter("stays").add(1);
        a.counter("gone").add(9);
        let b = MetricsRegistry::new();
        b.counter("stays").add(4);
        b.counter("new").add(2);
        let d = a.snapshot().diff(&b.snapshot());
        assert!(d.contains("~ counter stays: 1 -> 4 (+3)"), "{d}");
        assert!(d.contains("- counter gone: 9"), "{d}");
        assert!(d.contains("+ counter new: 2"), "{d}");
        let same = a.snapshot().diff(&a.snapshot());
        assert!(same.is_empty(), "{same}");
    }

    #[test]
    fn snapshot_document_accepts_both_shapes() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        let bare = reg.snapshot().to_json_value();
        let got = parse_snapshot_document(&bare).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, None);

        let doc = JsonValue::Object(vec![(
            "nodes".into(),
            JsonValue::Array(vec![JsonValue::Object(vec![
                ("node".into(), JsonValue::Int(2)),
                ("metrics".into(), bare),
            ])]),
        )]);
        let got = parse_snapshot_document(&doc).unwrap();
        assert_eq!(got[0].0, Some(2));
        assert_eq!(got[0].1.counter("c"), Some(1));

        let bad_doc = JsonValue::Object(vec![("nodes".into(), JsonValue::Int(1))]);
        assert!(parse_snapshot_document(&bad_doc).is_err());
    }
}

//! Chrome trace-event export.
//!
//! Produces the JSON object format understood by `about:tracing` and
//! Perfetto: each [`TraceRecord`] becomes an instant event (`"ph":"i"`)
//! with the simulated microsecond as `ts`, the node index as `tid`, and
//! the event payload under `args`. Timestamps being simulated means the
//! visual timeline *is* the simulation timeline.

use crate::event::TraceRecord;
use crate::json::JsonValue;

fn record_to_chrome_event(rec: &TraceRecord) -> JsonValue {
    JsonValue::Object(vec![
        (
            "name".into(),
            JsonValue::Str(rec.kind.kind_name().to_string()),
        ),
        ("ph".into(), JsonValue::Str("i".into())),
        ("s".into(), JsonValue::Str("t".into())),
        ("ts".into(), JsonValue::Int(rec.at.as_micros() as i64)),
        ("pid".into(), JsonValue::Int(0)),
        ("tid".into(), JsonValue::Int(rec.node as i64)),
        ("args".into(), JsonValue::Object(rec.kind.fields())),
    ])
}

/// Render records as a complete Chrome trace-event document.
pub fn chrome_trace_from_records(records: &[TraceRecord]) -> String {
    let events: Vec<JsonValue> = records.iter().map(record_to_chrome_event).collect();
    let doc = JsonValue::Object(vec![
        ("traceEvents".into(), JsonValue::Array(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
    ]);
    doc.to_pretty_string()
}

/// Convert a JSONL trace (as produced by
/// [`JsonlSink`](crate::sink::JsonlSink)) into a Chrome trace-event
/// document. Lines that fail to parse are skipped.
pub fn chrome_trace_from_jsonl(jsonl: &str) -> String {
    let mut events = Vec::new();
    for line in jsonl.lines() {
        let Ok(v) = crate::json::parse(line) else {
            continue;
        };
        let ts = v.get("t").and_then(|t| t.as_int()).unwrap_or(0);
        let tid = v.get("node").and_then(|n| n.as_int()).unwrap_or(0);
        let name = v
            .get("kind")
            .and_then(|k| k.as_str())
            .unwrap_or("?")
            .to_string();
        let args: Vec<(String, JsonValue)> = match &v {
            JsonValue::Object(pairs) => pairs
                .iter()
                .filter(|(k, _)| k != "t" && k != "node" && k != "kind")
                .cloned()
                .collect(),
            _ => Vec::new(),
        };
        events.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::Str(name)),
            ("ph".into(), JsonValue::Str("i".into())),
            ("s".into(), JsonValue::Str("t".into())),
            ("ts".into(), JsonValue::Int(ts)),
            ("pid".into(), JsonValue::Int(0)),
            ("tid".into(), JsonValue::Int(tid)),
            ("args".into(), JsonValue::Object(args)),
        ]));
    }
    let doc = JsonValue::Object(vec![
        ("traceEvents".into(), JsonValue::Array(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
    ]);
    doc.to_pretty_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json::parse;
    use dde_logic::time::SimTime;

    #[test]
    fn records_export_as_instant_events() {
        let recs = vec![TraceRecord {
            at: SimTime::from_micros(42),
            node: 7,
            kind: EventKind::Deliver {
                from: 1,
                to: 7,
                msg: "data",
                query: None,
            },
        }];
        let doc = chrome_trace_from_records(&recs);
        let v = parse(&doc).unwrap();
        let events = match v.get("traceEvents") {
            Some(JsonValue::Array(a)) => a,
            _ => panic!("missing traceEvents"),
        };
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ts").and_then(|t| t.as_int()), Some(42));
        assert_eq!(events[0].get("tid").and_then(|t| t.as_int()), Some(7));
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("deliver")
        );
    }

    #[test]
    fn jsonl_round_trip_matches_record_export() {
        let rec = TraceRecord {
            at: SimTime::from_micros(10),
            node: 2,
            kind: EventKind::CacheHit {
                name: "/x".into(),
                requester: 0,
                query: None,
            },
        };
        let jsonl = format!("{}\n", rec.to_jsonl_line());
        assert_eq!(
            chrome_trace_from_jsonl(&jsonl),
            chrome_trace_from_records(std::slice::from_ref(&rec))
        );
    }
}

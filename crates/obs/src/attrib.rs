//! Attribution keys and the normalized record view the ledger folds over.
//!
//! Cost accounting has two entry points — a live [`Sink`](crate::sink::Sink)
//! observing typed [`TraceRecord`]s, and an
//! offline fold over a JSONL trace file. Both are lowered to the same
//! [`LedgerView`] here, so the two paths cannot drift apart: charging rules
//! are written once, against the view.

use crate::event::{EventKind, TraceRecord};
use crate::json::JsonValue;

/// Predicate coordinates inside a DNF decision query: which OR-term and
/// which condition within it caused a fetch or annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PredKey {
    /// OR-term (course-of-action) index.
    pub term: u32,
    /// Condition index within the term.
    pub cond: u32,
}

/// What a record means to the cost ledger, independent of representation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewKind {
    /// Bytes clocked onto a link (bandwidth consumed even if later lost).
    Transmit {
        /// Message kind tag (`announce`, `request`, `data`, `label`, …).
        msg: String,
        /// Wire size in bytes.
        bytes: u64,
        /// Background priority class (prefetch/continuation pushes).
        background: bool,
    },
    /// A message finished transit and was handled.
    Deliver {
        /// Message kind tag.
        msg: String,
    },
    /// A transmission lost to link noise.
    Loss {
        /// Wire size in bytes.
        bytes: u64,
    },
    /// `Query_Init` at the origin: starts the critical-path clock.
    QueryInit,
    /// The origin's retrieval plan, with its predicted expected cost.
    Plan {
        /// Predicted expected retrieval cost in bytes (§III-A).
        expected_bytes: u64,
    },
    /// A fetch request left the origin.
    RequestSend {
        /// Requested object name (keys retransmission detection).
        name: String,
    },
    /// A request served from a content store.
    CacheHit,
    /// A request that missed the local store.
    CacheMiss,
    /// A request answered with cached labels (§VI-D).
    LabelHit,
    /// A request answered with an approximate substitute (§V-A).
    ApproxHit,
    /// A label resolved by sampling a co-located sensor.
    LocalSample,
    /// An object stored into a content store; occupancy-time charge.
    CacheStore {
        /// Payload bytes × remaining validity µs (occupancy charge).
        byte_us: u64,
    },
    /// Evidence annotated into a label value.
    Annotate,
    /// The query reached a decision.
    QueryResolved {
        /// `viable` or `infeasible`.
        outcome: String,
        /// Issue-to-decision latency in microseconds.
        latency_us: u64,
    },
    /// The query's deadline passed undecided.
    QueryMissed,
    /// Any other event (faults, purges, drops, shares, pushes, triage);
    /// carries no direct charge but still advances the critical path.
    Other,
}

/// A normalized, representation-independent view of one trace record:
/// when, where, what, and on whose behalf.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerView {
    /// Simulated microseconds.
    pub t_us: u64,
    /// Reporting node.
    pub node: u32,
    /// What happened, reduced to what cost accounting needs.
    pub kind: ViewKind,
    /// The decision query charged, if attributable.
    pub query: Option<u64>,
    /// Predicate coordinates, where the emitter knew them.
    pub pred: Option<PredKey>,
}

fn pred_from(term: &Option<u32>, cond: &Option<u32>) -> Option<PredKey> {
    match (term, cond) {
        (Some(t), Some(c)) => Some(PredKey { term: *t, cond: *c }),
        _ => None,
    }
}

impl LedgerView {
    /// Lower a typed record into its ledger view.
    pub fn from_record(rec: &TraceRecord) -> Self {
        let (kind, query, pred) = match &rec.kind {
            EventKind::Transmit {
                msg,
                bytes,
                background,
                query,
                ..
            } => (
                ViewKind::Transmit {
                    msg: (*msg).to_string(),
                    bytes: *bytes,
                    background: *background,
                },
                *query,
                None,
            ),
            EventKind::Deliver { msg, query, .. } => (
                ViewKind::Deliver {
                    msg: (*msg).to_string(),
                },
                *query,
                None,
            ),
            EventKind::Loss { bytes, query, .. } => {
                (ViewKind::Loss { bytes: *bytes }, *query, None)
            }
            EventKind::QueryInit { query, .. } => (ViewKind::QueryInit, Some(*query), None),
            EventKind::Plan {
                query,
                expected_bytes,
                ..
            } => (
                ViewKind::Plan {
                    expected_bytes: *expected_bytes,
                },
                Some(*query),
                None,
            ),
            EventKind::RequestSend {
                query,
                name,
                term,
                cond,
                ..
            } => (
                ViewKind::RequestSend { name: name.clone() },
                Some(*query),
                pred_from(term, cond),
            ),
            EventKind::CacheHit { query, .. } => (ViewKind::CacheHit, *query, None),
            EventKind::CacheMiss { query, .. } => (ViewKind::CacheMiss, *query, None),
            EventKind::LabelHit { query, .. } => (ViewKind::LabelHit, *query, None),
            EventKind::ApproxHit { query, .. } => (ViewKind::ApproxHit, *query, None),
            EventKind::LocalSample { query, .. } => (ViewKind::LocalSample, *query, None),
            EventKind::CacheStore {
                bytes,
                validity_us,
                query,
                ..
            } => (
                ViewKind::CacheStore {
                    byte_us: bytes.saturating_mul(*validity_us),
                },
                *query,
                None,
            ),
            EventKind::Annotate {
                query, term, cond, ..
            } => (ViewKind::Annotate, Some(*query), pred_from(term, cond)),
            EventKind::QueryResolved {
                query,
                outcome,
                latency_us,
            } => (
                ViewKind::QueryResolved {
                    outcome: (*outcome).to_string(),
                    latency_us: *latency_us,
                },
                Some(*query),
                None,
            ),
            EventKind::QueryMissed { query } => (ViewKind::QueryMissed, Some(*query), None),
            EventKind::LabelShare { query, .. } | EventKind::PrefetchPush { query, .. } => {
                (ViewKind::Other, *query, None)
            }
            // Adaptive-planning bookkeeping events: no direct charge (the
            // retransmission after a timeout is charged by its own
            // `transmit`), but the query attribution keeps them on the
            // right decision's timeline.
            EventKind::FetchTimeout { query, .. } | EventKind::Admission { query, .. } => {
                (ViewKind::Other, Some(*query), None)
            }
            EventKind::Drop { .. }
            | EventKind::Purge { .. }
            | EventKind::Fault { .. }
            | EventKind::TriageDrop { .. } => (ViewKind::Other, None, None),
        };
        LedgerView {
            t_us: rec.at.as_micros(),
            node: rec.node,
            kind,
            query,
            pred,
        }
    }

    /// Lower one parsed JSONL object into its ledger view.
    ///
    /// Returns `None` when the object lacks the `t`/`node`/`kind` envelope
    /// or a required payload field — callers decide whether that is an
    /// error (strict CLI) or a skip.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        let t_us = u64::try_from(v.get("t")?.as_int()?).ok()?;
        let node = u32::try_from(v.get("node")?.as_int()?).ok()?;
        let kind_tag = v.get("kind")?.as_str()?;
        let get_u64 = |key: &str| -> Option<u64> {
            v.get(key)
                .and_then(|f| f.as_int())
                .and_then(|i| u64::try_from(i).ok())
        };
        let get_u32 = |key: &str| -> Option<u32> {
            v.get(key)
                .and_then(|f| f.as_int())
                .and_then(|i| u32::try_from(i).ok())
        };
        let query = get_u64("query");
        let pred = match (get_u32("term"), get_u32("cond")) {
            (Some(term), Some(cond)) => Some(PredKey { term, cond }),
            _ => None,
        };
        let kind = match kind_tag {
            "transmit" => ViewKind::Transmit {
                msg: v.get("msg")?.as_str()?.to_string(),
                bytes: get_u64("bytes")?,
                background: matches!(v.get("bg"), Some(JsonValue::Bool(true))),
            },
            "deliver" => ViewKind::Deliver {
                msg: v.get("msg")?.as_str()?.to_string(),
            },
            "loss" => ViewKind::Loss {
                bytes: get_u64("bytes")?,
            },
            "query-init" => ViewKind::QueryInit,
            "plan" => ViewKind::Plan {
                expected_bytes: get_u64("expected_bytes")?,
            },
            "request-send" => ViewKind::RequestSend {
                name: v.get("name")?.as_str()?.to_string(),
            },
            "cache-hit" => ViewKind::CacheHit,
            "cache-miss" => ViewKind::CacheMiss,
            "label-hit" => ViewKind::LabelHit,
            "approx-hit" => ViewKind::ApproxHit,
            "local-sample" => ViewKind::LocalSample,
            "cache-store" => ViewKind::CacheStore {
                byte_us: get_u64("bytes")?.saturating_mul(get_u64("validity_us")?),
            },
            "annotate" => ViewKind::Annotate,
            "query-resolved" => ViewKind::QueryResolved {
                outcome: v.get("outcome")?.as_str()?.to_string(),
                latency_us: get_u64("latency_us")?,
            },
            "query-missed" => ViewKind::QueryMissed,
            _ => ViewKind::Other,
        };
        Some(LedgerView {
            t_us,
            node,
            kind,
            query,
            pred,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use dde_logic::time::SimTime;

    fn roundtrip(kind: EventKind) -> (LedgerView, LedgerView) {
        let rec = TraceRecord {
            at: SimTime::from_micros(42),
            node: 3,
            kind,
        };
        let typed = LedgerView::from_record(&rec);
        let parsed = parse(&rec.to_jsonl_line()).expect("valid JSONL");
        let json = LedgerView::from_json(&parsed).expect("complete envelope");
        (typed, json)
    }

    #[test]
    fn typed_and_json_paths_agree_on_transmit() {
        let (typed, json) = roundtrip(EventKind::Transmit {
            from: 1,
            to: 2,
            msg: "data",
            bytes: 450_000,
            background: false,
            query: Some(9),
        });
        assert_eq!(typed, json);
        assert_eq!(typed.query, Some(9));
        assert!(matches!(
            typed.kind,
            ViewKind::Transmit { bytes: 450_000, .. }
        ));
    }

    #[test]
    fn typed_and_json_paths_agree_on_request_send() {
        let (typed, json) = roundtrip(EventKind::RequestSend {
            query: 5,
            name: "/city/a".into(),
            hop: 1,
            term: Some(1),
            cond: Some(2),
        });
        assert_eq!(typed, json);
        assert_eq!(typed.pred, Some(PredKey { term: 1, cond: 2 }));
    }

    #[test]
    fn unattributed_link_events_view_as_overhead() {
        let (typed, json) = roundtrip(EventKind::Loss {
            from: 0,
            to: 1,
            msg: "announce",
            bytes: 88,
            query: None,
        });
        assert_eq!(typed, json);
        assert_eq!(typed.query, None);
    }

    #[test]
    fn cache_store_charge_is_bytes_times_validity() {
        let (typed, json) = roundtrip(EventKind::CacheStore {
            name: "/city/a".into(),
            bytes: 1000,
            validity_us: 2_000_000,
            query: Some(4),
        });
        assert_eq!(typed, json);
        assert!(matches!(
            typed.kind,
            ViewKind::CacheStore {
                byte_us: 2_000_000_000
            }
        ));
    }
}

//! `dde-trace` — inspect, diff, and account deterministic JSONL traces.
//!
//! ```text
//! dde-trace diff A.jsonl B.jsonl        # exit 0 if identical, 1 if divergent
//! dde-trace summary A.jsonl [--query N] # per-kind event counts + time span
//! dde-trace chrome A.jsonl              # Chrome trace-event JSON on stdout
//! dde-trace attribute A.jsonl [--json]  # per-decision cost ledger
//! dde-trace critical-path A.jsonl [--json]  # latency breakdown per query
//! dde-trace bench-diff BASE.json FRESH.json [bench.toml]  # regression gate
//! dde-trace metrics SNAP.json [OTHER.json]  # pretty-print or diff snapshots
//! ```

// CLI entry point: argv/exit-code handling is inherently ambient; the
// determinism rules target simulation code, not operator tooling.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use dde_obs::json::{parse, JsonValue};
use dde_obs::{
    chrome_trace_from_jsonl, diff_jsonl, parse_snapshot_document, CostLedger, MetricsSnapshot,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;

/// Writes `text` to stdout; a closed pipe (e.g. `| head`) is not an error.
fn write_stdout(text: &str) -> Result<(), String> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("dde-trace: cannot write to stdout: {e}")),
    }
}

const USAGE: &str = "usage:
  dde-trace diff <left.jsonl> <right.jsonl>   structural diff; exit 1 on divergence
  dde-trace summary <trace.jsonl> [--query <id>]
                                              per-kind counts and time span,
                                              optionally for one query only
  dde-trace chrome <trace.jsonl>              convert to Chrome trace-event JSON
  dde-trace attribute <trace.jsonl> [--json]  per-decision cost ledger with
                                              conservation check
  dde-trace critical-path <trace.jsonl> [--json]
                                              per-query latency breakdown
  dde-trace bench-diff <baseline.json> <fresh.json> [<bench.toml>]
                                              compare BENCH_* documents within
                                              tolerance; exit 1 on regression
  dde-trace metrics <snapshot.json>           pretty-print a metrics snapshot
                                              (bare or per-node collection);
                                              exit 1 on malformed input
  dde-trace metrics <a.json> <b.json>         diff two snapshots; exit 1 on
                                              difference or malformed input
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("dde-trace: cannot read {path}: {e}"))
}

fn cmd_diff(left: &str, right: &str) -> Result<ExitCode, String> {
    let l = read(left)?;
    let r = read(right)?;
    let diff = diff_jsonl(&l, &r);
    write_stdout(&diff.render())?;
    Ok(if diff.is_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_summary(path: &str, query: Option<u64>) -> Result<ExitCode, String> {
    let text = read(path)?;
    let mut out = String::new();
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0u64;
    let mut first_t: Option<i64> = None;
    let mut last_t: Option<i64> = None;
    for line in text.lines() {
        let parsed = parse(line).ok();
        if let Some(want) = query {
            let q = parsed
                .as_ref()
                .and_then(|v| v.get("query"))
                .and_then(|q| q.as_int());
            if q != Some(want as i64) {
                continue;
            }
        }
        events += 1;
        let kind = parsed
            .and_then(|v| {
                if let Some(t) = v.get("t").and_then(|t| t.as_int()) {
                    first_t = Some(first_t.map_or(t, |f| f.min(t)));
                    last_t = Some(last_t.map_or(t, |l| l.max(t)));
                }
                v.get("kind").and_then(|k| k.as_str().map(String::from))
            })
            .unwrap_or_else(|| "?".to_string());
        *kinds.entry(kind).or_default() += 1;
    }
    if let Some(q) = query {
        out.push_str(&format!("query:  {q}\n"));
    }
    out.push_str(&format!("events: {events}\n"));
    if let (Some(f), Some(l)) = (first_t, last_t) {
        out.push_str(&format!(
            "span:   t={f}us .. t={l}us ({:.3}s)\n",
            (l - f) as f64 / 1e6
        ));
    }
    for (kind, count) in &kinds {
        out.push_str(&format!("  {kind:>14}: {count:>8}\n"));
    }
    write_stdout(&out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_chrome(path: &str) -> Result<ExitCode, String> {
    let text = read(path)?;
    write_stdout(&chrome_trace_from_jsonl(&text))?;
    Ok(ExitCode::SUCCESS)
}

fn ledger_of(path: &str) -> Result<CostLedger, String> {
    let text = read(path)?;
    CostLedger::from_jsonl(&text).map_err(|e| format!("dde-trace: {path}: {e}"))
}

fn cmd_attribute(path: &str, json: bool) -> Result<ExitCode, String> {
    let ledger = ledger_of(path)?;
    if json {
        let mut doc = ledger.to_json_value().to_pretty_string();
        doc.push('\n');
        write_stdout(&doc)?;
    } else {
        write_stdout(&ledger.render_attribution())?;
    }
    Ok(if ledger.conserves() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_critical_path(path: &str, json: bool) -> Result<ExitCode, String> {
    let ledger = ledger_of(path)?;
    if json {
        let mut doc = ledger.critical_path_json().to_pretty_string();
        doc.push('\n');
        write_stdout(&doc)?;
    } else {
        write_stdout(&ledger.render_critical_path())?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Relative tolerances for [`cmd_bench_diff`], keyed by metric name (the
/// JSON key whose value is a `{mean, stddev}` stat object, or
/// `latency_us` for the percentile block), with a `default` fallback.
#[derive(Debug)]
struct Tolerances {
    default: f64,
    per_metric: BTreeMap<String, f64>,
}

impl Tolerances {
    fn of(&self, metric: &str) -> f64 {
        *self.per_metric.get(metric).unwrap_or(&self.default)
    }

    /// Parses the `bench.toml` subset: `key = value` lines with `#`
    /// comments; section headers (`[...]`) are ignored so the file can be
    /// organized freely. Values are relative tolerances (0.1 = ±10%).
    fn parse(text: &str) -> Result<Tolerances, String> {
        let mut tol = Tolerances {
            default: 0.25,
            per_metric: BTreeMap::new(),
        };
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || (line.starts_with('[') && line.ends_with(']')) {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("bench.toml line {}: expected key = value", idx + 1));
            };
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bench.toml line {}: bad number", idx + 1))?;
            if key == "default" {
                tol.default = value;
            } else {
                tol.per_metric.insert(key.to_string(), value);
            }
        }
        Ok(tol)
    }
}

/// Recursively compares two BENCH_* JSON documents. Stat objects
/// (`{mean, stddev}`) and `latency_us` percentile blocks are compared on
/// their central value within the metric's relative tolerance; everything
/// else must match exactly (a shape or metadata change should come with
/// regenerated baselines).
fn bench_compare(
    path: &str,
    metric: &str,
    fuzzy: bool,
    base: &JsonValue,
    fresh: &JsonValue,
    tol: &Tolerances,
    failures: &mut Vec<String>,
) {
    match (base, fresh) {
        (JsonValue::Object(bo), JsonValue::Object(fo)) => {
            let bkeys: Vec<&String> = bo.iter().map(|(k, _)| k).collect();
            let fkeys: Vec<&String> = fo.iter().map(|(k, _)| k).collect();
            if bkeys != fkeys {
                failures.push(format!("{path}: key set changed: {bkeys:?} -> {fkeys:?}"));
                return;
            }
            let is_stat = bo.iter().any(|(k, _)| k == "mean");
            for ((key, bv), (_, fv)) in bo.iter().zip(fo.iter()) {
                if is_stat && key != "mean" {
                    continue; // stddev may drift freely
                }
                let child_metric = if is_stat || fuzzy { metric } else { key };
                let child_fuzzy = fuzzy || (is_stat && key == "mean") || key == "latency_us";
                bench_compare(
                    &format!("{path}.{key}"),
                    child_metric,
                    child_fuzzy,
                    bv,
                    fv,
                    tol,
                    failures,
                );
            }
        }
        (JsonValue::Array(ba), JsonValue::Array(fa)) => {
            if ba.len() != fa.len() {
                failures.push(format!(
                    "{path}: length changed: {} -> {}",
                    ba.len(),
                    fa.len()
                ));
                return;
            }
            for (i, (bv, fv)) in ba.iter().zip(fa.iter()).enumerate() {
                bench_compare(
                    &format!("{path}[{i}]"),
                    metric,
                    fuzzy,
                    bv,
                    fv,
                    tol,
                    failures,
                );
            }
        }
        _ => {
            let numeric = |v: &JsonValue| -> Option<f64> {
                match v {
                    JsonValue::Int(i) => Some(*i as f64),
                    JsonValue::Float(f) => Some(*f),
                    _ => None,
                }
            };
            if fuzzy {
                if let (Some(a), Some(b)) = (numeric(base), numeric(fresh)) {
                    let rel = if a == b {
                        0.0
                    } else {
                        (a - b).abs() / a.abs().max(1e-9)
                    };
                    if rel > tol.of(metric) {
                        failures.push(format!(
                            "{path}: {a} -> {b} (drift {:.1}% > {:.1}% for `{metric}`)",
                            rel * 100.0,
                            tol.of(metric) * 100.0
                        ));
                    }
                    return;
                }
            }
            if base != fresh {
                failures.push(format!("{path}: value changed"));
            }
        }
    }
}

fn cmd_bench_diff(baseline: &str, fresh: &str, tol_path: Option<&str>) -> Result<ExitCode, String> {
    let tol = match tol_path {
        Some(p) => Tolerances::parse(&read(p)?)?,
        None => Tolerances {
            default: 0.25,
            per_metric: BTreeMap::new(),
        },
    };
    let base = parse(&read(baseline)?)
        .map_err(|e| format!("dde-trace: {baseline}: invalid JSON: {e:?}"))?;
    let new =
        parse(&read(fresh)?).map_err(|e| format!("dde-trace: {fresh}: invalid JSON: {e:?}"))?;
    let mut failures = Vec::new();
    bench_compare("$", "", false, &base, &new, &tol, &mut failures);
    let mut out = String::new();
    if failures.is_empty() {
        out.push_str(&format!(
            "bench-diff: {fresh} within tolerance of {baseline}\n"
        ));
        write_stdout(&out)?;
        Ok(ExitCode::SUCCESS)
    } else {
        out.push_str(&format!(
            "bench-diff: {} regression(s) vs {baseline}:\n",
            failures.len()
        ));
        for f in &failures {
            out.push_str(&format!("  {f}\n"));
        }
        write_stdout(&out)?;
        Ok(ExitCode::FAILURE)
    }
}

/// Loads a metrics document: either one bare snapshot or the cluster
/// demo's `{"nodes":[{"node":N,"metrics":{...}}]}` collection. Malformed
/// input is a *gate failure* (printed, exit 1), not a usage error.
fn load_snapshots(path: &str) -> Result<Vec<(Option<u64>, MetricsSnapshot)>, String> {
    let text = read(path)?;
    let doc = parse(&text).map_err(|e| format!("dde-trace: {path}: invalid JSON: {e:?}"))?;
    parse_snapshot_document(&doc).map_err(|e| format!("dde-trace: {path}: {e}"))
}

fn cmd_metrics(path: &str) -> Result<ExitCode, String> {
    let snaps = match load_snapshots(path) {
        Ok(snaps) => snaps,
        Err(msg) => {
            eprintln!("{msg}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let mut out = String::new();
    for (node, snap) in &snaps {
        if let Some(n) = node {
            out.push_str(&format!("node {n}\n"));
        }
        out.push_str(&snap.render_text());
    }
    write_stdout(&out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics_diff(left: &str, right: &str) -> Result<ExitCode, String> {
    let (l, r) = match (load_snapshots(left), load_snapshots(right)) {
        (Ok(l), Ok(r)) => (l, r),
        (l, r) => {
            for res in [l.err(), r.err()].into_iter().flatten() {
                eprintln!("{res}");
            }
            return Ok(ExitCode::FAILURE);
        }
    };
    // Per-node collections are folded into one aggregate per side, so a
    // 4-node run diffs cleanly against a 2-node one.
    let fold = |snaps: Vec<(Option<u64>, MetricsSnapshot)>| {
        let mut total = MetricsSnapshot::default();
        for (_, snap) in &snaps {
            total.merge(snap);
        }
        total
    };
    let delta = fold(l).diff(&fold(r));
    if delta.is_empty() {
        write_stdout(&format!("metrics: {left} and {right} are identical\n"))?;
        Ok(ExitCode::SUCCESS)
    } else {
        write_stdout(&delta)?;
        Ok(ExitCode::FAILURE)
    }
}

fn parse_query_flag(args: &[String]) -> Result<Option<u64>, String> {
    match args {
        [] => Ok(None),
        [flag, id] if flag == "--query" => id
            .parse()
            .map(Some)
            .map_err(|_| format!("dde-trace: bad query id `{id}`\n{USAGE}")),
        _ => Err(USAGE.to_string()),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [cmd, a, b] if cmd == "diff" => cmd_diff(a, b),
        [cmd, a, rest @ ..] if cmd == "summary" => cmd_summary(a, parse_query_flag(rest)?),
        [cmd, a] if cmd == "chrome" => cmd_chrome(a),
        [cmd, a] if cmd == "attribute" => cmd_attribute(a, false),
        [cmd, a, flag] if cmd == "attribute" && flag == "--json" => cmd_attribute(a, true),
        [cmd, a] if cmd == "critical-path" => cmd_critical_path(a, false),
        [cmd, a, flag] if cmd == "critical-path" && flag == "--json" => cmd_critical_path(a, true),
        [cmd, a, b] if cmd == "bench-diff" => cmd_bench_diff(a, b, None),
        [cmd, a, b, t] if cmd == "bench-diff" => cmd_bench_diff(a, b, Some(t)),
        [cmd, a] if cmd == "metrics" => cmd_metrics(a),
        [cmd, a, b] if cmd == "metrics" => cmd_metrics_diff(a, b),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    // lint: allow(nondeterminism) — CLI argv parsing, not simulation state.
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_parser_accepts_the_bench_toml_subset() {
        let tol =
            Tolerances::parse("# comment\n[tolerances]\ndefault = 0.1\nmegabytes = 0.05 # tight\n")
                .unwrap();
        assert_eq!(tol.of("megabytes"), 0.05);
        assert_eq!(tol.of("resolution_ratio"), 0.1);
        assert!(Tolerances::parse("nonsense\n").is_err());
    }

    fn doc(mb: f64, p50: i64) -> JsonValue {
        parse(&format!(
            r#"{{"figure":"fig2","points":[{{"schemes":{{"lvf":{{"megabytes":{{"mean":{mb},"stddev":0.5}},"latency_us":{{"p50":{p50}}}}}}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn bench_compare_passes_within_tolerance_and_fails_outside() {
        let tol = Tolerances::parse("default = 0.1\n").unwrap();
        let mut failures = Vec::new();
        bench_compare(
            "$",
            "",
            false,
            &doc(100.0, 1000),
            &doc(105.0, 1050),
            &tol,
            &mut failures,
        );
        assert!(failures.is_empty(), "{failures:?}");
        bench_compare(
            "$",
            "",
            false,
            &doc(100.0, 1000),
            &doc(120.0, 1000),
            &tol,
            &mut failures,
        );
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("megabytes"), "{failures:?}");
    }

    #[test]
    fn bench_compare_rejects_shape_and_metadata_changes() {
        let tol = Tolerances::parse("default = 0.5\n").unwrap();
        let a = parse(r#"{"figure":"fig2","reps":10}"#).unwrap();
        let b = parse(r#"{"figure":"fig2","reps":5}"#).unwrap();
        let mut failures = Vec::new();
        bench_compare("$", "", false, &a, &b, &tol, &mut failures);
        assert_eq!(failures.len(), 1, "{failures:?}");
        let c = parse(r#"{"figure":"fig3","reps":10}"#).unwrap();
        failures.clear();
        bench_compare("$", "", false, &a, &c, &tol, &mut failures);
        assert_eq!(failures.len(), 1, "{failures:?}");
    }

    #[test]
    fn metrics_command_prints_diffs_and_rejects_malformed_input() {
        let dir = std::env::temp_dir();
        let write = |name: &str, text: &str| {
            let path = dir.join(format!("dde_trace_test_{name}"));
            std::fs::write(&path, text).unwrap();
            path.to_string_lossy().into_owned()
        };
        let reg_a = dde_obs::MetricsRegistry::new();
        reg_a.counter("tcp.frames_out").add(3);
        let a = write(
            "a.json",
            &reg_a.snapshot().to_json_value().to_compact_string(),
        );
        let reg_b = dde_obs::MetricsRegistry::new();
        reg_b.counter("tcp.frames_out").add(5);
        let b = write(
            "b.json",
            &reg_b.snapshot().to_json_value().to_compact_string(),
        );

        // ExitCode has no PartialEq; compare through Debug.
        let code = |r: Result<ExitCode, String>| format!("{:?}", r.unwrap());
        let ok = format!("{:?}", ExitCode::SUCCESS);
        let fail = format!("{:?}", ExitCode::FAILURE);

        assert_eq!(code(cmd_metrics(&a)), ok);
        assert_eq!(code(cmd_metrics_diff(&a, &a)), ok);
        assert_eq!(code(cmd_metrics_diff(&a, &b)), fail);

        // A per-node collection is accepted whole...
        let nodes = write(
            "nodes.json",
            &format!(
                r#"{{"nodes":[{{"node":0,"metrics":{}}}]}}"#,
                reg_a.snapshot().to_json_value().to_compact_string()
            ),
        );
        assert_eq!(code(cmd_metrics(&nodes)), ok);
        assert_eq!(code(cmd_metrics_diff(&nodes, &a)), ok);

        // ...and malformed input is a gate failure, not a crash.
        let bad = write("bad.json", r#"{"counters":"nope"}"#);
        assert_eq!(code(cmd_metrics(&bad)), fail);
        assert_eq!(code(cmd_metrics_diff(&bad, &a)), fail);
        let not_json = write("bad.txt", "not json at all");
        assert_eq!(code(cmd_metrics(&not_json)), fail);
    }

    #[test]
    fn query_flag_parses() {
        assert_eq!(parse_query_flag(&[]).unwrap(), None);
        let args = ["--query".to_string(), "7".to_string()];
        assert_eq!(parse_query_flag(&args).unwrap(), Some(7));
        assert!(parse_query_flag(&["--query".to_string()]).is_err());
    }
}

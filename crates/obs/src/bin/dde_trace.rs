//! `dde-trace` — inspect and diff deterministic JSONL traces.
//!
//! ```text
//! dde-trace diff A.jsonl B.jsonl    # exit 0 if identical, 1 if divergent
//! dde-trace summary A.jsonl         # per-kind event counts + time span
//! dde-trace chrome A.jsonl          # Chrome trace-event JSON on stdout
//! ```

// CLI entry point: argv/exit-code handling is inherently ambient; the
// determinism rules target simulation code, not operator tooling.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use dde_obs::{chrome_trace_from_jsonl, diff_jsonl, json::parse};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;

/// Writes `text` to stdout; a closed pipe (e.g. `| head`) is not an error.
fn write_stdout(text: &str) -> Result<(), String> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("dde-trace: cannot write to stdout: {e}")),
    }
}

const USAGE: &str = "usage:
  dde-trace diff <left.jsonl> <right.jsonl>   structural diff; exit 1 on divergence
  dde-trace summary <trace.jsonl>             per-kind counts and time span
  dde-trace chrome <trace.jsonl>              convert to Chrome trace-event JSON
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("dde-trace: cannot read {path}: {e}"))
}

fn cmd_diff(left: &str, right: &str) -> Result<ExitCode, String> {
    let l = read(left)?;
    let r = read(right)?;
    let diff = diff_jsonl(&l, &r);
    write_stdout(&diff.render())?;
    Ok(if diff.is_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_summary(path: &str) -> Result<ExitCode, String> {
    let text = read(path)?;
    let mut out = String::new();
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0u64;
    let mut first_t: Option<i64> = None;
    let mut last_t: Option<i64> = None;
    for line in text.lines() {
        events += 1;
        let kind = parse(line)
            .ok()
            .and_then(|v| {
                if let Some(t) = v.get("t").and_then(|t| t.as_int()) {
                    first_t = Some(first_t.map_or(t, |f| f.min(t)));
                    last_t = Some(last_t.map_or(t, |l| l.max(t)));
                }
                v.get("kind").and_then(|k| k.as_str().map(String::from))
            })
            .unwrap_or_else(|| "?".to_string());
        *kinds.entry(kind).or_default() += 1;
    }
    out.push_str(&format!("events: {events}\n"));
    if let (Some(f), Some(l)) = (first_t, last_t) {
        out.push_str(&format!(
            "span:   t={f}us .. t={l}us ({:.3}s)\n",
            (l - f) as f64 / 1e6
        ));
    }
    for (kind, count) in &kinds {
        out.push_str(&format!("  {kind:>14}: {count:>8}\n"));
    }
    write_stdout(&out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_chrome(path: &str) -> Result<ExitCode, String> {
    let text = read(path)?;
    write_stdout(&chrome_trace_from_jsonl(&text))?;
    Ok(ExitCode::SUCCESS)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [cmd, a, b] if cmd == "diff" => cmd_diff(a, b),
        [cmd, a] if cmd == "summary" => cmd_summary(a),
        [cmd, a] if cmd == "chrome" => cmd_chrome(a),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    // lint: allow(nondeterminism) — CLI argv parsing, not simulation state.
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

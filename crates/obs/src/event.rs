//! The trace event taxonomy: typed events over the full query lifecycle.
//!
//! Events cover both layers of the stack. The network simulator emits
//! link-level events (`transmit`, `deliver`, `loss`, `drop`, `purge`,
//! `fault`); the Athena protocol emits decision-level events (`query-init`,
//! `plan`, `request-send`, `cache-hit`/`cache-miss`, `label-hit`,
//! `approx-hit`, `local-sample`, `cache-store`, `annotate`, `label-share`,
//! `prefetch-push`, `triage-drop`, `query-resolved`, `query-missed`).
//!
//! Events that consume resources on behalf of a decision carry an
//! *attribution key*: the causing query id (link-layer `query` field) and,
//! where the predicate is known, the OR-term/condition coordinates
//! (`term`/`cond` on `request-send` and `annotate`). The
//! [`ledger`](crate::ledger) module folds these into a per-decision
//! [`CostLedger`](crate::ledger::CostLedger).
//!
//! A [`TraceRecord`] stamps an [`EventKind`] with the *simulated* time it
//! occurred and the node reporting it. Node identity is a plain `u32`
//! (`NodeId` lives upstream in `dde-netsim`, which depends on this crate).

use crate::json::JsonValue;
use dde_logic::time::SimTime;

/// One trace event: what happened, where, at which simulated instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Index of the node reporting the event.
    pub node: u32,
    /// The event itself.
    pub kind: EventKind,
}

/// What happened. Variants carrying `String` payloads should only be built
/// when the active sink is [enabled](crate::sink::Sink::enabled), so the
/// null sink costs a branch and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message started clocking onto the directed link `from → to`.
    Transmit {
        /// Transmitting node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Message kind tag (`announce`, `request`, `data`, `label`, …).
        msg: &'static str,
        /// Wire size in bytes.
        bytes: u64,
        /// Whether it rode in the background priority class.
        background: bool,
        /// The decision query this transmission serves, when attributable.
        query: Option<u64>,
    },
    /// A message arrived and is being handled at `to`.
    Deliver {
        /// Transmitting node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Message kind tag.
        msg: &'static str,
        /// The decision query this delivery serves, when attributable.
        query: Option<u64>,
    },
    /// A transmission was lost to link noise (seeded sampling).
    Loss {
        /// Transmitting node.
        from: u32,
        /// Intended receiver.
        to: u32,
        /// Message kind tag.
        msg: &'static str,
        /// Wire size in bytes (bandwidth was still consumed).
        bytes: u64,
        /// The decision query the lost message served, when attributable.
        query: Option<u64>,
    },
    /// An in-flight message was dropped at arrival.
    Drop {
        /// Transmitting node.
        from: u32,
        /// Intended receiver.
        to: u32,
        /// Why: `link-down` or `node-down`.
        reason: &'static str,
    },
    /// Queued (never transmitted) messages were purged from a link by a
    /// fault.
    Purge {
        /// Transmitting side of the purged link.
        from: u32,
        /// Receiving side of the purged link.
        to: u32,
        /// How many messages vanished.
        count: u64,
    },
    /// A scheduled fault transition was applied.
    Fault {
        /// Which: `node-crash`, `node-recover`, `link-down`, `link-up`.
        fault: &'static str,
        /// The affected node (or one endpoint of the affected link).
        node: u32,
        /// The other link endpoint, for link faults.
        peer: Option<u32>,
    },
    /// A decision query was issued at its origin (`Query_Init`).
    QueryInit {
        /// Query id.
        query: u64,
        /// Origin node.
        origin: u32,
    },
    /// The origin planned its retrieval: the decision-driven ordering
    /// rationale, rendered by `dde-sched`'s `explain`.
    Plan {
        /// Query id.
        query: u64,
        /// Strategy code (`cmp`, `slt`, `lcf`, `lvf`, `lvfl`).
        strategy: &'static str,
        /// Number of candidate objects selected.
        candidates: u64,
        /// Predicted expected retrieval cost in bytes (§III-A expected
        /// short-circuit cost of the chosen plan ordering).
        expected_bytes: u64,
        /// Human-readable ordering rationale (term ranking, expected
        /// costs, short-circuit ratios).
        rationale: String,
    },
    /// The origin sent a fetch request into the network.
    RequestSend {
        /// Query id.
        query: u64,
        /// Requested object name.
        name: String,
        /// First hop the request was sent to.
        hop: u32,
        /// OR-term index of the predicate driving this fetch.
        term: Option<u32>,
        /// Condition index within the OR-term.
        cond: Option<u32>,
    },
    /// A request was answered from this node's content store.
    CacheHit {
        /// Served object name.
        name: String,
        /// Neighbor the reply was sent to.
        requester: u32,
        /// The decision query the request served, when attributable.
        query: Option<u64>,
    },
    /// A request could not be served locally and was forwarded (or hit a
    /// dead end).
    CacheMiss {
        /// Requested object name.
        name: String,
        /// Next hop it was forwarded to, if a route existed.
        forwarded_to: Option<u32>,
        /// The decision query the request served, when attributable.
        query: Option<u64>,
    },
    /// A request was answered with cached *labels* instead of data (§VI-D).
    LabelHit {
        /// Neighbor the labels were sent to.
        requester: u32,
        /// How many of the request's labels were answered.
        labels: u64,
        /// The decision query the request served, when attributable.
        query: Option<u64>,
    },
    /// A request was answered with an approximate (same-prefix) substitute
    /// object (§V-A).
    ApproxHit {
        /// Requested object name.
        name: String,
        /// The substitute actually served.
        substitute: String,
        /// The decision query the request served, when attributable.
        query: Option<u64>,
    },
    /// A label was resolved by sampling a co-located sensor (no network).
    LocalSample {
        /// Sampled object name.
        name: String,
        /// The decision query the sample served, when attributable.
        query: Option<u64>,
    },
    /// An object was stored into a node's content store; occupancy is
    /// charged as `bytes × validity_us` (byte-microseconds) to `query`.
    CacheStore {
        /// Stored object name.
        name: String,
        /// Object payload size in bytes.
        bytes: u64,
        /// Remaining validity when stored, in microseconds.
        validity_us: u64,
        /// The decision query whose retrieval caused the store.
        query: Option<u64>,
    },
    /// Evidence was annotated into a label value at the query origin.
    Annotate {
        /// Query id.
        query: u64,
        /// The judged label.
        label: String,
        /// The judged value.
        value: bool,
        /// OR-term index of the annotated predicate.
        term: Option<u32>,
        /// Condition index within the OR-term.
        cond: Option<u32>,
    },
    /// A label value was shared toward the evidence source (§VI-D).
    LabelShare {
        /// The shared label.
        label: String,
        /// The shared value.
        value: bool,
        /// First hop of the share.
        toward: u32,
        /// The decision query whose annotation is being shared.
        query: Option<u64>,
    },
    /// A source-side prefetch push was initiated (§VI-A).
    PrefetchPush {
        /// Pushed object name.
        name: String,
        /// First hop toward the anticipated consumer.
        toward: u32,
        /// The decision query whose announce triggered the push.
        query: Option<u64>,
    },
    /// A background push was dropped by sub-additive utility triage (§V-B).
    TriageDrop {
        /// The redundant object name.
        name: String,
        /// The hop it would have been pushed to.
        hop: u32,
    },
    /// A query reached a decision before its deadline.
    QueryResolved {
        /// Query id.
        query: u64,
        /// `viable` or `infeasible`.
        outcome: &'static str,
        /// Issue-to-decision latency in microseconds.
        latency_us: u64,
    },
    /// A query's deadline passed while undecided.
    QueryMissed {
        /// Query id.
        query: u64,
    },
    /// An in-flight fetch hit its retry timeout and the origin is about to
    /// re-plan; the selected source's reliability estimate is discounted.
    /// Emitted only by adaptive-planning runs.
    FetchTimeout {
        /// Query id.
        query: u64,
        /// The object name whose fetch timed out.
        name: String,
        /// The source node the fetch was directed at.
        source: u32,
    },
    /// The admission gate ruled on a query (adaptive-planning runs only).
    Admission {
        /// Query id.
        query: u64,
        /// `admit`, `defer`, or `shed`.
        verdict: &'static str,
        /// Predicted expected retrieval cost in bytes at gate time.
        predicted_bytes: u64,
    },
}

impl EventKind {
    /// The stable kind tag used in JSONL traces and per-kind diff deltas.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Transmit { .. } => "transmit",
            EventKind::Deliver { .. } => "deliver",
            EventKind::Loss { .. } => "loss",
            EventKind::Drop { .. } => "drop",
            EventKind::Purge { .. } => "purge",
            EventKind::Fault { .. } => "fault",
            EventKind::QueryInit { .. } => "query-init",
            EventKind::Plan { .. } => "plan",
            EventKind::RequestSend { .. } => "request-send",
            EventKind::CacheHit { .. } => "cache-hit",
            EventKind::CacheMiss { .. } => "cache-miss",
            EventKind::LabelHit { .. } => "label-hit",
            EventKind::ApproxHit { .. } => "approx-hit",
            EventKind::LocalSample { .. } => "local-sample",
            EventKind::CacheStore { .. } => "cache-store",
            EventKind::Annotate { .. } => "annotate",
            EventKind::LabelShare { .. } => "label-share",
            EventKind::PrefetchPush { .. } => "prefetch-push",
            EventKind::TriageDrop { .. } => "triage-drop",
            EventKind::QueryResolved { .. } => "query-resolved",
            EventKind::QueryMissed { .. } => "query-missed",
            EventKind::FetchTimeout { .. } => "fetch-timeout",
            EventKind::Admission { .. } => "admission",
        }
    }

    /// The variant's payload fields as ordered JSON pairs (without the
    /// common `t`/`node`/`kind` envelope).
    pub fn fields(&self) -> Vec<(String, JsonValue)> {
        fn u(v: u32) -> JsonValue {
            JsonValue::Int(v as i64)
        }
        fn n(v: u64) -> JsonValue {
            JsonValue::Int(v as i64)
        }
        fn s(v: &str) -> JsonValue {
            JsonValue::Str(v.to_string())
        }
        /// Appends `"query": q` only when the attribution is present, so
        /// unattributable events keep their pre-attribution wire shape.
        fn push_query(pairs: &mut Vec<(String, JsonValue)>, query: &Option<u64>) {
            if let Some(q) = query {
                pairs.push(("query".into(), JsonValue::Int(*q as i64)));
            }
        }
        /// Appends `"term"`/`"cond"` predicate coordinates when present.
        fn push_pred(pairs: &mut Vec<(String, JsonValue)>, term: &Option<u32>, cond: &Option<u32>) {
            if let Some(t) = term {
                pairs.push(("term".into(), JsonValue::Int(*t as i64)));
            }
            if let Some(c) = cond {
                pairs.push(("cond".into(), JsonValue::Int(*c as i64)));
            }
        }
        match self {
            EventKind::Transmit {
                from,
                to,
                msg,
                bytes,
                background,
                query,
            } => {
                let mut pairs = vec![
                    ("from".into(), u(*from)),
                    ("to".into(), u(*to)),
                    ("msg".into(), s(msg)),
                    ("bytes".into(), n(*bytes)),
                    ("bg".into(), JsonValue::Bool(*background)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                query,
            } => {
                let mut pairs = vec![
                    ("from".into(), u(*from)),
                    ("to".into(), u(*to)),
                    ("msg".into(), s(msg)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::Loss {
                from,
                to,
                msg,
                bytes,
                query,
            } => {
                let mut pairs = vec![
                    ("from".into(), u(*from)),
                    ("to".into(), u(*to)),
                    ("msg".into(), s(msg)),
                    ("bytes".into(), n(*bytes)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::Drop { from, to, reason } => vec![
                ("from".into(), u(*from)),
                ("to".into(), u(*to)),
                ("reason".into(), s(reason)),
            ],
            EventKind::Purge { from, to, count } => vec![
                ("from".into(), u(*from)),
                ("to".into(), u(*to)),
                ("count".into(), n(*count)),
            ],
            EventKind::Fault { fault, node, peer } => {
                let mut pairs = vec![("fault".into(), s(fault)), ("a".into(), u(*node))];
                if let Some(p) = peer {
                    pairs.push(("b".into(), u(*p)));
                }
                pairs
            }
            EventKind::QueryInit { query, origin } => {
                vec![("query".into(), n(*query)), ("origin".into(), u(*origin))]
            }
            EventKind::Plan {
                query,
                strategy,
                candidates,
                expected_bytes,
                rationale,
            } => vec![
                ("query".into(), n(*query)),
                ("strategy".into(), s(strategy)),
                ("candidates".into(), n(*candidates)),
                ("expected_bytes".into(), n(*expected_bytes)),
                ("rationale".into(), s(rationale)),
            ],
            EventKind::RequestSend {
                query,
                name,
                hop,
                term,
                cond,
            } => {
                let mut pairs = vec![
                    ("query".into(), n(*query)),
                    ("name".into(), s(name)),
                    ("hop".into(), u(*hop)),
                ];
                push_pred(&mut pairs, term, cond);
                pairs
            }
            EventKind::CacheHit {
                name,
                requester,
                query,
            } => {
                let mut pairs = vec![
                    ("name".into(), s(name)),
                    ("requester".into(), u(*requester)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::CacheMiss {
                name,
                forwarded_to,
                query,
            } => {
                let mut pairs = vec![
                    ("name".into(), s(name)),
                    (
                        "forwarded_to".into(),
                        forwarded_to.map(u).unwrap_or(JsonValue::Null),
                    ),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::LabelHit {
                requester,
                labels,
                query,
            } => {
                let mut pairs = vec![
                    ("requester".into(), u(*requester)),
                    ("labels".into(), n(*labels)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::ApproxHit {
                name,
                substitute,
                query,
            } => {
                let mut pairs = vec![
                    ("name".into(), s(name)),
                    ("substitute".into(), s(substitute)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::LocalSample { name, query } => {
                let mut pairs = vec![("name".into(), s(name))];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::CacheStore {
                name,
                bytes,
                validity_us,
                query,
            } => {
                let mut pairs = vec![
                    ("name".into(), s(name)),
                    ("bytes".into(), n(*bytes)),
                    ("validity_us".into(), n(*validity_us)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::Annotate {
                query,
                label,
                value,
                term,
                cond,
            } => {
                let mut pairs = vec![
                    ("query".into(), n(*query)),
                    ("label".into(), s(label)),
                    ("value".into(), JsonValue::Bool(*value)),
                ];
                push_pred(&mut pairs, term, cond);
                pairs
            }
            EventKind::LabelShare {
                label,
                value,
                toward,
                query,
            } => {
                let mut pairs = vec![
                    ("label".into(), s(label)),
                    ("value".into(), JsonValue::Bool(*value)),
                    ("toward".into(), u(*toward)),
                ];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::PrefetchPush {
                name,
                toward,
                query,
            } => {
                let mut pairs = vec![("name".into(), s(name)), ("toward".into(), u(*toward))];
                push_query(&mut pairs, query);
                pairs
            }
            EventKind::TriageDrop { name, hop } => {
                vec![("name".into(), s(name)), ("hop".into(), u(*hop))]
            }
            EventKind::QueryResolved {
                query,
                outcome,
                latency_us,
            } => vec![
                ("query".into(), n(*query)),
                ("outcome".into(), s(outcome)),
                ("latency_us".into(), n(*latency_us)),
            ],
            EventKind::QueryMissed { query } => vec![("query".into(), n(*query))],
            EventKind::FetchTimeout {
                query,
                name,
                source,
            } => vec![
                ("query".into(), n(*query)),
                ("name".into(), s(name)),
                ("source".into(), u(*source)),
            ],
            EventKind::Admission {
                query,
                verdict,
                predicted_bytes,
            } => vec![
                ("query".into(), n(*query)),
                ("verdict".into(), s(verdict)),
                ("predicted_bytes".into(), n(*predicted_bytes)),
            ],
        }
    }
}

impl TraceRecord {
    /// The record as a JSON object with a fixed key order:
    /// `t` (microseconds of simulated time), `node`, `kind`, then the
    /// variant's payload fields.
    pub fn to_json_value(&self) -> JsonValue {
        let mut pairs = vec![
            ("t".into(), JsonValue::Int(self.at.as_micros() as i64)),
            ("node".into(), JsonValue::Int(self.node as i64)),
            (
                "kind".into(),
                JsonValue::Str(self.kind.kind_name().to_string()),
            ),
        ];
        pairs.extend(self.kind.fields());
        JsonValue::Object(pairs)
    }

    /// The record as one JSONL line (no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        self.to_json_value().to_compact_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn jsonl_line_has_fixed_envelope() {
        let rec = TraceRecord {
            at: SimTime::from_micros(1500),
            node: 3,
            kind: EventKind::Transmit {
                from: 3,
                to: 4,
                msg: "data",
                bytes: 450_000,
                background: false,
                query: None,
            },
        };
        assert_eq!(
            rec.to_jsonl_line(),
            r#"{"t":1500,"node":3,"kind":"transmit","from":3,"to":4,"msg":"data","bytes":450000,"bg":false}"#
        );
    }

    #[test]
    fn attribution_appends_query_field() {
        let rec = TraceRecord {
            at: SimTime::from_micros(1500),
            node: 3,
            kind: EventKind::Transmit {
                from: 3,
                to: 4,
                msg: "data",
                bytes: 450_000,
                background: false,
                query: Some(12),
            },
        };
        assert_eq!(
            rec.to_jsonl_line(),
            r#"{"t":1500,"node":3,"kind":"transmit","from":3,"to":4,"msg":"data","bytes":450000,"bg":false,"query":12}"#
        );
    }

    #[test]
    fn every_variant_serializes_and_parses() {
        let kinds = vec![
            EventKind::Transmit {
                from: 0,
                to: 1,
                msg: "request",
                bytes: 64,
                background: true,
                query: Some(7),
            },
            EventKind::Deliver {
                from: 0,
                to: 1,
                msg: "data",
                query: None,
            },
            EventKind::Loss {
                from: 0,
                to: 1,
                msg: "label",
                bytes: 9,
                query: Some(3),
            },
            EventKind::Drop {
                from: 0,
                to: 1,
                reason: "link-down",
            },
            EventKind::Purge {
                from: 0,
                to: 1,
                count: 3,
            },
            EventKind::Fault {
                fault: "link-down",
                node: 0,
                peer: Some(1),
            },
            EventKind::Fault {
                fault: "node-crash",
                node: 5,
                peer: None,
            },
            EventKind::QueryInit {
                query: 7,
                origin: 2,
            },
            EventKind::Plan {
                query: 7,
                strategy: "lvf",
                candidates: 4,
                expected_bytes: 120_000,
                rationale: "1. course of action #0\n".into(),
            },
            EventKind::RequestSend {
                query: 7,
                name: "/city/x".into(),
                hop: 1,
                term: Some(0),
                cond: Some(2),
            },
            EventKind::CacheHit {
                name: "/city/x".into(),
                requester: 0,
                query: Some(7),
            },
            EventKind::CacheMiss {
                name: "/city/x".into(),
                forwarded_to: None,
                query: None,
            },
            EventKind::LabelHit {
                requester: 0,
                labels: 2,
                query: Some(7),
            },
            EventKind::ApproxHit {
                name: "/city/x/a".into(),
                substitute: "/city/x/b".into(),
                query: Some(7),
            },
            EventKind::LocalSample {
                name: "/city/x".into(),
                query: Some(7),
            },
            EventKind::CacheStore {
                name: "/city/x".into(),
                bytes: 450_000,
                validity_us: 60_000_000,
                query: Some(7),
            },
            EventKind::Annotate {
                query: 7,
                label: "cond".into(),
                value: true,
                term: Some(1),
                cond: Some(0),
            },
            EventKind::LabelShare {
                label: "cond".into(),
                value: false,
                toward: 3,
                query: Some(7),
            },
            EventKind::PrefetchPush {
                name: "/city/x".into(),
                toward: 3,
                query: Some(7),
            },
            EventKind::TriageDrop {
                name: "/city/x".into(),
                hop: 3,
            },
            EventKind::QueryResolved {
                query: 7,
                outcome: "viable",
                latency_us: 1_200_000,
            },
            EventKind::QueryMissed { query: 8 },
            EventKind::FetchTimeout {
                query: 7,
                name: "/city/x".into(),
                source: 3,
            },
            EventKind::Admission {
                query: 9,
                verdict: "defer",
                predicted_bytes: 450_000,
            },
        ];
        for kind in kinds {
            let rec = TraceRecord {
                at: SimTime::from_micros(9),
                node: 0,
                kind,
            };
            let line = rec.to_jsonl_line();
            let v = parse(&line).expect(&line);
            assert_eq!(
                v.get("kind").and_then(|k| k.as_str()),
                Some(rec.kind.kind_name())
            );
            assert_eq!(v.get("t").and_then(|t| t.as_int()), Some(9));
        }
    }
}

//! Structural diffing of JSONL traces.
//!
//! Because traces are deterministic, equality is exact: the diff reports
//! the *first divergent line* (the replay-debugging entry point — the first
//! event where two runs disagree) plus per-kind event-count deltas so a
//! divergence can be localised to a subsystem at a glance.

use crate::json::parse;
use std::collections::BTreeMap;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based line number of the first disagreement.
    pub line: usize,
    /// The left trace's line, if it has one at this position.
    pub left: Option<String>,
    /// The right trace's line, if it has one at this position.
    pub right: Option<String>,
}

/// Result of structurally diffing two JSONL traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Event count of the left trace.
    pub left_events: usize,
    /// Event count of the right trace.
    pub right_events: usize,
    /// First divergent line, if any.
    pub divergence: Option<Divergence>,
    /// Per-kind `(left count, right count)` for every kind appearing in
    /// either trace, in lexicographic kind order. Lines that fail to parse
    /// are tallied under the pseudo-kind `"?"`.
    pub kind_counts: BTreeMap<String, (u64, u64)>,
}

impl TraceDiff {
    /// Whether the traces are byte-identical line by line.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }

    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events: left={} right={}\n",
            self.left_events, self.right_events
        ));
        match &self.divergence {
            None => out.push_str("divergence: none (traces identical)\n"),
            Some(d) => {
                out.push_str(&format!("divergence: first at line {}\n", d.line));
                out.push_str(&format!(
                    "  left:  {}\n",
                    d.left.as_deref().unwrap_or("<end of trace>")
                ));
                out.push_str(&format!(
                    "  right: {}\n",
                    d.right.as_deref().unwrap_or("<end of trace>")
                ));
            }
        }
        out.push_str("per-kind counts (left/right):\n");
        for (kind, (l, r)) in &self.kind_counts {
            let marker = if l == r { " " } else { "!" };
            out.push_str(&format!("{marker} {kind:>14}: {l:>8} {r:>8}\n"));
        }
        out
    }
}

fn kind_of(line: &str) -> String {
    parse(line)
        .ok()
        .and_then(|v| v.get("kind").and_then(|k| k.as_str().map(String::from)))
        .unwrap_or_else(|| "?".to_string())
}

/// Diff two JSONL traces (full file contents, one event per line).
pub fn diff_jsonl(left: &str, right: &str) -> TraceDiff {
    let l_lines: Vec<&str> = left.lines().collect();
    let r_lines: Vec<&str> = right.lines().collect();

    let mut divergence = None;
    let upto = l_lines.len().max(r_lines.len());
    for i in 0..upto {
        let l = l_lines.get(i).copied();
        let r = r_lines.get(i).copied();
        if l != r {
            divergence = Some(Divergence {
                line: i + 1,
                left: l.map(String::from),
                right: r.map(String::from),
            });
            break;
        }
    }

    let mut kind_counts: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for line in &l_lines {
        kind_counts.entry(kind_of(line)).or_default().0 += 1;
    }
    for line in &r_lines {
        kind_counts.entry(kind_of(line)).or_default().1 += 1;
    }

    TraceDiff {
        left_events: l_lines.len(),
        right_events: r_lines.len(),
        divergence,
        kind_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str =
        "{\"t\":1,\"node\":0,\"kind\":\"transmit\"}\n{\"t\":2,\"node\":0,\"kind\":\"deliver\"}\n";

    #[test]
    fn identical_traces_have_no_divergence() {
        let d = diff_jsonl(A, A);
        assert!(d.is_identical());
        assert_eq!(d.left_events, 2);
        assert_eq!(d.kind_counts.get("transmit"), Some(&(1, 1)));
        assert!(d.render().contains("divergence: none"));
    }

    #[test]
    fn first_divergent_line_is_reported() {
        let b = "{\"t\":1,\"node\":0,\"kind\":\"transmit\"}\n{\"t\":3,\"node\":0,\"kind\":\"deliver\"}\n";
        let d = diff_jsonl(A, b);
        let div = d.divergence.expect("should diverge");
        assert_eq!(div.line, 2);
        assert!(div.left.unwrap().contains("\"t\":2"));
        assert!(div.right.unwrap().contains("\"t\":3"));
    }

    #[test]
    fn length_mismatch_diverges_at_the_tail() {
        let b = "{\"t\":1,\"node\":0,\"kind\":\"transmit\"}\n";
        let d = diff_jsonl(A, b);
        let div = d.divergence.expect("should diverge");
        assert_eq!(div.line, 2);
        assert!(div.right.is_none());
        assert_eq!(d.kind_counts.get("deliver"), Some(&(1, 0)));
    }

    #[test]
    fn unparseable_lines_count_as_unknown() {
        let d = diff_jsonl("not json\n", "not json\n");
        assert!(d.is_identical());
        assert_eq!(d.kind_counts.get("?"), Some(&(1, 1)));
    }
}

//! # dde-obs — deterministic observability for the Athena reproduction
//!
//! A zero-ambient-nondeterminism tracing and metrics layer keyed to the
//! *simulated* clock. Every timestamp a [`TraceRecord`] carries is a
//! [`SimTime`](dde_logic::time::SimTime) read from the event loop — never a
//! wall clock — so two runs of the same scenario and seed emit **byte
//! identical** JSONL traces, and a trace diff is a replay-debugging tool
//! rather than a fuzzy comparison.
//!
//! - [`event`] — the typed span/event taxonomy over the full query
//!   lifecycle (query init → plan decision → request send → link transit →
//!   cache hit/miss → annotate → label share → resolve/timeout);
//! - [`sink`] — the [`Sink`] contract plus the stock implementations:
//!   [`NullSink`] (compiled-in but free), [`MemorySink`], [`JsonlSink`],
//!   [`ChromeTraceSink`], and the cloneable [`SharedSink`] handle;
//! - [`json`] — the hand-rolled JSON subset (the workspace is offline:
//!   no serde_json), with a deterministic writer and a strict parser;
//! - [`hist`] — fixed-bucket latency histograms surfacing p50/p95/p99;
//! - [`metrics`] — the live wall-clock metrics registry (lock-free
//!   counters/gauges/histograms) with a deterministic exposition snapshot,
//!   used only by the non-deterministic cluster backend (DESIGN.md §5i);
//! - [`flight`] — the bounded [`FlightRecorder`] ring sink that keeps the
//!   last N records for post-mortem dumps on live-cluster failures;
//! - [`diff`] — structural trace diffing (first divergent event,
//!   per-kind count deltas) behind the `dde-trace` CLI;
//! - [`chrome`] — Chrome trace-event (`about:tracing` / Perfetto) export;
//! - [`attrib`] — attribution keys and the normalized record view;
//! - [`feedback`] — the predicted-vs-actual planner feedback fold
//!   ([`FeedbackSink`]) behind the adaptive-planning loop;
//! - [`ledger`] — the per-decision [`CostLedger`] with its conservation
//!   invariant, built live by [`LedgerSink`] or folded from JSONL;
//! - [`merge`] — deterministic merging of per-shard trace streams for the
//!   parallel simulator (sorted by a thread-interleaving-independent key);
//! - [`critical`] — per-query critical-path extraction (queueing vs.
//!   transit vs. annotation vs. scheduler wait).

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod attrib;
pub mod chrome;
pub mod critical;
pub mod diff;
pub mod event;
pub mod feedback;
pub mod flight;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod merge;
pub mod metrics;
pub mod sink;

pub use attrib::{LedgerView, PredKey, ViewKind};
pub use chrome::{chrome_trace_from_jsonl, chrome_trace_from_records};
pub use critical::{PathBreakdown, PathWalk};
pub use diff::{diff_jsonl, Divergence, TraceDiff};
pub use event::{EventKind, TraceRecord};
pub use feedback::{EpochStats, FeedbackSink};
pub use flight::FlightRecorder;
pub use hist::{Histogram, BUCKET_BOUNDS_US, BUCKET_COUNT};
pub use json::{JsonError, JsonValue};
pub use ledger::{CostLedger, LedgerSink, PredicateWork, QueryCost};
pub use merge::{MergeKey, ShardMerger};
pub use metrics::{
    parse_snapshot_document, Counter, Gauge, MetricsError, MetricsRegistry, MetricsSnapshot,
    WallHist,
};
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, NullSink, SharedSink, Sink, TeeSink};

//! A bounded flight-recorder ring sink for post-mortem debugging.
//!
//! [`FlightRecorder`] is a [`Sink`] that keeps only the last `cap` trace
//! records (older records are evicted and counted, never reallocated into
//! an unbounded buffer). The live cluster runtime tees one per node host
//! and dumps the retained tail when the host dies — panic, `NetError`, or
//! an equivalence mismatch — so the evidence that led up to the failure
//! survives even when the full JSONL trace was never enabled.
//!
//! The recorder itself is deterministic given a deterministic record
//! stream (it is just a ring); nondeterminism only enters through the live
//! backend that feeds it, which is already the documented boundary
//! (DESIGN.md §5g/§5i).

use crate::event::TraceRecord;
use crate::sink::Sink;
use std::collections::VecDeque;

/// Keeps the last `cap` [`TraceRecord`]s seen, evicting from the front.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` records (`cap` is clamped to at
    /// least 1 so the most recent record is always available).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// How many records have been evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained tail as JSON Lines (same format as
    /// [`JsonlSink`](crate::sink::JsonlSink)), oldest first.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            out.push_str(&rec.to_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// A framed human-readable dump for stderr: a header naming the
    /// failure `context` and the drop count, then the JSONL tail.
    pub fn render_report(&self, context: &str) -> String {
        let mut out = format!(
            "=== flight recorder: {} (last {} of {} records) ===\n",
            context,
            self.ring.len(),
            self.ring.len() as u64 + self.dropped
        );
        out.push_str(&self.render_jsonl());
        out.push_str("=== end flight recorder ===\n");
        out
    }
}

impl Sink for FlightRecorder {
    fn record(&mut self, rec: &TraceRecord) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use dde_logic::time::SimTime;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(t),
            node: 0,
            kind: EventKind::LocalSample {
                name: "/x".to_string(),
                query: None,
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut r = FlightRecorder::new(3);
        for t in 0..10 {
            r.record(&rec(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let times: Vec<u64> = r.records().map(|x| x.at.as_micros()).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn cap_zero_still_keeps_the_latest_record() {
        let mut r = FlightRecorder::new(0);
        r.record(&rec(1));
        r.record(&rec(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.records().next().unwrap().at.as_micros(), 2);
    }

    #[test]
    fn report_frames_the_jsonl_tail() {
        let mut r = FlightRecorder::new(2);
        for t in 0..4 {
            r.record(&rec(t));
        }
        let report = r.render_report("NetError: peer unavailable");
        assert!(report.starts_with("=== flight recorder: NetError"));
        assert!(report.contains("(last 2 of 4 records)"));
        assert_eq!(report.lines().count(), 4, "{report}");
        assert!(report.ends_with("=== end flight recorder ===\n"));
    }

    #[test]
    fn empty_recorder_renders_empty_tail() {
        let r = FlightRecorder::new(8);
        assert!(r.is_empty());
        assert_eq!(r.render_jsonl(), "");
    }
}

//! The per-decision resource-attribution ledger.
//!
//! The paper's thesis is that every resource the network spends should be
//! spent *because a decision needs it* (§I, §III). The ledger makes that
//! auditable: folding a trace — live through [`LedgerSink`], or offline
//! from JSONL — produces a [`CostLedger`] that charges every transmitted
//! byte, retrieval, annotation, and cache byte-microsecond to the decision
//! query that caused it, with unattributable traffic in an explicit
//! [`overhead`](CostLedger::overhead) bucket.
//!
//! **Conservation invariant.** Every `transmit` record is charged to
//! exactly one bucket (its `query` attribution, else overhead), and the
//! ledger's global totals count the same records, so
//! `Σ per-query bytes + overhead bytes == total bytes` holds *by
//! construction* — and the totals equal the simulator's own
//! `bytes_sent`/`messages_sent` counters because both sides count the same
//! transmissions (lost messages included: bandwidth was consumed). The
//! `tests/ledger_conservation.rs` suite checks this against `dde-netsim`'s
//! metrics for random scenarios, seeds, and fault schedules.

use crate::attrib::{LedgerView, PredKey, ViewKind};
use crate::critical::{PathBreakdown, PathWalk};
use crate::event::TraceRecord;
use crate::json::JsonValue;
use crate::sink::Sink;
use core::fmt::Write as _;
use std::collections::{BTreeMap, BTreeSet};

/// Fetch/annotation counts for one predicate (OR-term, condition) of a
/// query — the finest attribution grain the emitters know.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateWork {
    /// Fetch requests issued for this predicate.
    pub requests: u64,
    /// Annotations judged for this predicate.
    pub annotations: u64,
}

/// Everything one decision query was charged for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryCost {
    /// Bytes clocked onto links on this query's behalf (lost included).
    pub bytes: u64,
    /// Messages transmitted on this query's behalf.
    pub messages: u64,
    /// Bytes of those transmissions that were lost to link noise.
    pub lost_bytes: u64,
    /// Bytes broken down by message kind tag (`announce`, `request`, …).
    pub bytes_by_msg: BTreeMap<String, u64>,
    /// Fetch requests issued at the origin.
    pub requests: u64,
    /// Re-issued fetches: a `request-send` repeating an earlier name for
    /// the same query (retry after loss, fault, or timeout).
    pub retransmissions: u64,
    /// Requests served from a content store somewhere on the path.
    pub cache_hits: u64,
    /// Requests answered from cached labels (§VI-D).
    pub label_hits: u64,
    /// Requests answered with an approximate substitute (§V-A).
    pub approx_hits: u64,
    /// Labels resolved by sampling a co-located sensor.
    pub local_samples: u64,
    /// Objects stored into content stores on this query's behalf.
    pub cache_stores: u64,
    /// Cache occupancy charge: Σ payload bytes × remaining validity µs.
    pub cache_byte_us: u64,
    /// Evidence annotations judged at the origin.
    pub annotations: u64,
    /// The planner's predicted expected retrieval cost (§III-A), if a
    /// `plan` record was seen.
    pub predicted_bytes: Option<u64>,
    /// `viable`, `infeasible`, or `missed` once a terminal record is seen.
    pub outcome: Option<String>,
    /// Issue-to-decision latency for resolved queries.
    pub latency_us: Option<u64>,
    /// Per-predicate work, keyed by (OR-term, condition) coordinates.
    pub predicates: BTreeMap<PredKey, PredicateWork>,
    walk: PathWalk,
    seen_names: BTreeSet<String>,
}

impl QueryCost {
    /// The critical-path breakdown accumulated for this query.
    pub fn path(&self) -> &PathBreakdown {
        self.walk.breakdown()
    }

    /// Whether the query reached a terminal event (resolved or missed).
    pub fn is_terminal(&self) -> bool {
        self.outcome.is_some()
    }
}

/// The fold result: per-query charges, the overhead bucket, and the global
/// totals they must conserve against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    /// Charges per decision query, keyed by query id.
    pub queries: BTreeMap<u64, QueryCost>,
    /// Traffic no decision can be charged for: announce floods from other
    /// origins' re-forwarding, PIT-less re-forwards, and similar plumbing.
    pub overhead: QueryCost,
    /// All bytes transmitted in the trace (mirror of the simulator's
    /// `bytes_sent`).
    pub total_bytes: u64,
    /// All messages transmitted in the trace (mirror of `messages_sent`).
    pub total_messages: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one normalized view into the ledger.
    pub fn observe(&mut self, view: &LedgerView) {
        // Global totals and the byte/message charge: every transmit goes
        // to exactly one bucket, which is what makes conservation a
        // construction property rather than a hope.
        if let ViewKind::Transmit { msg, bytes, .. } = &view.kind {
            self.total_bytes = self.total_bytes.saturating_add(*bytes);
            self.total_messages = self.total_messages.saturating_add(1);
            let bucket = match view.query {
                Some(q) => self.queries.entry(q).or_default(),
                None => &mut self.overhead,
            };
            bucket.bytes = bucket.bytes.saturating_add(*bytes);
            bucket.messages = bucket.messages.saturating_add(1);
            let by_msg = bucket.bytes_by_msg.entry(msg.clone()).or_default();
            *by_msg = by_msg.saturating_add(*bytes);
        }
        let Some(q) = view.query else {
            if let ViewKind::Loss { bytes } = &view.kind {
                self.overhead.lost_bytes = self.overhead.lost_bytes.saturating_add(*bytes);
            }
            return;
        };
        let cost = self.queries.entry(q).or_default();
        match &view.kind {
            ViewKind::Transmit { .. } | ViewKind::Deliver { .. } => {}
            ViewKind::Loss { bytes } => {
                cost.lost_bytes = cost.lost_bytes.saturating_add(*bytes);
            }
            ViewKind::QueryInit => {}
            ViewKind::Plan { expected_bytes } => {
                cost.predicted_bytes = Some(*expected_bytes);
            }
            ViewKind::RequestSend { name } => {
                cost.requests = cost.requests.saturating_add(1);
                if !cost.seen_names.insert(name.clone()) {
                    cost.retransmissions = cost.retransmissions.saturating_add(1);
                }
                if let Some(pred) = view.pred {
                    let work = cost.predicates.entry(pred).or_default();
                    work.requests = work.requests.saturating_add(1);
                }
            }
            ViewKind::CacheHit => cost.cache_hits = cost.cache_hits.saturating_add(1),
            ViewKind::CacheMiss => {}
            ViewKind::LabelHit => cost.label_hits = cost.label_hits.saturating_add(1),
            ViewKind::ApproxHit => cost.approx_hits = cost.approx_hits.saturating_add(1),
            ViewKind::LocalSample => cost.local_samples = cost.local_samples.saturating_add(1),
            ViewKind::CacheStore { byte_us } => {
                cost.cache_stores = cost.cache_stores.saturating_add(1);
                cost.cache_byte_us = cost.cache_byte_us.saturating_add(*byte_us);
            }
            ViewKind::Annotate => {
                cost.annotations = cost.annotations.saturating_add(1);
                if let Some(pred) = view.pred {
                    let work = cost.predicates.entry(pred).or_default();
                    work.annotations = work.annotations.saturating_add(1);
                }
            }
            ViewKind::QueryResolved {
                outcome,
                latency_us,
            } => {
                cost.outcome = Some(outcome.clone());
                cost.latency_us = Some(*latency_us);
            }
            ViewKind::QueryMissed => {
                cost.outcome = Some("missed".to_string());
            }
            ViewKind::Other => {}
        }
        cost.walk.observe(view);
    }

    /// Fold a stream of typed records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Self {
        let mut ledger = Self::new();
        for rec in records {
            ledger.observe(&LedgerView::from_record(rec));
        }
        ledger
    }

    /// Fold a JSONL trace. Strict: any unparseable or incomplete line is
    /// an error naming its 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut ledger = Self::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = crate::json::parse(line)
                .map_err(|e| format!("line {}: invalid JSON: {e:?}", idx + 1))?;
            let view = LedgerView::from_json(&value)
                .ok_or_else(|| format!("line {}: missing trace envelope or payload", idx + 1))?;
            ledger.observe(&view);
        }
        Ok(ledger)
    }

    /// Bytes charged to decision queries (excluding overhead).
    pub fn attributed_bytes(&self) -> u64 {
        self.queries
            .values()
            .fold(0u64, |acc, c| acc.saturating_add(c.bytes))
    }

    /// Messages charged to decision queries (excluding overhead).
    pub fn attributed_messages(&self) -> u64 {
        self.queries
            .values()
            .fold(0u64, |acc, c| acc.saturating_add(c.messages))
    }

    /// The conservation invariant: per-query charges plus overhead equal
    /// the global byte/message totals.
    pub fn conserves(&self) -> bool {
        self.attributed_bytes().saturating_add(self.overhead.bytes) == self.total_bytes
            && self
                .attributed_messages()
                .saturating_add(self.overhead.messages)
                == self.total_messages
    }

    /// Mean bytes charged per decision query, or `None` when the trace
    /// held no queries.
    pub fn cost_per_decision(&self) -> Option<f64> {
        if self.queries.is_empty() {
            return None;
        }
        Some(self.attributed_bytes() as f64 / self.queries.len() as f64)
    }

    /// Mean predicted vs. mean actual bytes over queries that carried a
    /// plan prediction — the §III-A ordering-rule check.
    pub fn predicted_vs_actual(&self) -> Option<(f64, f64)> {
        let planned: Vec<&QueryCost> = self
            .queries
            .values()
            .filter(|c| c.predicted_bytes.is_some())
            .collect();
        if planned.is_empty() {
            return None;
        }
        let n = planned.len() as f64;
        let predicted: u64 = planned
            .iter()
            .map(|c| c.predicted_bytes.unwrap_or(0))
            .fold(0u64, u64::saturating_add);
        let actual: u64 = planned
            .iter()
            .map(|c| c.bytes)
            .fold(0u64, u64::saturating_add);
        Some((predicted as f64 / n, actual as f64 / n))
    }

    /// Critical-path segments summed over resolved queries.
    pub fn path_total(&self) -> PathBreakdown {
        let mut total = PathBreakdown::default();
        for cost in self.queries.values() {
            if cost.latency_us.is_some() {
                total.add(cost.path());
            }
        }
        total
    }

    /// The ledger as a deterministic JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        fn ni(v: u64) -> JsonValue {
            JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
        }
        fn bucket_pairs(cost: &QueryCost) -> Vec<(String, JsonValue)> {
            let by_msg = cost
                .bytes_by_msg
                .iter()
                .map(|(k, v)| (k.clone(), ni(*v)))
                .collect();
            vec![
                ("bytes".into(), ni(cost.bytes)),
                ("messages".into(), ni(cost.messages)),
                ("lost_bytes".into(), ni(cost.lost_bytes)),
                ("bytes_by_msg".into(), JsonValue::Object(by_msg)),
            ]
        }
        let queries = self
            .queries
            .iter()
            .map(|(qid, cost)| {
                let mut pairs = vec![("query".into(), ni(*qid))];
                pairs.extend(bucket_pairs(cost));
                pairs.push(("requests".into(), ni(cost.requests)));
                pairs.push(("retransmissions".into(), ni(cost.retransmissions)));
                pairs.push(("cache_hits".into(), ni(cost.cache_hits)));
                pairs.push(("label_hits".into(), ni(cost.label_hits)));
                pairs.push(("approx_hits".into(), ni(cost.approx_hits)));
                pairs.push(("local_samples".into(), ni(cost.local_samples)));
                pairs.push(("cache_stores".into(), ni(cost.cache_stores)));
                pairs.push(("cache_byte_us".into(), ni(cost.cache_byte_us)));
                pairs.push(("annotations".into(), ni(cost.annotations)));
                pairs.push((
                    "predicted_bytes".into(),
                    cost.predicted_bytes.map(ni).unwrap_or(JsonValue::Null),
                ));
                pairs.push((
                    "outcome".into(),
                    cost.outcome
                        .as_ref()
                        .map(|o| JsonValue::Str(o.clone()))
                        .unwrap_or(JsonValue::Null),
                ));
                pairs.push((
                    "latency_us".into(),
                    cost.latency_us.map(ni).unwrap_or(JsonValue::Null),
                ));
                pairs.push(("path".into(), cost.path().to_json_value()));
                let preds = cost
                    .predicates
                    .iter()
                    .map(|(key, work)| {
                        JsonValue::Object(vec![
                            ("term".into(), JsonValue::Int(key.term as i64)),
                            ("cond".into(), JsonValue::Int(key.cond as i64)),
                            ("requests".into(), ni(work.requests)),
                            ("annotations".into(), ni(work.annotations)),
                        ])
                    })
                    .collect();
                pairs.push(("predicates".into(), JsonValue::Array(preds)));
                JsonValue::Object(pairs)
            })
            .collect();
        JsonValue::Object(vec![
            ("queries".into(), JsonValue::Array(queries)),
            (
                "overhead".into(),
                JsonValue::Object(bucket_pairs(&self.overhead)),
            ),
            ("total_bytes".into(), ni(self.total_bytes)),
            ("total_messages".into(), ni(self.total_messages)),
            ("conserved".into(), JsonValue::Bool(self.conserves())),
        ])
    }

    /// Human-readable attribution table for `dde-trace attribute`.
    pub fn render_attribution(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "per-decision cost ledger — {} queries, {}",
            self.queries.len(),
            if self.conserves() {
                "conserved"
            } else {
                "NOT CONSERVED"
            }
        );
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>7} {:>5} {:>4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>14} {:>12} {:>11} {:>12}",
            "query",
            "bytes",
            "msgs",
            "req",
            "rtx",
            "c-hit",
            "l-hit",
            "a-hit",
            "local",
            "annot",
            "cache-B.us",
            "pred-B",
            "outcome",
            "latency-us"
        );
        for (qid, c) in &self.queries {
            let _ = writeln!(
                out,
                "{:>6} {:>12} {:>7} {:>5} {:>4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>14} {:>12} {:>11} {:>12}",
                qid,
                c.bytes,
                c.messages,
                c.requests,
                c.retransmissions,
                c.cache_hits,
                c.label_hits,
                c.approx_hits,
                c.local_samples,
                c.annotations,
                c.cache_byte_us,
                c.predicted_bytes
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                c.outcome.as_deref().unwrap_or("-"),
                c.latency_us
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        let _ = writeln!(
            out,
            "overhead: {} bytes / {} msgs",
            self.overhead.bytes, self.overhead.messages
        );
        let _ = writeln!(
            out,
            "totals: attributed {} B / {} msgs + overhead {} B / {} msgs = {} B / {} msgs",
            self.attributed_bytes(),
            self.attributed_messages(),
            self.overhead.bytes,
            self.overhead.messages,
            self.total_bytes,
            self.total_messages,
        );
        if let Some((predicted, actual)) = self.predicted_vs_actual() {
            let _ = writeln!(
                out,
                "predicted-vs-actual: E[cost]={predicted:.0} B planned, {actual:.0} B spent per decision",
            );
        }
        out
    }

    /// Human-readable critical-path table for `dde-trace critical-path`.
    pub fn render_critical_path(&self) -> String {
        let mut out = String::new();
        let resolved = self
            .queries
            .values()
            .filter(|c| c.latency_us.is_some())
            .count();
        let _ = writeln!(
            out,
            "critical paths — {} resolved / {} queries",
            resolved,
            self.queries.len()
        );
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
            "query", "latency-us", "queue%", "transit%", "annot%", "sched%"
        );
        for (qid, c) in &self.queries {
            let Some(latency) = c.latency_us else {
                continue;
            };
            let Some(f) = c.path().fractions() else {
                continue;
            };
            let _ = writeln!(
                out,
                "{:>6} {:>12} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                qid,
                latency,
                f[0] * 100.0,
                f[1] * 100.0,
                f[2] * 100.0,
                f[3] * 100.0
            );
        }
        let total = self.path_total();
        if let Some(f) = total.fractions() {
            let _ = writeln!(
                out,
                "aggregate: queueing {:.1}%  transit {:.1}%  annotation {:.1}%  scheduler-wait {:.1}%",
                f[0] * 100.0,
                f[1] * 100.0,
                f[2] * 100.0,
                f[3] * 100.0
            );
        }
        out
    }

    /// Critical paths as a deterministic JSON document.
    pub fn critical_path_json(&self) -> JsonValue {
        fn ni(v: u64) -> JsonValue {
            JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
        }
        let queries = self
            .queries
            .iter()
            .filter_map(|(qid, c)| {
                let latency = c.latency_us?;
                Some(JsonValue::Object(vec![
                    ("query".into(), ni(*qid)),
                    ("latency_us".into(), ni(latency)),
                    ("path".into(), c.path().to_json_value()),
                ]))
            })
            .collect();
        JsonValue::Object(vec![
            ("queries".into(), JsonValue::Array(queries)),
            ("aggregate".into(), self.path_total().to_json_value()),
        ])
    }
}

/// A live [`Sink`] maintaining a [`CostLedger`] incrementally: O(1) state
/// per query, no trace buffering — suitable for attaching to every bench
/// run.
#[derive(Debug, Default)]
pub struct LedgerSink {
    ledger: CostLedger,
}

impl LedgerSink {
    /// An empty ledger sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ledger accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Take the accumulated ledger, leaving an empty one.
    pub fn take_ledger(&mut self) -> CostLedger {
        std::mem::take(&mut self.ledger)
    }
}

impl Sink for LedgerSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.ledger.observe(&LedgerView::from_record(rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use dde_logic::time::SimTime;

    fn rec(t: u64, node: u32, kind: EventKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(t),
            node,
            kind,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                EventKind::QueryInit {
                    query: 1,
                    origin: 0,
                },
            ),
            rec(
                1,
                0,
                EventKind::Plan {
                    query: 1,
                    strategy: "lvf",
                    candidates: 2,
                    expected_bytes: 1000,
                    rationale: String::new(),
                },
            ),
            rec(
                2,
                0,
                EventKind::RequestSend {
                    query: 1,
                    name: "/a".into(),
                    hop: 1,
                    term: Some(0),
                    cond: Some(0),
                },
            ),
            rec(
                3,
                0,
                EventKind::Transmit {
                    from: 0,
                    to: 1,
                    msg: "request",
                    bytes: 100,
                    background: false,
                    query: Some(1),
                },
            ),
            rec(
                10,
                1,
                EventKind::Loss {
                    from: 0,
                    to: 1,
                    msg: "request",
                    bytes: 100,
                    query: Some(1),
                },
            ),
            // Retry: same name, same query.
            rec(
                20,
                0,
                EventKind::RequestSend {
                    query: 1,
                    name: "/a".into(),
                    hop: 1,
                    term: Some(0),
                    cond: Some(0),
                },
            ),
            rec(
                21,
                0,
                EventKind::Transmit {
                    from: 0,
                    to: 1,
                    msg: "request",
                    bytes: 100,
                    background: false,
                    query: Some(1),
                },
            ),
            rec(
                30,
                1,
                EventKind::Deliver {
                    from: 0,
                    to: 1,
                    msg: "request",
                    query: Some(1),
                },
            ),
            rec(
                31,
                1,
                EventKind::Transmit {
                    from: 1,
                    to: 0,
                    msg: "data",
                    bytes: 500,
                    background: false,
                    query: Some(1),
                },
            ),
            rec(
                40,
                0,
                EventKind::CacheStore {
                    name: "/a".into(),
                    bytes: 500,
                    validity_us: 1000,
                    query: Some(1),
                },
            ),
            rec(
                41,
                0,
                EventKind::Annotate {
                    query: 1,
                    label: "a".into(),
                    value: true,
                    term: Some(0),
                    cond: Some(0),
                },
            ),
            rec(
                42,
                0,
                EventKind::QueryResolved {
                    query: 1,
                    outcome: "viable",
                    latency_us: 42,
                },
            ),
            // Unattributable overhead transmit.
            rec(
                50,
                2,
                EventKind::Transmit {
                    from: 2,
                    to: 3,
                    msg: "request",
                    bytes: 77,
                    background: false,
                    query: None,
                },
            ),
        ]
    }

    #[test]
    fn charges_and_conservation() {
        let ledger = CostLedger::from_records(&sample_records());
        assert!(ledger.conserves());
        assert_eq!(ledger.total_bytes, 100 + 100 + 500 + 77);
        assert_eq!(ledger.total_messages, 4);
        assert_eq!(ledger.overhead.bytes, 77);
        let c = ledger.queries.get(&1).expect("query 1 charged");
        assert_eq!(c.bytes, 700);
        assert_eq!(c.messages, 3);
        assert_eq!(c.lost_bytes, 100);
        assert_eq!(c.requests, 2);
        assert_eq!(c.retransmissions, 1, "re-issued /a counts once");
        assert_eq!(c.cache_stores, 1);
        assert_eq!(c.cache_byte_us, 500_000);
        assert_eq!(c.annotations, 1);
        assert_eq!(c.predicted_bytes, Some(1000));
        assert_eq!(c.outcome.as_deref(), Some("viable"));
        assert_eq!(c.bytes_by_msg.get("data"), Some(&500));
        let work = c
            .predicates
            .get(&PredKey { term: 0, cond: 0 })
            .expect("predicate work");
        assert_eq!(work.requests, 2);
        assert_eq!(work.annotations, 1);
    }

    #[test]
    fn path_segments_sum_to_latency() {
        let ledger = CostLedger::from_records(&sample_records());
        let c = ledger.queries.get(&1).expect("query 1");
        assert_eq!(c.path().total_us(), 42);
    }

    #[test]
    fn typed_fold_equals_jsonl_fold() {
        let records = sample_records();
        let typed = CostLedger::from_records(&records);
        let jsonl: String = records
            .iter()
            .map(|r| {
                let mut line = r.to_jsonl_line();
                line.push('\n');
                line
            })
            .collect();
        let folded = CostLedger::from_jsonl(&jsonl).expect("valid trace");
        assert_eq!(typed, folded);
    }

    #[test]
    fn json_document_is_deterministic_and_conserved() {
        let ledger = CostLedger::from_records(&sample_records());
        let a = ledger.to_json_value().to_compact_string();
        let b = ledger.to_json_value().to_compact_string();
        assert_eq!(a, b);
        assert!(a.contains("\"conserved\":true"));
        assert!(a.contains("\"overhead\""));
    }

    #[test]
    fn ledger_sink_matches_offline_fold() {
        let records = sample_records();
        let mut sink = LedgerSink::new();
        for r in &records {
            sink.record(r);
        }
        assert_eq!(sink.take_ledger(), CostLedger::from_records(&records));
    }

    #[test]
    fn renders_mention_totals() {
        let ledger = CostLedger::from_records(&sample_records());
        let text = ledger.render_attribution();
        assert!(text.contains("conserved"));
        assert!(text.contains("overhead"));
        let cp = ledger.render_critical_path();
        assert!(cp.contains("aggregate"));
    }
}

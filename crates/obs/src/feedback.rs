//! Closing the predicted-vs-actual loop: a sink that folds the trace into
//! planner-feedback statistics.
//!
//! The §III-A planners predict an expected retrieval cost for every decision
//! query (the `expected_bytes` carried by the [`Plan`](ViewKind::Plan)
//! event). The trace also records what the retrieval *actually* cost — the
//! query-attributed [`Transmit`](ViewKind::Transmit) bytes. [`FeedbackSink`]
//! joins the two per query and aggregates completed queries into fixed-size
//! *epochs*, so a run can report how fast the adaptive estimators
//! (`dde_sched::adaptive`) shrink the prediction error.
//!
//! Like every other consumer of the trace, the fold is defined over the
//! normalized [`LedgerView`], so the live typed path and the offline JSONL
//! path ([`FeedbackSink::fold_jsonl`]) cannot drift apart.

use crate::attrib::{LedgerView, ViewKind};
use crate::event::TraceRecord;
use crate::sink::Sink;
use dde_sched::adaptive::{Ewma, LoadEstimator};
use std::collections::BTreeMap;

/// Per-query predicted-vs-actual tracking state while the query is open.
#[derive(Debug, Clone, Copy, Default)]
struct OpenQuery {
    /// Latest planner prediction, if a `plan` event was seen. Re-planning
    /// (an admission-deferred query re-gated later) replaces the estimate:
    /// the freshest prediction is the one the planner acted on.
    predicted: Option<u64>,
    /// Query-attributed bytes clocked onto links so far.
    actual: u64,
}

/// Aggregate statistics over one epoch of completed decision queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Number of completed queries folded into this epoch.
    pub queries: u64,
    /// Mean absolute prediction error, `|predicted − actual|` bytes.
    pub mean_abs_error: f64,
    /// Mean absolute error of the *bias-corrected* prediction,
    /// `|predicted × bias − actual|` bytes, where `bias` is the running
    /// EWMA of observed actual/predicted ratios at the time each query
    /// completed. This is the number that shrinks as the feedback loop
    /// converges: the raw error measures the planner's model, the
    /// corrected error measures the model *plus* what the loop has learned
    /// about its systematic miss.
    pub mean_corrected_error: f64,
    /// Mean predicted (planned expected) bytes per decision.
    pub mean_predicted_bytes: f64,
    /// Mean actual (query-attributed) bytes per decision.
    pub mean_actual_bytes: f64,
}

/// A [`Sink`] that folds the trace into planner-feedback statistics:
/// per-epoch mean `|predicted − actual|` bytes and a [`LoadEstimator`] fed
/// with each decision's actual cost.
///
/// Only queries that produced a `plan` event contribute — a query shed by
/// admission control is never planned, so it carries no prediction to score.
#[derive(Debug)]
pub struct FeedbackSink {
    epoch_len: u64,
    open: BTreeMap<u64, OpenQuery>,
    epochs: Vec<EpochStats>,
    // Running sums for the in-progress epoch.
    cur_queries: u64,
    cur_abs_error: f64,
    cur_corrected_error: f64,
    cur_predicted: f64,
    cur_actual: f64,
    load: LoadEstimator,
    bias: Ewma,
}

impl FeedbackSink {
    /// Default smoothing factor of the prediction-bias EWMA. Deliberately
    /// slower than the in-simulation estimators: the bias calibrates a
    /// *systematic* model miss, so it should average over many decisions
    /// rather than chase per-query noise.
    pub const DEFAULT_BIAS_ALPHA: f64 = 0.05;

    /// A feedback fold whose epochs close every `epoch_len` completed
    /// queries (`epoch_len` of 0 is treated as 1).
    pub fn new(epoch_len: u64) -> Self {
        Self {
            epoch_len: epoch_len.max(1),
            open: BTreeMap::new(),
            epochs: Vec::new(),
            cur_queries: 0,
            cur_abs_error: 0.0,
            cur_corrected_error: 0.0,
            cur_predicted: 0.0,
            cur_actual: 0.0,
            load: LoadEstimator::new(dde_sched::adaptive::AdaptiveConfig::default().alpha),
            bias: Ewma::new(Self::DEFAULT_BIAS_ALPHA, 1.0),
        }
    }

    /// Replaces the prediction-bias smoothing factor (default
    /// [`Self::DEFAULT_BIAS_ALPHA`]); the bias restarts at 1.0.
    #[must_use]
    pub fn with_bias_alpha(mut self, alpha: f64) -> Self {
        self.bias = Ewma::new(alpha, 1.0);
        self
    }

    /// The current multiplicative prediction-bias estimate: the EWMA of
    /// observed actual/predicted ratios, starting at 1.0 (trust the model).
    pub fn bias(&self) -> f64 {
        self.bias.value()
    }

    /// Fold one normalized record view.
    pub fn observe(&mut self, view: &LedgerView) {
        match &view.kind {
            ViewKind::Plan { expected_bytes } => {
                if let Some(q) = view.query {
                    self.open.entry(q).or_default().predicted = Some(*expected_bytes);
                }
            }
            ViewKind::Transmit { bytes, .. } => {
                if let Some(q) = view.query {
                    let open = self.open.entry(q).or_default();
                    open.actual = open.actual.saturating_add(*bytes);
                }
            }
            ViewKind::QueryResolved { .. } | ViewKind::QueryMissed => {
                if let Some(q) = view.query {
                    self.close(q);
                }
            }
            _ => {}
        }
    }

    fn close(&mut self, query: u64) {
        let Some(open) = self.open.remove(&query) else {
            return;
        };
        let Some(predicted) = open.predicted else {
            // Never planned (e.g. shed by admission control): nothing to
            // score against.
            return;
        };
        self.load.observe_decision(open.actual);
        self.cur_queries += 1;
        self.cur_abs_error += (predicted as f64 - open.actual as f64).abs();
        // Score the corrected prediction with the bias as it stood *before*
        // this observation, then fold the observation in.
        self.cur_corrected_error +=
            (predicted as f64 * self.bias.value() - open.actual as f64).abs();
        if predicted > 0 {
            self.bias.observe(open.actual as f64 / predicted as f64);
        }
        self.cur_predicted += predicted as f64;
        self.cur_actual += open.actual as f64;
        if self.cur_queries >= self.epoch_len {
            self.roll_epoch();
        }
    }

    fn roll_epoch(&mut self) {
        let n = self.cur_queries as f64;
        self.epochs.push(EpochStats {
            queries: self.cur_queries,
            mean_abs_error: self.cur_abs_error / n,
            mean_corrected_error: self.cur_corrected_error / n,
            mean_predicted_bytes: self.cur_predicted / n,
            mean_actual_bytes: self.cur_actual / n,
        });
        self.cur_queries = 0;
        self.cur_abs_error = 0.0;
        self.cur_corrected_error = 0.0;
        self.cur_predicted = 0.0;
        self.cur_actual = 0.0;
    }

    /// Close the in-progress epoch, if it holds any completed queries.
    /// Call once at end of run so a final partial epoch is not dropped.
    pub fn finish(&mut self) {
        if self.cur_queries > 0 {
            self.roll_epoch();
        }
    }

    /// Completed epochs, in completion order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// The load estimator fed with each completed decision's actual bytes.
    pub fn load(&self) -> &LoadEstimator {
        &self.load
    }

    /// Queries seen (planned or charged) but not yet resolved or missed.
    pub fn open_queries(&self) -> usize {
        self.open.len()
    }

    /// Fold a JSONL trace offline. Unparsable lines are skipped, mirroring
    /// the lenient path of the other offline folds.
    pub fn fold_jsonl(epoch_len: u64, trace: &str) -> Self {
        let mut sink = Self::new(epoch_len);
        for line in trace.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(view) = crate::json::parse(line)
                .ok()
                .as_ref()
                .and_then(LedgerView::from_json)
            {
                sink.observe(&view);
            }
        }
        sink.finish();
        sink
    }
}

impl Sink for FeedbackSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.observe(&LedgerView::from_record(rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use dde_logic::time::SimTime;

    fn rec(t: u64, kind: EventKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(t),
            node: 0,
            kind,
        }
    }

    fn run_query(sink: &mut FeedbackSink, q: u64, predicted: u64, actual: u64) {
        sink.record(&rec(
            1,
            EventKind::Plan {
                query: q,
                strategy: "lvf",
                candidates: 1,
                expected_bytes: predicted,
                rationale: String::new(),
            },
        ));
        sink.record(&rec(
            2,
            EventKind::Transmit {
                from: 0,
                to: 1,
                msg: "data",
                bytes: actual,
                background: false,
                query: Some(q),
            },
        ));
        sink.record(&rec(
            3,
            EventKind::QueryResolved {
                query: q,
                outcome: "viable",
                latency_us: 10,
            },
        ));
    }

    #[test]
    fn epochs_roll_at_epoch_len_completed_queries() {
        let mut sink = FeedbackSink::new(2);
        run_query(&mut sink, 1, 1000, 800);
        assert!(sink.epochs().is_empty());
        run_query(&mut sink, 2, 1000, 1400);
        assert_eq!(sink.epochs().len(), 1);
        let e = sink.epochs()[0];
        assert_eq!(e.queries, 2);
        assert!((e.mean_abs_error - 300.0).abs() < 1e-9);
        assert!((e.mean_actual_bytes - 1100.0).abs() < 1e-9);
        assert_eq!(sink.load().decisions(), 2);
    }

    #[test]
    fn finish_flushes_a_partial_epoch() {
        let mut sink = FeedbackSink::new(10);
        run_query(&mut sink, 1, 500, 500);
        assert!(sink.epochs().is_empty());
        sink.finish();
        assert_eq!(sink.epochs().len(), 1);
        assert_eq!(sink.epochs()[0].queries, 1);
        assert_eq!(sink.epochs()[0].mean_abs_error, 0.0);
    }

    #[test]
    fn unplanned_queries_do_not_score() {
        let mut sink = FeedbackSink::new(1);
        // Charged and missed, but never planned (shed by admission).
        sink.record(&rec(
            1,
            EventKind::Transmit {
                from: 0,
                to: 1,
                msg: "announce",
                bytes: 100,
                background: false,
                query: Some(7),
            },
        ));
        sink.record(&rec(2, EventKind::QueryMissed { query: 7 }));
        sink.finish();
        assert!(sink.epochs().is_empty());
        assert_eq!(sink.load().decisions(), 0);
        assert_eq!(sink.open_queries(), 0);
    }

    #[test]
    fn replanning_replaces_the_prediction() {
        let mut sink = FeedbackSink::new(1);
        sink.record(&rec(
            1,
            EventKind::Plan {
                query: 3,
                strategy: "lvf",
                candidates: 1,
                expected_bytes: 9_999,
                rationale: String::new(),
            },
        ));
        run_query(&mut sink, 3, 1000, 1000);
        assert_eq!(sink.epochs().len(), 1);
        assert_eq!(sink.epochs()[0].mean_abs_error, 0.0);
    }

    #[test]
    fn typed_and_jsonl_folds_agree() {
        let mut typed = FeedbackSink::new(2);
        let mut lines = String::new();
        for (q, predicted, actual) in [(1u64, 1000u64, 700u64), (2, 2000, 2600), (3, 500, 500)] {
            for r in [
                rec(
                    q * 10,
                    EventKind::Plan {
                        query: q,
                        strategy: "hybrid",
                        candidates: 2,
                        expected_bytes: predicted,
                        rationale: String::new(),
                    },
                ),
                rec(
                    q * 10 + 1,
                    EventKind::Transmit {
                        from: 0,
                        to: 1,
                        msg: "data",
                        bytes: actual,
                        background: false,
                        query: Some(q),
                    },
                ),
                rec(
                    q * 10 + 2,
                    EventKind::QueryResolved {
                        query: q,
                        outcome: "viable",
                        latency_us: 5,
                    },
                ),
            ] {
                typed.record(&r);
                lines.push_str(&r.to_jsonl_line());
                lines.push('\n');
            }
        }
        typed.finish();
        let json = FeedbackSink::fold_jsonl(2, &lines);
        assert_eq!(typed.epochs(), json.epochs());
        assert_eq!(typed.epochs().len(), 2);
    }
}

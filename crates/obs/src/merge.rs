//! Deterministic merging of per-shard trace streams.
//!
//! The sharded simulator runs each topology region on its own worker
//! thread, so trace records are *produced* in a thread-interleaving-
//! dependent order. To keep the repo's byte-identical-trace invariant,
//! every record is tagged at the emission site with a [`MergeKey`] that
//! depends only on simulation state (timestamp, event class, stable event
//! identity, emission index within the event) — never on which thread
//! produced it — and a [`ShardMerger`] sorts each barrier window's records
//! by that key before forwarding them to the real [`Sink`].
//!
//! `dde-obs` sits below `dde-netsim` in the crate graph, so the key is a
//! plain array of integers here; the simulator documents how it packs
//! event identity into the middle fields.

use crate::event::TraceRecord;
use crate::sink::Sink;

/// A total order over trace records that is independent of thread
/// interleaving.
///
/// Fields, in comparison order:
/// `[timestamp_micros, event_class, id_a, id_b, id_c, emit_index]`.
/// The producer guarantees keys are unique within a run; the merger
/// debug-asserts this.
pub type MergeKey = [u64; 6];

/// Collects `(key, record)` pairs from any number of shards and flushes
/// them to a sink in key order.
///
/// The sharded simulator flushes once per barrier window: conservative
/// lookahead guarantees every record produced *later* carries a timestamp
/// at or past the window end, so a per-window sort yields the same global
/// stream a single-threaded run would produce.
#[derive(Debug, Default)]
pub struct ShardMerger {
    pending: Vec<(MergeKey, TraceRecord)>,
}

impl ShardMerger {
    /// An empty merger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer one keyed record.
    pub fn push(&mut self, key: MergeKey, rec: TraceRecord) {
        self.pending.push((key, rec));
    }

    /// Buffer a batch of keyed records (e.g. one shard's window output).
    pub fn absorb(&mut self, batch: Vec<(MergeKey, TraceRecord)>) {
        self.pending.extend(batch);
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Sort the buffered records by key and forward them to `sink`,
    /// leaving the buffer empty.
    ///
    /// Keys must be unique (checked with a debug assertion): uniqueness is
    /// what makes the sort a *total* order and the merged stream
    /// reproducible regardless of the arrival order of shard batches.
    pub fn flush_into(&mut self, sink: &mut dyn Sink) {
        // Keys are unique, so the unstable sort is still deterministic.
        self.pending.sort_unstable_by_key(|entry| entry.0);
        debug_assert!(
            self.pending.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate merge keys would make shard merging ambiguous"
        );
        for (_, rec) in self.pending.drain(..) {
            sink.record(&rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::sink::MemorySink;
    use dde_logic::time::SimTime;

    fn rec(t: u64, node: u32) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(t),
            node,
            kind: EventKind::LocalSample {
                name: "/x".to_string(),
                query: None,
            },
        }
    }

    #[test]
    fn merges_interleaved_shard_batches_into_key_order() {
        let mut merger = ShardMerger::new();
        // Shard B's batch arrives first even though its records are later.
        merger.absorb(vec![
            ([20, 5, 0, 0, 0, 0], rec(20, 1)),
            ([10, 5, 1, 0, 0, 1], rec(10, 1)),
        ]);
        merger.absorb(vec![
            ([10, 5, 1, 0, 0, 0], rec(10, 0)),
            ([5, 3, 0, 0, 0, 0], rec(5, 0)),
        ]);
        let mut sink = MemorySink::new();
        merger.flush_into(&mut sink);
        assert!(merger.is_empty());
        let ats: Vec<u64> = sink.events().iter().map(|r| r.at.as_micros()).collect();
        assert_eq!(ats, vec![5, 10, 10, 20]);
        // The two t=10 records tie-break on emit index: node 0 first.
        assert_eq!(sink.events()[1].node, 0);
        assert_eq!(sink.events()[2].node, 1);
    }

    #[test]
    fn arrival_order_of_batches_does_not_matter() {
        let batches = [
            vec![([3, 0, 0, 0, 0, 0], rec(3, 0))],
            vec![([1, 0, 0, 0, 0, 0], rec(1, 1))],
            vec![([2, 0, 0, 0, 0, 0], rec(2, 2))],
        ];
        let merged = |order: &[usize]| {
            let mut merger = ShardMerger::new();
            for &i in order {
                merger.absorb(batches[i].clone());
            }
            let mut sink = MemorySink::new();
            merger.flush_into(&mut sink);
            sink.take()
        };
        assert_eq!(merged(&[0, 1, 2]), merged(&[2, 1, 0]));
        assert_eq!(merged(&[0, 1, 2]), merged(&[1, 2, 0]));
    }

    #[test]
    fn flush_is_incremental_per_window() {
        let mut merger = ShardMerger::new();
        let mut sink = MemorySink::new();
        merger.push([2, 0, 0, 0, 0, 0], rec(2, 0));
        merger.push([1, 0, 0, 0, 0, 0], rec(1, 0));
        merger.flush_into(&mut sink);
        merger.push([3, 0, 0, 0, 0, 0], rec(3, 0));
        merger.flush_into(&mut sink);
        let ats: Vec<u64> = sink.events().iter().map(|r| r.at.as_micros()).collect();
        assert_eq!(ats, vec![1, 2, 3]);
    }
}

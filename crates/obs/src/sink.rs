//! The [`Sink`] contract and stock sink implementations.
//!
//! Instrumentation sites hold a `&mut dyn Sink` (or a cloneable
//! [`SharedSink`] handle) and call [`Sink::record`] per event. Sites are
//! expected to check [`Sink::enabled`] before building events with owned
//! payloads, so the default [`NullSink`] costs one branch per site.

use crate::event::TraceRecord;
use std::io::Write;
use std::sync::Arc;
// SharedSink below is the one sanctioned Mutex (see its rationale).
#[allow(clippy::disallowed_types)]
use std::sync::Mutex;

/// A consumer of [`TraceRecord`]s.
///
/// Implementations must be deterministic given a deterministic record
/// stream: no wall-clock reads, no hashing-order iteration, no sampling.
pub trait Sink {
    /// Whether this sink actually consumes records. Instrumentation sites
    /// use this to skip building event payloads (strings, rationale
    /// rendering) entirely. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flush any buffered output. Defaults to a no-op.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The do-nothing sink: [`enabled`](Sink::enabled) is `false`, so
/// instrumented code skips event construction. This is the default wiring;
/// it is what "instrumentation compiled in, null sink overhead only" means.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Collects records into a `Vec`, optionally bounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceRecord>,
    cap: Option<usize>,
}

impl MemorySink {
    /// An unbounded in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that keeps only the first `cap` records (later records are
    /// silently discarded, mirroring the legacy `trace_cap` behaviour).
    pub fn with_cap(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            cap: Some(cap),
        }
    }

    /// The records collected so far.
    pub fn events(&self) -> &[TraceRecord] {
        &self.events
    }

    /// Drain the collected records, leaving the sink empty (and still
    /// collecting).
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.events)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.events.len() < self.cap.unwrap_or(usize::MAX) {
            self.events.push(rec.clone());
        }
    }
}

/// Streams records as JSON Lines to any [`Write`] target.
///
/// Write errors are captured rather than panicked on (the simulator hot
/// path must stay panic-free); the first error is surfaced by
/// [`flush`](Sink::flush) and by [`JsonlSink::into_inner`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. Callers owning a `File` may want to wrap it in a
    /// `BufWriter` first.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            error: None,
        }
    }

    /// The underlying writer.
    pub fn get_ref(&self) -> &W {
        &self.writer
    }

    /// Unwrap into the underlying writer, surfacing any deferred write
    /// error.
    pub fn into_inner(self) -> (W, Option<std::io::Error>) {
        (self.writer, self.error)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let mut line = rec.to_jsonl_line();
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Buffers records and writes a complete Chrome trace-event JSON document
/// (loadable in `about:tracing` / Perfetto) on [`flush`](Sink::flush).
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    writer: W,
    records: Vec<TraceRecord>,
    error: Option<std::io::Error>,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wrap a writer; the document is produced on flush.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            records: Vec::new(),
            error: None,
        }
    }

    /// Unwrap into the underlying writer, surfacing any deferred write
    /// error.
    pub fn into_inner(self) -> (W, Option<std::io::Error>) {
        (self.writer, self.error)
    }
}

impl<W: Write> Sink for ChromeTraceSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let doc = crate::chrome::chrome_trace_from_records(&self.records);
        self.writer.write_all(doc.as_bytes())?;
        self.writer.flush()
    }
}

/// Fans each record out to two sinks — e.g. the caller's trace sink plus
/// the engine's live [`LedgerSink`](crate::ledger::LedgerSink).
///
/// Enabled when *either* side is enabled; a disabled side is skipped per
/// record, so teeing a `NullSink` with a ledger costs the ledger alone.
pub struct TeeSink {
    a: Box<dyn Sink>,
    b: Box<dyn Sink>,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink").finish_non_exhaustive()
    }
}

impl TeeSink {
    /// Tee records to both `a` and `b`.
    pub fn new(a: Box<dyn Sink>, b: Box<dyn Sink>) -> Self {
        Self { a, b }
    }
}

impl Sink for TeeSink {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&mut self, rec: &TraceRecord) {
        if self.a.enabled() {
            self.a.record(rec);
        }
        if self.b.enabled() {
            self.b.record(rec);
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let ra = self.a.flush();
        let rb = self.b.flush();
        ra.and(rb)
    }
}

/// A cloneable handle to a shared sink, for wiring one sink into several
/// owners (e.g. the simulator plus the caller that wants the collected
/// trace back afterwards).
// The one sanctioned cross-thread sink: dde-obs is outside the region-pinned
// crates, and every shard's records funnel through the coordinator's merge
// before reaching it, so lock acquisition order cannot affect trace order.
#[allow(clippy::disallowed_types)]
#[derive(Debug)]
pub struct SharedSink<S: Sink> {
    inner: Arc<Mutex<S>>,
}

impl<S: Sink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[allow(clippy::disallowed_types)]
impl<S: Sink> SharedSink<S> {
    /// Share `sink` behind a cloneable handle.
    pub fn new(sink: S) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Run `f` with exclusive access to the shared sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        // A poisoned lock only means another holder panicked mid-record;
        // the sink data is still the best evidence we have, so recover it.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    fn enabled(&self) -> bool {
        self.with(|s| s.enabled())
    }

    fn record(&mut self, rec: &TraceRecord) {
        self.with(|s| s.record(rec));
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.with(|s| s.flush())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use dde_logic::time::SimTime;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(t),
            node: 0,
            kind: EventKind::LocalSample {
                name: "/x".to_string(),
                query: None,
            },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn memory_sink_respects_cap() {
        let mut sink = MemorySink::with_cap(2);
        for t in 0..5 {
            sink.record(&rec(t));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(1));
        sink.record(&rec(2));
        sink.flush().unwrap();
        let (buf, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn tee_sink_feeds_both_sides_and_skips_disabled_ones() {
        let left = SharedSink::new(MemorySink::new());
        let right = SharedSink::new(MemorySink::new());
        let mut tee = TeeSink::new(Box::new(left.clone()), Box::new(right.clone()));
        assert!(tee.enabled());
        tee.record(&rec(1));
        assert_eq!(left.with(|s| s.events().len()), 1);
        assert_eq!(right.with(|s| s.events().len()), 1);

        let only = SharedSink::new(MemorySink::new());
        let mut tee = TeeSink::new(Box::new(NullSink), Box::new(only.clone()));
        assert!(tee.enabled(), "one enabled side keeps the tee enabled");
        tee.record(&rec(2));
        assert_eq!(only.with(|s| s.events().len()), 1);
    }

    #[test]
    fn shared_sink_clones_see_the_same_store() {
        let shared = SharedSink::new(MemorySink::new());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(&rec(1));
        b.record(&rec(2));
        assert_eq!(shared.with(|s| s.events().len()), 2);
    }
}

//! Minimal JSON support: a value tree, a deterministic writer, and a strict
//! parser.
//!
//! The workspace builds offline — the vendored `serde` is a traits-only
//! stand-in with no `serde_json` — so trace lines and bench reports are
//! written and read through this hand-rolled subset. Objects preserve
//! insertion order (they are vectors of pairs, not maps), which is what
//! makes the writer deterministic: the emitter chooses the key order once
//! and every run reproduces it byte for byte.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every count and microsecond timestamp we emit).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as a float; integer values are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with 2-space indentation, deterministically.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `f` as a JSON number. `f64`'s `Display` is the shortest string
/// that round-trips, which is deterministic across runs and platforms;
/// non-finite values (invalid JSON) degrade to `null`.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    // Ensure the token stays a *number* that parses back as Float.
    if !out[start..].contains('.') && !out[start..].contains('e') {
        out.push_str(".0");
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary: strings are valid UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = JsonValue::Object(vec![
            ("t".into(), JsonValue::Int(42)),
            ("name".into(), JsonValue::Str("/a/b \"q\"\n".into())),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "xs".into(),
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Null]),
            ),
        ]);
        let s = v.to_compact_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let s = r#"{"b":1,"a":2}"#;
        let v = parse(s).unwrap();
        assert_eq!(v.to_compact_string(), s);
    }

    #[test]
    fn parses_floats_and_negatives() {
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
    }

    #[test]
    fn float_always_writes_a_fraction() {
        assert_eq!(JsonValue::Float(2.0).to_compact_string(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact_string(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn pretty_is_parseable() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::Array(vec![JsonValue::Int(1)])),
            ("b".into(), JsonValue::Object(vec![])),
        ]);
        assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
    }

    #[test]
    fn unicode_survives() {
        let v = JsonValue::Str("héllo → wörld".into());
        assert_eq!(parse(&v.to_compact_string()).unwrap(), v);
    }
}

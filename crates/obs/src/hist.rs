//! Fixed-bucket latency histograms.
//!
//! Buckets are compile-time constants (1 ms … 100 s plus an overflow
//! bucket), so merging histograms across repetitions is exact and the
//! percentile read-out is deterministic: no ambient configuration, no
//! dynamic resizing, no floating-point accumulation.

use dde_logic::time::SimDuration;

/// Upper bounds (inclusive) of the finite buckets, in microseconds:
/// a 1–2–5 ladder from 1 ms to 100 s.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

/// Number of buckets including the trailing overflow bucket. This is the
/// length of [`Histogram::bucket_counts`] and the `counts` argument of
/// [`Histogram::from_bucket_counts`].
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_US.len() + 1;

const BUCKETS: usize = BUCKET_COUNT;

/// A fixed-bucket histogram of simulated durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a histogram from raw bucket counts (e.g. a snapshot read
    /// back from JSON, or the atomic counters of a live
    /// [`WallHist`](crate::metrics::WallHist)). The total is the sum of
    /// the counts; `max_us` is clamped to 0 when the histogram is empty so
    /// round-tripping through [`bucket_counts`](Self::bucket_counts) is
    /// exact.
    pub fn from_bucket_counts(counts: [u64; BUCKET_COUNT], max_us: u64) -> Self {
        let total = counts.iter().sum();
        Self {
            counts,
            total,
            max_us: if total == 0 { 0 } else { max_us },
        }
    }

    /// Raw per-bucket counts, indexed like [`BUCKET_BOUNDS_US`] with the
    /// overflow bucket last.
    pub fn bucket_counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.counts
    }

    /// Largest recorded duration in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Fold another histogram into this one (exact: identical buckets).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded duration, if any sample was recorded.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_micros(self.max_us))
    }

    /// The `p`-th percentile (0–100) as a bucket upper bound, capped at the
    /// observed maximum. `None` if the histogram is empty or `p` is out of
    /// range.
    ///
    /// Resolution is the bucket ladder (1–2–5), which is plenty for the
    /// "did the tail move" question percentiles answer here.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        if self.total == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        // Rank of the percentile sample, 1-based, computed in integers:
        // ceil(p/100 * total), clamped to at least 1.
        let scaled = (p * self.total as f64 / 100.0).ceil() as u64;
        let rank = scaled.clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = BUCKET_BOUNDS_US.get(idx).copied().unwrap_or(self.max_us);
                return Some(SimDuration::from_micros(bound.min(self.max_us)));
            }
        }
        Some(SimDuration::from_micros(self.max_us))
    }

    /// Median latency (bucket-resolution).
    pub fn p50(&self) -> Option<SimDuration> {
        self.percentile(50.0)
    }

    /// 95th-percentile latency (bucket-resolution).
    pub fn p95(&self) -> Option<SimDuration> {
        self.percentile(95.0)
    }

    /// 99th-percentile latency (bucket-resolution).
    pub fn p99(&self) -> Option<SimDuration> {
        self.percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_micros(v * 1_000)
    }

    #[test]
    fn empty_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn percentiles_use_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(ms(1)); // bucket ≤1ms
        }
        h.record(ms(90_000)); // bucket ≤100s
        assert_eq!(h.p50(), Some(ms(1)));
        assert_eq!(h.p95(), Some(ms(1)));
        // The tail sample sits in the ≤100s bucket but is capped at the
        // observed max of 90s.
        assert_eq!(h.percentile(100.0), Some(ms(90_000)));
        assert_eq!(h.max(), Some(ms(90_000)));
    }

    #[test]
    fn overflow_bucket_caps_at_max() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(250_000_000)); // beyond 100s
        assert_eq!(h.p50(), Some(SimDuration::from_micros(250_000_000)));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..10 {
            a.record(ms(5));
            b.record(ms(500));
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(a.p50(), Some(ms(5)));
        assert_eq!(a.p95(), Some(ms(500)));
    }
}

//! Retrieval items and the shared-channel model of §IV-A.
//!
//! The basic scheduling problem: `N` data objects `O_1 … O_N` must be
//! retrieved from normally-off sensors over a single bottleneck channel.
//! Retrieving `O_i` consumes bandwidth `C_i`; the sensor is activated (and
//! its measurement sampled) at retrieval start `t_i`; the measurement stays
//! fresh for the validity interval `I_i`.

use dde_logic::label::Label;
use dde_logic::meta::{ConditionMeta, Cost, Probability};
use dde_logic::time::SimDuration;

/// One evidence object to retrieve.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalItem {
    /// The label this object's evidence resolves.
    pub label: Label,
    /// Retrieval cost (object size in bytes).
    pub cost: Cost,
    /// Validity interval of the measurement.
    pub validity: SimDuration,
    /// Prior probability that the resolved condition is *true*.
    pub prob_true: Probability,
}

impl RetrievalItem {
    /// Creates an item with maximum-entropy truth prior.
    pub fn new(label: impl Into<Label>, cost: Cost, validity: SimDuration) -> RetrievalItem {
        RetrievalItem {
            label: label.into(),
            cost,
            validity,
            prob_true: Probability::HALF,
        }
    }

    /// Sets the truth prior.
    #[must_use]
    pub fn with_prob(mut self, p: Probability) -> RetrievalItem {
        self.prob_true = p;
        self
    }

    /// The paper's AND short-circuit efficiency `(1 - p) / C`.
    pub fn and_shortcircuit_ratio(&self) -> f64 {
        self.as_meta().and_shortcircuit_ratio()
    }

    /// View as condition metadata.
    pub fn as_meta(&self) -> ConditionMeta {
        ConditionMeta::new(self.cost, self.validity).with_prob(self.prob_true)
    }
}

/// The single bottleneck resource objects are retrieved over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
}

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(bandwidth_bps: u64) -> Channel {
        assert!(bandwidth_bps > 0, "channel bandwidth must be positive");
        Channel { bandwidth_bps }
    }

    /// The paper's evaluation bandwidth: 1 Mbps.
    pub fn mbps1() -> Channel {
        Channel::new(1_000_000)
    }

    /// Time to move `cost` over this channel.
    pub fn transmission_time(&self, cost: Cost) -> SimDuration {
        let micros = (cost.as_bytes() as u128 * 8 * 1_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_micros(micros.min(u64::MAX as u128) as u64)
    }

    /// Total time to move a sequence of items.
    pub fn total_time<'a, I>(&self, items: I) -> SimDuration
    where
        I: IntoIterator<Item = &'a RetrievalItem>,
    {
        items.into_iter().fold(SimDuration::ZERO, |acc, it| {
            acc + self.transmission_time(it.cost)
        })
    }
}

impl Default for Channel {
    fn default() -> Self {
        Channel::mbps1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transmission_times() {
        let ch = Channel::mbps1();
        assert_eq!(
            ch.transmission_time(Cost::from_bytes(125_000)),
            SimDuration::from_secs(1)
        );
        assert_eq!(ch.transmission_time(Cost::ZERO), SimDuration::ZERO);
        let fast = Channel::new(8_000_000);
        assert_eq!(
            fast.transmission_time(Cost::from_bytes(1_000_000)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Channel::new(0);
    }

    #[test]
    fn total_time_sums() {
        let ch = Channel::mbps1();
        let items = vec![
            RetrievalItem::new("a", Cost::from_bytes(125_000), SimDuration::MAX),
            RetrievalItem::new("b", Cost::from_bytes(250_000), SimDuration::MAX),
        ];
        assert_eq!(ch.total_time(&items), SimDuration::from_secs(3));
    }

    #[test]
    fn item_builder() {
        let it = RetrievalItem::new("x", Cost::from_bytes(4), SimDuration::from_secs(9))
            .with_prob(Probability::new(0.25).unwrap());
        assert_eq!(it.label.as_str(), "x");
        assert_eq!(it.prob_true.value(), 0.25);
        assert!((it.and_shortcircuit_ratio() - 0.75 / 4.0).abs() < 1e-12);
    }
}

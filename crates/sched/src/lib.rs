//! # dde-sched — decision-driven scheduling theory
//!
//! Implements the scheduling results the paper builds on (§III-A, §IV):
//!
//! - [`item`] — retrieval items (cost, validity, truth prior) and the
//!   single-bottleneck [`Channel`] model;
//! - [`feasibility`] — timeline analysis of a retrieval order against the
//!   paper's two constraint families (data freshness `t_i + I_i ≥ F`,
//!   decision deadline `t + D ≥ F`) and the `Cost_opt = Σ C_i` theorem;
//! - [`lvf`] — Least-Volatile-object-First, optimal for a single query on a
//!   single channel (property-tested against exhaustive search);
//! - [`hierarchical`] — optimal multi-query scheduling via priority bands
//!   keyed on `min(min_i I_i, D)`, LVF within bands;
//! - [`shortcircuit`] — expected-cost-optimal orderings for ANDs
//!   (`(1 − p)/C` descending) and ORs (`p/C` descending), and term-level
//!   DNF planning;
//! - [`hybrid`] — ref \[3]'s greedy combining validity feasibility with
//!   short-circuit efficiency;
//! - [`explain`] — human-readable rendering of retrieval plans;
//! - [`shared`] — reuse-aware scheduling for queries that overlap in data
//!   objects (the paper's §IV-B open problem), with the no-reuse reference;
//! - [`tree`] — expected-cost-optimal evaluation plans for general AND/OR
//!   expression trees (depth-first-optimal, checked against brute force);
//! - [`optimal`] — exhaustive-search baselines for validation and ablation;
//! - [`adaptive`] — online EWMA estimators (short-circuit probability per
//!   name-prefix/condition, per-source reliability, bytes-per-decision
//!   load) that re-parameterize the planners each decision epoch, plus
//!   admission control that sheds or defers queries under overload.
//!
//! # Example
//!
//! ```
//! use dde_sched::prelude::*;
//! use dde_logic::prelude::*;
//!
//! let items = vec![
//!     RetrievalItem::new("bridge", Cost::from_bytes(500_000), SimDuration::from_secs(3600)),
//!     RetrievalItem::new("traffic", Cost::from_bytes(200_000), SimDuration::from_secs(5)),
//! ];
//! let (order, analysis) = lvf_schedule(
//!     &items, Channel::mbps1(), SimTime::ZERO, SimDuration::from_secs(30));
//! assert_eq!(order[0].label.as_str(), "bridge"); // least volatile first
//! assert!(analysis.is_feasible());
//! ```

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod adaptive;
pub mod explain;
pub mod feasibility;
pub mod hierarchical;
pub mod hybrid;
pub mod item;
pub mod lvf;
pub mod optimal;
pub mod shared;
pub mod shortcircuit;
pub mod tree;

pub use adaptive::{
    AdaptiveConfig, AdaptiveState, AdmissionPolicy, AdmissionVerdict, Ewma, LoadEstimator,
    ReliabilityEstimator, TruthEstimator,
};
pub use explain::{explain_dnf_plan, explain_plan};
pub use feasibility::{analyze, is_feasible, optimal_cost, ScheduleAnalysis};
pub use hierarchical::{
    hierarchical_schedule, hierarchical_schedule_with, BandPolicy, MultiQuerySchedule, QuerySpec,
};
pub use hybrid::greedy_validity_shortcircuit;
pub use item::{Channel, RetrievalItem};
pub use lvf::{lvf_order, lvf_schedule, schedulable, sort_lvf};
pub use shared::{no_reuse_cost, shared_schedule, ScheduledFetch, SharedQuery, SharedSchedule};
pub use shortcircuit::{
    and_truth_prob, expected_and_cost, expected_or_cost, optimal_and_order, optimal_or_order,
    plan_dnf, DnfPlan,
};
pub use tree::{plan_expr, EvalPlan, PlanNode};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::adaptive::{AdaptiveConfig, AdaptiveState, AdmissionPolicy, AdmissionVerdict};
    pub use crate::feasibility::{analyze, is_feasible, optimal_cost, ScheduleAnalysis};
    pub use crate::hierarchical::{
        hierarchical_schedule, hierarchical_schedule_with, BandPolicy, MultiQuerySchedule,
        QuerySpec,
    };
    pub use crate::hybrid::greedy_validity_shortcircuit;
    pub use crate::item::{Channel, RetrievalItem};
    pub use crate::lvf::{lvf_order, lvf_schedule, schedulable};
    pub use crate::shared::{shared_schedule, SharedQuery, SharedSchedule};
    pub use crate::shortcircuit::{expected_and_cost, optimal_and_order, plan_dnf, DnfPlan};
    pub use crate::tree::{plan_expr, EvalPlan, PlanNode};
}

//! Short-circuit-aware retrieval ordering (§III-A).
//!
//! Evaluating a conjunction `a = b_0 ∧ b_1 ∧ …` sequentially, the expected
//! retrieval cost under order `π` is
//!
//! ```text
//! E[cost] = Σ_k  C_{π_k} · Π_{j<k} p_{π_j}
//! ```
//!
//! — the `k`-th object is only fetched if every earlier condition came back
//! true. Sorting by descending short-circuit efficiency `(1 − p)/C`
//! minimizes this (the classic "pipelined filter ordering" exchange
//! argument). Dually, a disjunction stops at the first *true* disjunct, so
//! `p/C` descending is optimal.
//!
//! For a full DNF (OR of ANDs), terms are processed as units: each term is
//! internally ordered by `(1 − p)/C`, then terms are ordered by descending
//! `P(term true) / E[term cost]`. Truly optimal DNF evaluation (interleaving
//! conditions across terms, exploiting shared labels) is NP-hard; this is
//! the paper's heuristic.

use crate::item::RetrievalItem;
use dde_logic::dnf::Dnf;
use dde_logic::meta::MetaTable;

/// Expected cost (in bytes) of evaluating the conjunction `items` in the
/// given order, under independence of conditions.
pub fn expected_and_cost(items: &[RetrievalItem]) -> f64 {
    let mut reach_prob = 1.0;
    let mut total = 0.0;
    for it in items {
        total += reach_prob * it.cost.as_f64();
        reach_prob *= it.prob_true.value();
    }
    total
}

/// Probability that the conjunction evaluates to true.
pub fn and_truth_prob(items: &[RetrievalItem]) -> f64 {
    items.iter().map(|i| i.prob_true.value()).product()
}

/// Expected cost of evaluating the disjunction `items` in order (stop at
/// first true).
pub fn expected_or_cost(items: &[RetrievalItem]) -> f64 {
    let mut reach_prob = 1.0;
    let mut total = 0.0;
    for it in items {
        total += reach_prob * it.cost.as_f64();
        reach_prob *= 1.0 - it.prob_true.value();
    }
    total
}

/// Reorders a conjunction for minimum expected cost: descending
/// `(1 − p)/C`. Ties break by label.
pub fn optimal_and_order(items: &[RetrievalItem]) -> Vec<RetrievalItem> {
    let mut out = items.to_vec();
    out.sort_by(|a, b| {
        b.and_shortcircuit_ratio()
            .total_cmp(&a.and_shortcircuit_ratio())
            .then_with(|| a.label.cmp(&b.label))
    });
    out
}

/// Reorders a disjunction for minimum expected cost: descending `p/C`.
pub fn optimal_or_order(items: &[RetrievalItem]) -> Vec<RetrievalItem> {
    let mut out = items.to_vec();
    out.sort_by(|a, b| {
        let ra = a.as_meta().or_shortcircuit_ratio();
        let rb = b.as_meta().or_shortcircuit_ratio();
        rb.total_cmp(&ra).then_with(|| a.label.cmp(&b.label))
    });
    out
}

/// A retrieval plan for a DNF query: terms in evaluation order, each with
/// its internally-ordered items.
#[derive(Debug, Clone)]
pub struct DnfPlan {
    /// For each planned term (in evaluation order): the index of the term in
    /// the original DNF and the ordered retrieval items for its conditions.
    pub terms: Vec<(usize, Vec<RetrievalItem>)>,
}

impl DnfPlan {
    /// Expected total retrieval cost of executing the plan: term `k`'s
    /// expected cost is paid only if no earlier term came back true.
    pub fn expected_cost(&self) -> f64 {
        let mut reach = 1.0;
        let mut total = 0.0;
        for (_, items) in &self.terms {
            total += reach * expected_and_cost(items);
            reach *= 1.0 - and_truth_prob(items);
        }
        total
    }

    /// The flat retrieval order (terms concatenated).
    pub fn flat_order(&self) -> Vec<RetrievalItem> {
        self.terms
            .iter()
            .flat_map(|(_, items)| items.iter().cloned())
            .collect()
    }
}

/// Builds the short-circuit-aware plan for a DNF query, looking up each
/// label's metadata in `meta`.
///
/// Labels missing from `meta` get the pessimistic default (zero cost,
/// probability ½) — zero-cost conditions are evaluated first, which is
/// always sound.
pub fn plan_dnf(query: &Dnf, meta: &MetaTable) -> DnfPlan {
    let mut terms: Vec<(usize, Vec<RetrievalItem>)> = query
        .terms()
        .iter()
        .enumerate()
        .map(|(idx, term)| {
            let items: Vec<RetrievalItem> = term
                .labels()
                .map(|l| {
                    let m = meta.get_or_default(l);
                    RetrievalItem {
                        label: l.clone(),
                        cost: m.cost,
                        validity: m.validity,
                        prob_true: m.prob_true,
                    }
                })
                .collect();
            (idx, optimal_and_order(&items))
        })
        .collect();
    // Order terms by descending P(true) / E[cost].
    terms.sort_by(|(ia, a), (ib, b)| {
        let (pa, ea) = (and_truth_prob(a), expected_and_cost(a));
        let (pb, eb) = (and_truth_prob(b), expected_and_cost(b));
        let ra = if ea == 0.0 { f64::INFINITY } else { pa / ea };
        let rb = if eb == 0.0 { f64::INFINITY } else { pb / eb };
        rb.total_cmp(&ra).then_with(|| ia.cmp(ib))
    });
    DnfPlan { terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::dnf::Term;
    use dde_logic::label::Label;
    use dde_logic::meta::{ConditionMeta, Cost, Probability};
    use dde_logic::time::SimDuration;
    use proptest::prelude::*;

    const MB: u64 = 1_000_000;

    fn item(label: &str, bytes: u64, p: f64) -> RetrievalItem {
        RetrievalItem::new(label, Cost::from_bytes(bytes), SimDuration::MAX)
            .with_prob(Probability::new(p).unwrap())
    }

    /// The paper's worked example: h = 4 MB @ p=0.6, k = 5 MB @ p=0.2.
    /// Evaluating k first costs 5 + 0.2·4 = 5.8 MB expected; h first costs
    /// 4 + 0.6·5 = 7 MB.
    #[test]
    fn paper_worked_example() {
        let h = item("h", 4 * MB, 0.6);
        let k = item("k", 5 * MB, 0.2);
        let k_first = expected_and_cost(&[k.clone(), h.clone()]);
        let h_first = expected_and_cost(&[h.clone(), k.clone()]);
        assert!((k_first - 5.8e6).abs() < 1.0);
        assert!((h_first - 7.0e6).abs() < 1.0);
        let order = optimal_and_order(&[h, k]);
        assert_eq!(order[0].label.as_str(), "k");
    }

    #[test]
    fn and_truth_prob_is_product() {
        let items = vec![item("a", 1, 0.5), item("b", 1, 0.5)];
        assert!((and_truth_prob(&items) - 0.25).abs() < 1e-12);
        assert_eq!(and_truth_prob(&[]), 1.0);
    }

    #[test]
    fn or_order_prefers_high_p_per_cost() {
        let a = item("a", 2 * MB, 0.5); // 0.25 per MB
        let b = item("b", MB, 0.4); // 0.4 per MB
        let order = optimal_or_order(&[a.clone(), b.clone()]);
        assert_eq!(order[0].label.as_str(), "b");
        assert!(expected_or_cost(&order) <= expected_or_cost(&[a, b]));
    }

    #[test]
    fn empty_costs_are_zero() {
        assert_eq!(expected_and_cost(&[]), 0.0);
        assert_eq!(expected_or_cost(&[]), 0.0);
    }

    fn meta_for(entries: &[(&str, u64, f64)]) -> MetaTable {
        entries
            .iter()
            .map(|(l, bytes, p)| {
                (
                    Label::new(l),
                    ConditionMeta::new(Cost::from_bytes(*bytes), SimDuration::MAX)
                        .with_prob(Probability::new(*p).unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn plan_orders_terms_and_conditions() {
        // Term 0: expensive & unlikely. Term 1: cheap & likely.
        let q = Dnf::from_terms(vec![Term::all_of(["x1", "x2"]), Term::all_of(["y1", "y2"])]);
        let meta = meta_for(&[
            ("x1", 5 * MB, 0.1),
            ("x2", 5 * MB, 0.1),
            ("y1", MB, 0.9),
            ("y2", MB, 0.9),
        ]);
        let plan = plan_dnf(&q, &meta);
        // The likely-true cheap term is tried first.
        assert_eq!(plan.terms[0].0, 1);
        // Inside term 0 both conditions tie on ratio; label order breaks it.
        assert_eq!(plan.terms[1].1[0].label.as_str(), "x1");
        // Flat order has all 4 items.
        assert_eq!(plan.flat_order().len(), 4);
    }

    #[test]
    fn plan_expected_cost_accounts_for_term_shortcircuit() {
        let q = Dnf::from_terms(vec![Term::all_of(["a"]), Term::all_of(["b"])]);
        let meta = meta_for(&[("a", MB, 0.5), ("b", MB, 0.5)]);
        let plan = plan_dnf(&q, &meta);
        // E = 1 + (1-0.5)*1 = 1.5 MB.
        assert!((plan.expected_cost() - 1.5e6).abs() < 1.0);
    }

    #[test]
    fn plan_handles_unknown_labels() {
        let q = Dnf::from_terms(vec![Term::all_of(["mystery"])]);
        let plan = plan_dnf(&q, &MetaTable::new());
        assert_eq!(plan.terms.len(), 1);
        assert_eq!(plan.expected_cost(), 0.0);
    }

    fn permutations<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
        if v.is_empty() {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for i in 0..v.len() {
            let mut rest = v.to_vec();
            let x = rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x.clone());
                out.push(p);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// (1-p)/C descending minimizes expected AND cost over all
        /// permutations.
        #[test]
        fn and_order_is_optimal(
            specs in prop::collection::vec((1u64..100, 0.0f64..=1.0), 1..6)
        ) {
            let items: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, (c, p))| item(&format!("o{i}"), *c, *p))
                .collect();
            let best = expected_and_cost(&optimal_and_order(&items));
            for perm in permutations(&items) {
                prop_assert!(best <= expected_and_cost(&perm) + 1e-9);
            }
        }

        /// p/C descending minimizes expected OR cost.
        #[test]
        fn or_order_is_optimal(
            specs in prop::collection::vec((1u64..100, 0.0f64..=1.0), 1..6)
        ) {
            let items: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, (c, p))| item(&format!("o{i}"), *c, *p))
                .collect();
            let best = expected_or_cost(&optimal_or_order(&items));
            for perm in permutations(&items) {
                prop_assert!(best <= expected_or_cost(&perm) + 1e-9);
            }
        }

        /// Term-level ordering by P/E is optimal among whole-term orderings.
        #[test]
        fn term_order_is_optimal_among_term_orderings(
            t1 in prop::collection::vec((1u64..50, 0.05f64..0.95), 1..3),
            t2 in prop::collection::vec((1u64..50, 0.05f64..0.95), 1..3),
            t3 in prop::collection::vec((1u64..50, 0.05f64..0.95), 1..3),
        ) {
            let mk = |prefix: &str, specs: &[(u64, f64)]| -> Vec<RetrievalItem> {
                specs.iter().enumerate()
                    .map(|(i, (c, p))| item(&format!("{prefix}{i}"), *c, *p))
                    .collect()
            };
            let terms = [mk("a", &t1), mk("b", &t2), mk("c", &t3)];
            let eval = |order: &[Vec<RetrievalItem>]| -> f64 {
                let mut reach = 1.0;
                let mut total = 0.0;
                for t in order {
                    total += reach * expected_and_cost(t);
                    reach *= 1.0 - and_truth_prob(t);
                }
                total
            };
            // Build plan via the library (through a Dnf + MetaTable).
            let dnf = Dnf::from_terms(
                terms.iter()
                    .map(|t| Term::all_of(t.iter().map(|i| i.label.as_str().to_string())))
                    .collect()
            );
            let meta: MetaTable = terms.iter().flatten()
                .map(|i| (i.label.clone(),
                          ConditionMeta::new(i.cost, i.validity).with_prob(i.prob_true)))
                .collect();
            let plan = plan_dnf(&dnf, &meta);
            let planned: Vec<Vec<RetrievalItem>> =
                plan.terms.iter().map(|(_, items)| items.clone()).collect();
            let best = eval(&planned);
            for perm in permutations(&planned) {
                prop_assert!(best <= eval(&perm) + 1e-6,
                    "plan cost {best} beaten by permutation {}", eval(&perm));
            }
        }
    }
}

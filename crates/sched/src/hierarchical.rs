//! Hierarchical multi-query scheduling (§IV-A).
//!
//! For multiple independent decision queries (non-overlapping object sets)
//! sharing one channel, prior work (\[1] in the paper) proves the optimal
//! policy is *hierarchical*: assign non-overlapping priority bands to
//! queries, then order objects within each band (Least-Volatile-First).
//!
//! ## Band-priority keys
//!
//! The paper states the optimal band assignment gives highest priority to
//! the query with "the smallest value of the minimum of its object validity
//! expiration times and its decision deadline". Which quantity that minimum
//! is over depends on *when sensors are sampled*:
//!
//! - Under this crate's model — normally-off sensors activated at retrieval
//!   start (§IV-A) — a query's freshness constraints are relative to its own
//!   block and therefore *translation-invariant*: delaying the whole block
//!   delays the activations equally. Only deadlines bind across queries, so
//!   the optimal band order is **earliest deadline first**
//!   ([`BandPolicy::EarliestDeadlineFirst`], property-tested optimal against
//!   exhaustive interleaving search).
//! - When data is (or may already have been) sampled at query arrival — the
//!   situation of a running system holding partially-fresh caches — the
//!   expiration times are anchored at arrival and the paper's key
//!   `min(min_i I_i, D)` applies ([`BandPolicy::MinExpiryOrDeadline`]).
//!   The Athena engine uses this key online.

use crate::feasibility::{analyze, ScheduleAnalysis};
use crate::item::{Channel, RetrievalItem};
use crate::lvf::lvf_order;
use dde_logic::time::{SimDuration, SimTime};

/// One decision query in a multi-query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Objects this query must retrieve (assumed disjoint from other
    /// queries' objects, per the model in \[1]).
    pub items: Vec<RetrievalItem>,
    /// Relative decision deadline.
    pub deadline: SimDuration,
}

impl QuerySpec {
    /// Creates a query spec.
    pub fn new(items: Vec<RetrievalItem>, deadline: SimDuration) -> QuerySpec {
        QuerySpec { items, deadline }
    }

    /// The paper's stated band key: `min(min_i I_i, D)`. Smaller = more
    /// urgent. Appropriate when measurements are sampled at query arrival.
    pub fn urgency_key(&self) -> SimDuration {
        self.items
            .iter()
            .map(|i| i.validity)
            .min()
            .unwrap_or(SimDuration::MAX)
            .min(self.deadline)
    }
}

/// How queries are ordered into priority bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BandPolicy {
    /// Order by relative deadline, shortest first. Optimal when sensors are
    /// activated at retrieval start (see module docs).
    #[default]
    EarliestDeadlineFirst,
    /// Order by `min(min_i I_i, D)` — the paper's stated key, appropriate
    /// when data is sampled at query arrival.
    MinExpiryOrDeadline,
}

/// The complete multi-query schedule produced by [`hierarchical_schedule`].
#[derive(Debug, Clone)]
pub struct MultiQuerySchedule {
    /// Query indices in band order (most urgent first).
    pub band_order: Vec<usize>,
    /// Per query (indexed as the input), the retrieval order and analysis.
    pub per_query: Vec<(Vec<RetrievalItem>, ScheduleAnalysis)>,
}

impl MultiQuerySchedule {
    /// Whether every query's freshness and deadline constraints hold.
    pub fn all_feasible(&self) -> bool {
        self.per_query.iter().all(|(_, a)| a.is_feasible())
    }

    /// Number of queries whose constraints hold.
    pub fn feasible_count(&self) -> usize {
        self.per_query
            .iter()
            .filter(|(_, a)| a.is_feasible())
            .count()
    }
}

/// Schedules `queries` (all arriving at `arrival`) hierarchically over
/// `channel` with the default (optimal) [`BandPolicy`].
pub fn hierarchical_schedule(
    queries: &[QuerySpec],
    channel: Channel,
    arrival: SimTime,
) -> MultiQuerySchedule {
    hierarchical_schedule_with(queries, channel, arrival, BandPolicy::default())
}

/// Schedules `queries` hierarchically with an explicit band policy: bands
/// in key order, LVF within each band. Each query's deadline is anchored at
/// `arrival`, but its transfers start only after all higher-priority bands
/// complete.
pub fn hierarchical_schedule_with(
    queries: &[QuerySpec],
    channel: Channel,
    arrival: SimTime,
    policy: BandPolicy,
) -> MultiQuerySchedule {
    let mut band_order: Vec<usize> = (0..queries.len()).collect();
    match policy {
        BandPolicy::EarliestDeadlineFirst => {
            band_order.sort_by_key(|&i| (queries[i].deadline, i));
        }
        BandPolicy::MinExpiryOrDeadline => {
            band_order.sort_by_key(|&i| (queries[i].urgency_key(), i));
        }
    }

    let mut per_query: Vec<Option<(Vec<RetrievalItem>, ScheduleAnalysis)>> =
        vec![None; queries.len()];
    let mut cursor = arrival;
    for &qi in &band_order {
        let q = &queries[qi];
        let order = lvf_order(&q.items);
        // The query's items start when the channel frees up (cursor), but
        // its deadline is anchored at its arrival: shrink the deadline
        // budget by the time already consumed by higher bands.
        let elapsed = cursor.saturating_since(arrival);
        let budget = q.deadline.saturating_sub(elapsed);
        let analysis = analyze(&order, channel, cursor, budget);
        cursor = analysis.finish;
        per_query[qi] = Some((order, analysis));
    }
    MultiQuerySchedule {
        band_order,
        per_query: per_query.into_iter().map(|o| o.expect("filled")).collect(), // lint: allow(panic) — the band loop above fills every slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::meta::Cost;
    use proptest::prelude::*;

    fn item(label: &str, kb: u64, validity_ms: u64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_millis(validity_ms),
        )
    }

    #[test]
    fn urgency_key_is_min_of_validities_and_deadline() {
        let q = QuerySpec::new(
            vec![item("a", 1, 5000), item("b", 1, 3000)],
            SimDuration::from_secs(10),
        );
        assert_eq!(q.urgency_key(), SimDuration::from_secs(3));
        let q2 = QuerySpec::new(vec![item("a", 1, 50_000)], SimDuration::from_secs(10));
        assert_eq!(q2.urgency_key(), SimDuration::from_secs(10));
        let empty = QuerySpec::new(vec![], SimDuration::from_secs(2));
        assert_eq!(empty.urgency_key(), SimDuration::from_secs(2));
    }

    #[test]
    fn tight_deadline_query_goes_first() {
        let ch = Channel::mbps1();
        let relaxed = QuerySpec::new(
            vec![item("r1", 125, 60_000), item("r2", 125, 60_000)],
            SimDuration::from_secs(60),
        );
        let tight = QuerySpec::new(vec![item("t1", 125, 2500)], SimDuration::from_secs(2));
        let sched = hierarchical_schedule(&[relaxed, tight], ch, SimTime::ZERO);
        assert_eq!(sched.band_order, vec![1, 0]);
        assert!(sched.all_feasible());
        assert_eq!(sched.feasible_count(), 2);
    }

    #[test]
    fn paper_key_prioritizes_short_validity() {
        let ch = Channel::mbps1();
        let short_validity = QuerySpec::new(vec![item("s", 125, 1500)], SimDuration::from_secs(50));
        let long_validity =
            QuerySpec::new(vec![item("l", 125, 60_000)], SimDuration::from_secs(40));
        let sched = hierarchical_schedule_with(
            &[long_validity, short_validity],
            ch,
            SimTime::ZERO,
            BandPolicy::MinExpiryOrDeadline,
        );
        // Paper key: min(1.5 s, 50 s) = 1.5 s < min(60 s, 40 s) = 40 s.
        assert_eq!(sched.band_order, vec![1, 0]);
    }

    #[test]
    fn later_band_inherits_channel_backlog() {
        let ch = Channel::mbps1();
        let a = QuerySpec::new(vec![item("a", 250, 60_000)], SimDuration::from_secs(2));
        let b = QuerySpec::new(vec![item("b", 125, 60_000)], SimDuration::from_secs(3));
        // a (D = 2 s) goes first (2 s transfer), pushing b's finish to 3 s —
        // exactly its deadline.
        let sched = hierarchical_schedule(&[a, b], ch, SimTime::ZERO);
        assert_eq!(sched.band_order, vec![0, 1]);
        let (_, b_analysis) = &sched.per_query[1];
        assert_eq!(b_analysis.finish, SimTime::from_secs(3));
        assert!(b_analysis.is_feasible());
    }

    #[test]
    fn overload_reported_per_query() {
        let ch = Channel::mbps1();
        let a = QuerySpec::new(vec![item("a", 500, 60_000)], SimDuration::from_secs(5));
        let b = QuerySpec::new(vec![item("b", 500, 60_000)], SimDuration::from_secs(5));
        // Each needs 4 s of channel; together 8 s — someone misses.
        let sched = hierarchical_schedule(&[a, b], ch, SimTime::ZERO);
        assert!(!sched.all_feasible());
        assert_eq!(sched.feasible_count(), 1);
    }

    /// Brute-force feasibility over ALL interleavings of all per-query item
    /// orders (not just contiguous blocks), honoring per-query
    /// freshness/deadline constraints.
    fn brute_force_feasible(queries: &[QuerySpec], ch: Channel) -> bool {
        fn go(
            queries: &[QuerySpec],
            ch: Channel,
            remaining: &mut Vec<Vec<RetrievalItem>>,
            timeline: &mut Vec<(usize, RetrievalItem)>,
        ) -> bool {
            if remaining.iter().all(Vec::is_empty) {
                let mut cursor = SimTime::ZERO;
                let mut acts: Vec<Vec<(SimTime, SimDuration)>> = vec![Vec::new(); queries.len()];
                let mut finishes = vec![SimTime::ZERO; queries.len()];
                for (qi, it) in timeline.iter() {
                    acts[*qi].push((cursor, it.validity));
                    cursor += ch.transmission_time(it.cost);
                    finishes[*qi] = cursor;
                }
                return (0..queries.len()).all(|qi| {
                    let f = finishes[qi];
                    f <= SimTime::ZERO + queries[qi].deadline
                        && acts[qi].iter().all(|(t, v)| t.saturating_add(*v) >= f)
                });
            }
            for qi in 0..remaining.len() {
                for k in 0..remaining[qi].len() {
                    let it = remaining[qi].remove(k);
                    timeline.push((qi, it.clone()));
                    if go(queries, ch, remaining, timeline) {
                        return true;
                    }
                    timeline.pop();
                    remaining[qi].insert(k, it);
                }
            }
            false
        }
        let mut remaining: Vec<Vec<RetrievalItem>> =
            queries.iter().map(|q| q.items.clone()).collect();
        go(queries, ch, &mut remaining, &mut Vec::new())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The EDF hierarchical policy admits a fully-feasible schedule
        /// whenever ANY interleaving does.
        #[test]
        fn hierarchical_edf_optimal_vs_bruteforce(
            c1 in prop::collection::vec((1u64..150, 300u64..3000), 1..3),
            c2 in prop::collection::vec((1u64..150, 300u64..3000), 1..3),
            d1 in 500u64..4000,
            d2 in 500u64..4000,
        ) {
            let ch = Channel::mbps1();
            let q1 = QuerySpec::new(
                c1.iter().enumerate().map(|(i, (kb, v))| item(&format!("a{i}"), *kb, *v)).collect(),
                SimDuration::from_millis(d1),
            );
            let q2 = QuerySpec::new(
                c2.iter().enumerate().map(|(i, (kb, v))| item(&format!("b{i}"), *kb, *v)).collect(),
                SimDuration::from_millis(d2),
            );
            let queries = vec![q1, q2];
            let any = brute_force_feasible(&queries, ch);
            let hier = hierarchical_schedule(&queries, ch, SimTime::ZERO).all_feasible();
            prop_assert_eq!(hier, any);
        }
    }
}

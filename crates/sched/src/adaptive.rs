//! Online estimators and admission control for adaptive planning.
//!
//! The §III-A planners are parameterized by short-circuit probabilities
//! and per-object costs that the rest of the workspace treats as static
//! priors. This module closes the predicted-vs-actual loop: per-node
//! estimators learn those parameters online from the node's own
//! observations, and an [`AdmissionPolicy`] sheds or defers queries when
//! the *predicted* cost of admitting one exceeds a budget under overload.
//!
//! Three estimators, all exponentially weighted ([`Ewma`]):
//!
//! - [`TruthEstimator`] — short-circuit probability per
//!   *(name-prefix, condition)*: how often evidence whose name shares a
//!   prefix (by default the semantic `/city/seg/<segment>` component)
//!   annotates a given condition `true`. Feeds the planners' term-ordering
//!   ratio (§III-A) in place of the flat `prob_true_prior`.
//! - [`ReliabilityEstimator`] — per-source fetch success rate, learned
//!   from completed fetches vs. retry timeouts. Discounts unreliable
//!   providers during source selection.
//! - [`LoadEstimator`] — attributed bytes per completed decision, the
//!   same quantity PR 5's cost ledger charges. Drives the overload test
//!   in admission control.
//!
//! # Determinism
//!
//! Estimators carry no clock, no randomness, and no I/O: they are pure
//! folds over the observation stream the caller feeds them. In the
//! simulator that stream is exactly the trace-visible event sequence
//! (annotation, fetch-timeout, and data-arrival events), which the
//! sharded engine already guarantees is identical at every thread count —
//! so adaptive runs inherit byte-identical traces for free. All state
//! lives in `BTreeMap`s (lint rule R1) and updates use only arithmetic on
//! finite inputs (R2/R3).

use dde_logic::label::Label;
use dde_logic::time::SimDuration;
use std::collections::BTreeMap;

/// An exponentially weighted moving average: `v ← (1 − α)·v + α·x`.
///
/// With `α ∈ [0, 1]` and observations drawn from `[lo, hi]`, the value is
/// a convex combination of its initial value and the observations, so it
/// stays inside the convex hull of those inputs — the basis for the
/// `[0, 1]` bound on the rate estimators below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: f64,
    alpha: f64,
    samples: u64,
}

impl Ewma {
    /// A new average starting at `initial` with smoothing factor `alpha`.
    ///
    /// `alpha` is clamped to `[0, 1]`; a non-finite `initial` is replaced
    /// by `0.0` so the value can never start (or become) NaN.
    pub fn new(alpha: f64, initial: f64) -> Ewma {
        Ewma {
            value: if initial.is_finite() { initial } else { 0.0 },
            alpha: alpha.clamp(0.0, 1.0),
            samples: 0,
        }
    }

    /// Folds one observation in. Non-finite observations are ignored —
    /// the estimate must never become NaN or infinite.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.value = (1.0 - self.alpha) * self.value + self.alpha * x;
        self.samples += 1;
    }

    /// The current estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// How many observations have been folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Returns the leading `components` slash-separated components of a
/// rendered name, e.g. `prefix_of("/city/seg/3_4-3_5/cam/n7", 3)` is
/// `"/city/seg/3_4-3_5"`. Names shorter than `components` are returned
/// whole. This is the estimator key that groups semantically similar
/// evidence: the workload's names put the road segment before the sensor
/// kind, so a 3-component prefix pools observations per segment.
pub fn prefix_of(name: &str, components: usize) -> &str {
    let mut seen = 0usize;
    for (i, b) in name.char_indices() {
        if b == '/' {
            if seen == components {
                return &name[..i];
            }
            seen += 1;
        }
    }
    name
}

/// Online short-circuit probability per *(name-prefix, condition)*.
///
/// Each annotation outcome (`true`/`false`) observed for a condition on
/// evidence under a given name prefix updates one [`Ewma`] seeded at the
/// run's static prior. Unseen keys fall back to that prior, so an
/// adaptive planner behaves exactly like the static one until evidence
/// arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthEstimator {
    alpha: f64,
    prior: f64,
    rates: BTreeMap<String, BTreeMap<Label, Ewma>>,
}

impl TruthEstimator {
    /// A new estimator: unseen keys report `prior`, updates smooth with
    /// `alpha`. The prior is clamped to `[0, 1]`.
    pub fn new(alpha: f64, prior: f64) -> TruthEstimator {
        TruthEstimator {
            alpha: alpha.clamp(0.0, 1.0),
            prior: if prior.is_finite() {
                prior.clamp(0.0, 1.0)
            } else {
                0.0
            },
            rates: BTreeMap::new(),
        }
    }

    /// Folds one annotation outcome in for `label` on evidence under
    /// `prefix`.
    pub fn observe(&mut self, prefix: &str, label: &Label, observed_true: bool) {
        let (alpha, prior) = (self.alpha, self.prior);
        self.rates
            .entry(prefix.to_string())
            .or_default()
            .entry(label.clone())
            .or_insert_with(|| Ewma::new(alpha, prior))
            .observe(if observed_true { 1.0 } else { 0.0 });
    }

    /// The estimated probability that `label` annotates `true` on
    /// evidence under `prefix`; the prior if nothing has been observed.
    /// Always finite and in `[0, 1]`.
    pub fn prob(&self, prefix: &str, label: &Label) -> f64 {
        self.rates
            .get(prefix)
            .and_then(|m| m.get(label))
            .map(|e| e.value())
            .unwrap_or(self.prior)
    }

    /// The static prior unseen keys report.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Number of distinct *(prefix, condition)* keys observed so far.
    pub fn keys(&self) -> usize {
        self.rates.values().map(|m| m.len()).sum()
    }
}

/// Online per-source fetch reliability.
///
/// Sources are keyed by their raw node index (`u32`), keeping this crate
/// independent of the simulator's `NodeId` type. The prior is optimistic
/// (`1.0`) to match the engine's existing source-selection default: a
/// source is presumed good until a retry timeout says otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityEstimator {
    alpha: f64,
    prior: f64,
    rates: BTreeMap<u32, Ewma>,
}

impl ReliabilityEstimator {
    /// A new estimator with smoothing `alpha` and `prior` (clamped to
    /// `[0, 1]`) for unseen sources.
    pub fn new(alpha: f64, prior: f64) -> ReliabilityEstimator {
        ReliabilityEstimator {
            alpha: alpha.clamp(0.0, 1.0),
            prior: if prior.is_finite() {
                prior.clamp(0.0, 1.0)
            } else {
                1.0
            },
            rates: BTreeMap::new(),
        }
    }

    /// Folds one fetch outcome in: `ok` is `true` for a completed fetch,
    /// `false` for a retry timeout.
    pub fn observe(&mut self, source: u32, ok: bool) {
        let (alpha, prior) = (self.alpha, self.prior);
        self.rates
            .entry(source)
            .or_insert_with(|| Ewma::new(alpha, prior))
            .observe(if ok { 1.0 } else { 0.0 });
    }

    /// The estimated fetch success rate of `source`, in `[0, 1]`.
    pub fn score(&self, source: u32) -> f64 {
        self.rates
            .get(&source)
            .map(|e| e.value())
            .unwrap_or(self.prior)
    }
}

/// Online attributed-bytes-per-decision, the ledger's per-query charge
/// folded into a single running load figure.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEstimator {
    ewma: Ewma,
}

impl LoadEstimator {
    /// A new estimator with smoothing `alpha`. Reports `None` until the
    /// first decision completes.
    pub fn new(alpha: f64) -> LoadEstimator {
        LoadEstimator {
            ewma: Ewma::new(alpha, 0.0),
        }
    }

    /// Folds in the attributed bytes of one completed decision.
    pub fn observe_decision(&mut self, bytes: u64) {
        self.ewma.observe(bytes as f64);
    }

    /// Estimated bytes per decision, or `None` before any decision has
    /// completed. Always finite and non-negative when present.
    pub fn bytes_per_decision(&self) -> Option<f64> {
        (self.ewma.samples() > 0).then(|| self.ewma.value())
    }

    /// How many completed decisions have been folded in.
    pub fn decisions(&self) -> u64 {
        self.ewma.samples()
    }
}

/// What the admission gate decided for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Plan and retrieve normally.
    Admit,
    /// Re-evaluate after [`AdmissionPolicy::defer_for`]; the query keeps
    /// its original deadline, so deferral spends slack, not extra time.
    Defer,
    /// Never start retrieval: the query runs to its deadline unanswered
    /// and is counted as a deliberate shed rather than a capacity miss.
    Shed,
}

impl AdmissionVerdict {
    /// Stable lowercase name, used in trace records.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionVerdict::Admit => "admit",
            AdmissionVerdict::Defer => "defer",
            AdmissionVerdict::Shed => "shed",
        }
    }
}

/// When to shed or defer a query instead of admitting it.
///
/// The gate fires only under *overload*: at least
/// [`min_active`](AdmissionPolicy::min_active) queries already in flight
/// **and** the projected in-flight load — active count × estimated bytes
/// per decision (falling back to this query's own prediction before any
/// decision has completed) — above
/// [`overload_bytes`](AdmissionPolicy::overload_bytes). An overloaded
/// node still admits cheap queries (predicted cost within
/// [`budget_bytes`](AdmissionPolicy::budget_bytes)); expensive ones are
/// deferred while
/// deadline slack and the defer allowance remain, and shed otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Per-query predicted-bytes budget that an overloaded node will
    /// still admit.
    pub budget_bytes: u64,
    /// Projected in-flight bytes (active × bytes-per-decision estimate)
    /// above which the node counts as overloaded.
    pub overload_bytes: u64,
    /// Overload requires at least this many queries already admitted and
    /// undecided, so a quiet node never sheds.
    pub min_active: usize,
    /// How long a deferred query waits before the gate re-evaluates it.
    pub defer_for: SimDuration,
    /// How many times one query may be deferred before the choice
    /// collapses to admit-or-shed.
    pub max_defers: u32,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            budget_bytes: 600_000,
            overload_bytes: 4_000_000,
            min_active: 4,
            defer_for: SimDuration::from_secs(10),
            max_defers: 3,
        }
    }
}

impl AdmissionPolicy {
    /// Evaluates the gate for one query.
    ///
    /// - `predicted_bytes` — the §III-A expected cost of the query's plan
    ///   under the node's current estimators;
    /// - `active` — queries already admitted and not yet decided;
    /// - `load` — the node's [`LoadEstimator`];
    /// - `slack` — time remaining until the query's deadline;
    /// - `defers_so_far` — how often this query has already been deferred.
    pub fn verdict(
        &self,
        predicted_bytes: u64,
        active: usize,
        load: &LoadEstimator,
        slack: SimDuration,
        defers_so_far: u32,
    ) -> AdmissionVerdict {
        let per_decision = load
            .bytes_per_decision()
            .unwrap_or(predicted_bytes as f64)
            .max(0.0);
        let projected = per_decision * active as f64;
        let overloaded = active >= self.min_active && projected > self.overload_bytes as f64;
        if !overloaded || predicted_bytes <= self.budget_bytes {
            AdmissionVerdict::Admit
        } else if defers_so_far < self.max_defers && slack > self.defer_for {
            AdmissionVerdict::Defer
        } else {
            AdmissionVerdict::Shed
        }
    }
}

/// Configuration for a node's adaptive planning loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor shared by all three estimators.
    pub alpha: f64,
    /// Name-prefix length (in components) keying the truth estimator.
    pub prefix_len: usize,
    /// Optional admission gate; `None` means learn-only (re-parameterize
    /// the planners but never shed or defer).
    pub admission: Option<AdmissionPolicy>,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            alpha: 0.25,
            prefix_len: 3,
            admission: None,
        }
    }
}

/// A node's complete adaptive state: the three estimators plus the
/// configuration they were built from.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    /// The configuration this state was built from.
    pub config: AdaptiveConfig,
    /// Short-circuit probability per (name-prefix, condition).
    pub truth: TruthEstimator,
    /// Per-source fetch success rate.
    pub reliability: ReliabilityEstimator,
    /// Attributed bytes per completed decision.
    pub load: LoadEstimator,
}

impl AdaptiveState {
    /// Builds fresh estimators. `truth_prior` seeds the truth estimator
    /// with the run's static short-circuit prior so un-observed keys plan
    /// exactly like the static planners.
    pub fn new(config: AdaptiveConfig, truth_prior: f64) -> AdaptiveState {
        AdaptiveState {
            config,
            truth: TruthEstimator::new(config.alpha, truth_prior),
            reliability: ReliabilityEstimator::new(config.alpha, 1.0),
            load: LoadEstimator::new(config.alpha),
        }
    }

    /// The truth estimate for `label` on evidence named `name` (rendered),
    /// keyed by this state's configured prefix length.
    pub fn prob_for(&self, name: &str, label: &Label) -> f64 {
        self.truth
            .prob(prefix_of(name, self.config.prefix_len), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn label(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn ewma_moves_toward_observations() {
        let mut e = Ewma::new(0.5, 0.0);
        e.observe(1.0);
        assert!((e.value() - 0.5).abs() < 1e-12);
        e.observe(1.0);
        assert!((e.value() - 0.75).abs() < 1e-12);
        assert_eq!(e.samples(), 2);
    }

    #[test]
    fn ewma_rejects_non_finite_input_and_seed() {
        let mut e = Ewma::new(0.5, f64::NAN);
        assert_eq!(e.value(), 0.0);
        e.observe(f64::INFINITY);
        e.observe(f64::NAN);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    fn prefix_of_takes_leading_components() {
        assert_eq!(
            prefix_of("/city/seg/3_4-3_5/cam/n7", 3),
            "/city/seg/3_4-3_5"
        );
        assert_eq!(prefix_of("/city/pano/n2", 3), "/city/pano/n2");
        assert_eq!(prefix_of("/a/b", 5), "/a/b");
        assert_eq!(prefix_of("", 2), "");
    }

    #[test]
    fn truth_estimator_falls_back_to_prior_then_learns() {
        let mut t = TruthEstimator::new(0.5, 0.8);
        let l = label("flooded");
        assert!((t.prob("/city/seg/0_0-0_1", &l) - 0.8).abs() < 1e-12);
        for _ in 0..32 {
            t.observe("/city/seg/0_0-0_1", &l, false);
        }
        assert!(t.prob("/city/seg/0_0-0_1", &l) < 0.01);
        // Other prefixes are untouched.
        assert!((t.prob("/city/seg/9_9-9_8", &l) - 0.8).abs() < 1e-12);
        assert_eq!(t.keys(), 1);
    }

    #[test]
    fn reliability_is_optimistic_until_timeouts_arrive() {
        let mut r = ReliabilityEstimator::new(0.5, 1.0);
        assert_eq!(r.score(3), 1.0);
        r.observe(3, false);
        r.observe(3, false);
        assert!(r.score(3) < 0.3);
        r.observe(3, true);
        assert!(r.score(3) > 0.5);
        assert_eq!(r.score(4), 1.0);
    }

    #[test]
    fn load_estimator_reports_none_until_first_decision() {
        let mut l = LoadEstimator::new(1.0);
        assert_eq!(l.bytes_per_decision(), None);
        l.observe_decision(250_000);
        assert_eq!(l.bytes_per_decision(), Some(250_000.0));
        assert_eq!(l.decisions(), 1);
    }

    #[test]
    fn admission_admits_when_quiet_and_gates_under_overload() {
        let policy = AdmissionPolicy {
            budget_bytes: 100_000,
            overload_bytes: 1_000_000,
            min_active: 2,
            defer_for: SimDuration::from_secs(10),
            max_defers: 1,
        };
        let mut load = LoadEstimator::new(1.0);
        load.observe_decision(600_000);
        let slack = SimDuration::from_secs(60);
        // Quiet node: always admit, even over budget.
        assert_eq!(
            policy.verdict(900_000, 0, &load, slack, 0),
            AdmissionVerdict::Admit
        );
        // Overloaded (2 × 600 kB > 1 MB) but cheap: admit.
        assert_eq!(
            policy.verdict(50_000, 2, &load, slack, 0),
            AdmissionVerdict::Admit
        );
        // Overloaded and expensive with slack: defer, then shed once the
        // defer allowance is spent.
        assert_eq!(
            policy.verdict(900_000, 2, &load, slack, 0),
            AdmissionVerdict::Defer
        );
        assert_eq!(
            policy.verdict(900_000, 2, &load, slack, 1),
            AdmissionVerdict::Shed
        );
        // Overloaded, expensive, out of slack: shed immediately.
        assert_eq!(
            policy.verdict(900_000, 2, &load, SimDuration::from_secs(5), 0),
            AdmissionVerdict::Shed
        );
    }

    #[test]
    fn admission_uses_prediction_as_cold_start_load() {
        let policy = AdmissionPolicy {
            budget_bytes: 100_000,
            overload_bytes: 1_000_000,
            min_active: 2,
            defer_for: SimDuration::from_secs(10),
            max_defers: 1,
        };
        // No completed decisions yet: the query's own prediction stands in
        // for the load estimate (2 × 900 kB > 1 MB ⇒ overloaded).
        let cold = LoadEstimator::new(0.5);
        assert_eq!(
            cold.bytes_per_decision(),
            None,
            "cold start has no load estimate"
        );
        assert_eq!(
            policy.verdict(900_000, 2, &cold, SimDuration::from_secs(60), 0),
            AdmissionVerdict::Defer
        );
    }

    proptest! {
        /// The rate estimators stay in [0, 1] and finite for any alpha,
        /// prior, and observation stream.
        #[test]
        fn truth_probability_stays_bounded(
            alpha in -1.0f64..2.0,
            prior in -1.0f64..2.0,
            stream in prop::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut t = TruthEstimator::new(alpha, prior);
            let l = label("x");
            for &b in &stream {
                t.observe("/p/q/r", &l, b);
                let p = t.prob("/p/q/r", &l);
                prop_assert!(p.is_finite());
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        /// Same bound for reliability under mixed outcomes.
        #[test]
        fn reliability_stays_bounded(
            alpha in 0.0f64..1.0,
            stream in prop::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut r = ReliabilityEstimator::new(alpha, 1.0);
            for &ok in &stream {
                r.observe(7, ok);
                let s = r.score(7);
                prop_assert!(s.is_finite());
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        /// On a stationary (periodic) stream the estimator's time-average
        /// over one period converges to the stream's true rate: in the
        /// periodic steady state, summing `v' − v = α(x − v)` over a
        /// period gives mean(v) = mean(x).
        #[test]
        fn ewma_converges_to_true_rate_on_stationary_stream(
            alpha in 0.05f64..0.8,
            pattern in prop::collection::vec(any::<bool>(), 1..12),
        ) {
            let truth = pattern.iter().filter(|&&b| b).count() as f64
                / pattern.len() as f64;
            let mut t = TruthEstimator::new(alpha, 0.5);
            let l = label("x");
            let reps = 600usize;
            let mut tail = Vec::new();
            for rep in 0..reps {
                for &b in &pattern {
                    t.observe("/p/q/r", &l, b);
                    if rep == reps - 1 {
                        tail.push(t.prob("/p/q/r", &l));
                    }
                }
            }
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!(
                (mean - truth).abs() < 0.02,
                "time-averaged estimate {mean} should approach true rate {truth}"
            );
        }

        /// The load estimator is finite and non-negative for any byte
        /// stream.
        #[test]
        fn load_stays_finite(
            alpha in 0.0f64..1.0,
            stream in prop::collection::vec(0u64..10_000_000, 0..100),
        ) {
            let mut load = LoadEstimator::new(alpha);
            for &b in &stream {
                load.observe_decision(b);
                let v = load.bytes_per_decision();
                prop_assert!(v.is_some_and(|v| v.is_finite() && v >= 0.0));
            }
        }
    }
}

//! Feasibility analysis of retrieval schedules (§IV-A).
//!
//! A retrieval order for a single decision query is *feasible* when
//!
//! - **data freshness**: `t_i + I_i ≥ F` for every object `i`, where `t_i` is
//!   the instant object `i`'s sensor is activated/sampled (the start of its
//!   retrieval) and `F` is the decision time (retrieval finish), and
//! - **decision deadline**: `t + D ≥ F` for query arrival `t` and relative
//!   deadline `D`.
//!
//! Meeting the freshness constraint for every object means each sensor is
//! sampled exactly once, so the schedule achieves the optimal cost
//! `Cost_opt = Σ C_i` (Eq. 1 of the paper).

use crate::item::{Channel, RetrievalItem};
use dde_logic::time::{SimDuration, SimTime};

/// The computed timeline of one retrieval order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Sensor-activation (= retrieval-start) time of each item, in schedule
    /// order.
    pub activations: Vec<SimTime>,
    /// The decision time `F`: when the last retrieval completes.
    pub finish: SimTime,
    /// Indices (into the schedule order) of items whose freshness constraint
    /// `t_i + I_i ≥ F` is violated.
    pub freshness_violations: Vec<usize>,
    /// Whether the decision deadline is met.
    pub deadline_met: bool,
    // Earliest binding limit: min(min_i t_i + I_i, t + D). Stored to expose
    // slack without recomputation.
    pub(crate) limit: SimTime,
}

impl ScheduleAnalysis {
    /// Whether both constraint families hold.
    pub fn is_feasible(&self) -> bool {
        self.deadline_met && self.freshness_violations.is_empty()
    }

    /// The schedule's *slack*: how much later the decision could finish and
    /// still satisfy every constraint. Zero-or-positive iff feasible.
    pub fn slack(&self) -> Option<SimDuration> {
        if !self.is_feasible() {
            return None;
        }
        Some(self.limit.saturating_since(self.finish))
    }
}

/// Analyzes the retrieval `order` for a query arriving at `arrival` with
/// relative deadline `deadline`, over `channel`.
///
/// Items are retrieved back-to-back starting at `arrival`; each item's
/// sensor is activated when its retrieval starts (the earliest-information
/// policy — sampling any earlier only makes data staler at decision time,
/// sampling later is impossible since the sample must traverse the channel).
pub fn analyze(
    order: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> ScheduleAnalysis {
    let mut activations = Vec::with_capacity(order.len());
    let mut cursor = arrival;
    for item in order {
        activations.push(cursor);
        cursor += channel.transmission_time(item.cost);
    }
    let finish = cursor;
    let mut limit = arrival + deadline;
    let mut freshness_violations = Vec::new();
    for (i, item) in order.iter().enumerate() {
        let expires = activations[i].saturating_add(item.validity);
        limit = limit.min(expires);
        if expires < finish {
            freshness_violations.push(i);
        }
    }
    ScheduleAnalysis {
        deadline_met: finish <= arrival + deadline,
        activations,
        finish,
        freshness_violations,
        limit,
    }
}

/// Whether `order` is feasible (see [`analyze`]).
pub fn is_feasible(
    order: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> bool {
    analyze(order, channel, arrival, deadline).is_feasible()
}

/// The cost-optimal total `Cost_opt = Σ C_i` (Eq. 1): every feasible
/// schedule retrieves each object exactly once.
pub fn optimal_cost(items: &[RetrievalItem]) -> dde_logic::meta::Cost {
    items.iter().map(|i| i.cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::meta::Cost;

    fn item(label: &str, kb: u64, validity_s: u64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_secs(validity_s),
        )
    }

    #[test]
    fn timeline_is_back_to_back() {
        let ch = Channel::mbps1();
        // 125 KB = 1 s each.
        let order = vec![
            item("a", 125, 100),
            item("b", 125, 100),
            item("c", 125, 100),
        ];
        let a = analyze(
            &order,
            ch,
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
        );
        assert_eq!(
            a.activations,
            vec![
                SimTime::from_secs(5),
                SimTime::from_secs(6),
                SimTime::from_secs(7)
            ]
        );
        assert_eq!(a.finish, SimTime::from_secs(8));
        assert!(a.is_feasible());
        // Limit: deadline 65 vs earliest expiry 105 → slack = 65 - 8 = 57 s.
        assert_eq!(a.slack(), Some(SimDuration::from_secs(57)));
    }

    #[test]
    fn freshness_violation_detected() {
        let ch = Channel::mbps1();
        // First item expires (validity 1 s) before the 2 s finish.
        let order = vec![item("volatile", 125, 1), item("big", 125, 100)];
        let a = analyze(&order, ch, SimTime::ZERO, SimDuration::from_secs(60));
        assert!(!a.is_feasible());
        assert_eq!(a.freshness_violations, vec![0]);
        assert!(a.deadline_met);
        assert_eq!(a.slack(), None);
        // Swapping the order fixes it.
        let swapped = vec![item("big", 125, 100), item("volatile", 125, 1)];
        assert!(is_feasible(
            &swapped,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
    }

    #[test]
    fn deadline_violation_detected() {
        let ch = Channel::mbps1();
        let order = vec![item("a", 1250, 100)]; // 10 s transfer
        let a = analyze(&order, ch, SimTime::ZERO, SimDuration::from_secs(5));
        assert!(!a.deadline_met);
        assert!(a.freshness_violations.is_empty());
        assert!(!a.is_feasible());
    }

    #[test]
    fn boundary_exactly_at_expiry_is_fresh() {
        let ch = Channel::mbps1();
        // Item expires exactly at finish: t_i + I_i = F satisfies ≥.
        let order = vec![item("a", 125, 2), item("b", 125, 1)];
        let a = analyze(&order, ch, SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(a.finish, SimTime::from_secs(2));
        assert!(a.is_feasible());
        assert_eq!(a.slack(), Some(SimDuration::ZERO));
    }

    #[test]
    fn empty_schedule_trivially_feasible() {
        let a = analyze(&[], Channel::mbps1(), SimTime::ZERO, SimDuration::ZERO);
        assert!(a.is_feasible());
        assert_eq!(a.finish, SimTime::ZERO);
    }

    #[test]
    fn optimal_cost_sums_items() {
        let items = vec![item("a", 1, 1), item("b", 2, 1)];
        assert_eq!(optimal_cost(&items), Cost::from_bytes(3000));
    }
}

//! Expected-cost-optimal evaluation of general AND/OR expression trees.
//!
//! §III notes that decision queries need not stay in DNF ("a query could be
//! resolved when a viable course of action is found for which additional
//! conditions apply … ANDed with the original graph"). For an arbitrary
//! AND/OR tree over independent conditions, the classic series–parallel
//! result applies recursively: summarize every subtree by its truth
//! probability `P` and expected evaluation cost `E`, then order the
//! children of an AND by descending `(1 − P)/E` and the children of an OR
//! by descending `P/E`. The result is optimal among *depth-first*
//! evaluation orders (those that finish one subtree before starting a
//! sibling), which is the natural execution model for sequential retrieval.
//!
//! Negation is handled by propagating complemented probabilities (the cost
//! of evaluating `!x` equals the cost of evaluating `x`).

use dde_logic::expr::Expr;
use dde_logic::label::Label;
use dde_logic::meta::MetaTable;

/// An evaluation plan for an expression: the same tree with children
/// reordered for minimum expected cost, plus per-node statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// Probability that this (sub)expression evaluates to true.
    pub prob_true: f64,
    /// Expected retrieval cost (bytes) to decide it.
    pub expected_cost: f64,
    /// The node itself.
    pub node: PlanNode,
}

/// A node of the evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// A constant: free, decided.
    Const(bool),
    /// Evaluate this label's condition (fetch + annotate its evidence).
    Leaf {
        /// The label to resolve.
        label: Label,
        /// Whether the literal is negated.
        negated: bool,
    },
    /// Evaluate children in order; stop at the first false.
    And(Vec<EvalPlan>),
    /// Evaluate children in order; stop at the first true.
    Or(Vec<EvalPlan>),
}

impl EvalPlan {
    /// The depth-first leaf evaluation order of the plan.
    pub fn leaf_order(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<Label>) {
        match &self.node {
            PlanNode::Const(_) => {}
            PlanNode::Leaf { label, .. } => out.push(label.clone()),
            PlanNode::And(children) | PlanNode::Or(children) => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
        }
    }
}

/// Builds the expected-cost-optimal depth-first evaluation plan for `expr`,
/// reading per-label cost and truth probability from `meta` (labels missing
/// from the table get the pessimistic default: zero cost, probability ½).
pub fn plan_expr(expr: &Expr, meta: &MetaTable) -> EvalPlan {
    plan(expr, meta, false)
}

fn plan(expr: &Expr, meta: &MetaTable, negated: bool) -> EvalPlan {
    match expr {
        Expr::Const(b) => EvalPlan {
            prob_true: if *b != negated { 1.0 } else { 0.0 },
            expected_cost: 0.0,
            node: PlanNode::Const(*b != negated),
        },
        Expr::Label(label) => {
            let m = meta.get_or_default(label);
            let p = m.prob_true.value();
            EvalPlan {
                prob_true: if negated { 1.0 - p } else { p },
                expected_cost: m.cost.as_f64(),
                node: PlanNode::Leaf {
                    label: label.clone(),
                    negated,
                },
            }
        }
        Expr::Not(inner) => plan(inner, meta, !negated),
        // De Morgan under negation: a negated AND plans as an OR of negated
        // children and vice versa.
        Expr::And(children) if !negated => plan_and(children, meta, false),
        Expr::And(children) => plan_or(children, meta, true),
        Expr::Or(children) if !negated => plan_or(children, meta, false),
        Expr::Or(children) => plan_and(children, meta, true),
    }
}

fn plan_and(children: &[Expr], meta: &MetaTable, negate_children: bool) -> EvalPlan {
    let mut plans: Vec<EvalPlan> = children
        .iter()
        .map(|c| plan(c, meta, negate_children))
        .collect();
    // Short-circuit efficiency for AND: (1 − P)/E descending.
    plans.sort_by(|a, b| ratio_and(b).total_cmp(&ratio_and(a)));
    let mut reach = 1.0;
    let mut cost = 0.0;
    let mut prob = 1.0;
    for p in &plans {
        cost += reach * p.expected_cost;
        reach *= p.prob_true;
        prob *= p.prob_true;
    }
    EvalPlan {
        prob_true: prob,
        expected_cost: cost,
        node: PlanNode::And(plans),
    }
}

fn plan_or(children: &[Expr], meta: &MetaTable, negate_children: bool) -> EvalPlan {
    let mut plans: Vec<EvalPlan> = children
        .iter()
        .map(|c| plan(c, meta, negate_children))
        .collect();
    // Short-circuit efficiency for OR: P/E descending.
    plans.sort_by(|a, b| ratio_or(b).total_cmp(&ratio_or(a)));
    let mut reach = 1.0; // probability everything so far was false
    let mut cost = 0.0;
    let mut prob_false = 1.0;
    for p in &plans {
        cost += reach * p.expected_cost;
        reach *= 1.0 - p.prob_true;
        prob_false *= 1.0 - p.prob_true;
    }
    EvalPlan {
        prob_true: 1.0 - prob_false,
        expected_cost: cost,
        node: PlanNode::Or(plans),
    }
}

fn ratio_and(p: &EvalPlan) -> f64 {
    if p.expected_cost == 0.0 {
        f64::INFINITY
    } else {
        (1.0 - p.prob_true) / p.expected_cost
    }
}

fn ratio_or(p: &EvalPlan) -> f64 {
    if p.expected_cost == 0.0 {
        f64::INFINITY
    } else {
        p.prob_true / p.expected_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::meta::{ConditionMeta, Cost, Probability};
    use dde_logic::parse::parse_expr;
    use dde_logic::time::SimDuration;
    use proptest::prelude::*;

    fn meta(entries: &[(&str, u64, f64)]) -> MetaTable {
        entries
            .iter()
            .map(|(l, bytes, p)| {
                (
                    Label::new(*l),
                    ConditionMeta::new(Cost::from_bytes(*bytes), SimDuration::MAX)
                        .with_prob(Probability::clamped(*p)),
                )
            })
            .collect()
    }

    #[test]
    fn paper_pair_example_as_tree() {
        // h: 4 MB @ 0.6, k: 5 MB @ 0.2 — k first, expected 5.8 MB.
        let e = parse_expr("h & k").unwrap();
        let m = meta(&[("h", 4_000_000, 0.6), ("k", 5_000_000, 0.2)]);
        let plan = plan_expr(&e, &m);
        assert_eq!(plan.leaf_order(), vec![Label::new("k"), Label::new("h")]);
        assert!((plan.expected_cost - 5.8e6).abs() < 1.0);
        assert!((plan.prob_true - 0.12).abs() < 1e-9);
    }

    #[test]
    fn or_prefers_likely_true() {
        let e = parse_expr("a | b").unwrap();
        let m = meta(&[("a", 1_000, 0.1), ("b", 1_000, 0.9)]);
        let plan = plan_expr(&e, &m);
        assert_eq!(plan.leaf_order()[0], Label::new("b"));
        // E = 1000 + 0.1 * 1000 = 1100.
        assert!((plan.expected_cost - 1100.0).abs() < 1e-6);
        assert!((plan.prob_true - 0.91).abs() < 1e-9);
    }

    #[test]
    fn nested_tree_summarizes_subtrees() {
        // (a & b) | c: the AND subtree is summarized by (P, E) and competes
        // with c for first place.
        let e = parse_expr("(a & b) | c").unwrap();
        // AND subtree: P = 0.81, E = 100 + 0.9*100 = 190; ratio = 0.00426
        // c: P = 0.5, E = 1000; ratio 0.0005 → AND first.
        let m = meta(&[("a", 100, 0.9), ("b", 100, 0.9), ("c", 1000, 0.5)]);
        let plan = plan_expr(&e, &m);
        assert_eq!(plan.leaf_order().last().unwrap(), &Label::new("c"));
        // E = 190 + (1 - 0.81) * 1000 = 380.
        assert!((plan.expected_cost - 380.0).abs() < 1e-6);
    }

    #[test]
    fn negation_flips_probability_not_cost() {
        let e = parse_expr("!a").unwrap();
        let m = meta(&[("a", 500, 0.3)]);
        let plan = plan_expr(&e, &m);
        assert!((plan.prob_true - 0.7).abs() < 1e-12);
        assert!((plan.expected_cost - 500.0).abs() < 1e-12);
        match plan.node {
            PlanNode::Leaf { negated, .. } => assert!(negated),
            other => panic!("expected leaf, got {other:?}"),
        }
    }

    #[test]
    fn de_morgan_negated_and_becomes_or() {
        // !(a & b): cheap-to-refute child first, as an OR of negations.
        let e = parse_expr("!(a & b)").unwrap();
        let m = meta(&[("a", 100, 0.1), ("b", 100, 0.9)]);
        let plan = plan_expr(&e, &m);
        match &plan.node {
            PlanNode::Or(children) => {
                assert_eq!(children.len(), 2);
                // !a has P = 0.9 → best OR ratio → goes first.
                assert_eq!(plan.leaf_order()[0], Label::new("a"));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        assert!((plan.prob_true - (1.0 - 0.09)).abs() < 1e-9);
    }

    #[test]
    fn constants_are_free() {
        let e = parse_expr("true & a").unwrap();
        let m = meta(&[("a", 700, 0.5)]);
        let plan = plan_expr(&e, &m);
        assert!((plan.expected_cost - 700.0).abs() < 1e-12);
        let e2 = parse_expr("false & a").unwrap();
        let plan2 = plan_expr(&e2, &m);
        // The false constant short-circuits everything for free.
        assert_eq!(plan2.expected_cost, 0.0);
        assert_eq!(plan2.prob_true, 0.0);
    }

    /// Brute force: expected cost of every depth-first child ordering.
    fn brute_force_min(expr: &Expr, m: &MetaTable, negated: bool) -> f64 {
        fn orderings(n: usize) -> Vec<Vec<usize>> {
            fn go(rest: &[usize]) -> Vec<Vec<usize>> {
                if rest.is_empty() {
                    return vec![vec![]];
                }
                let mut out = Vec::new();
                for i in 0..rest.len() {
                    let mut sub = rest.to_vec();
                    let head = sub.remove(i);
                    for mut p in go(&sub) {
                        p.insert(0, head);
                        out.push(p);
                    }
                }
                out
            }
            go(&(0..n).collect::<Vec<_>>())
        }
        // Returns (min expected cost, prob true) over depth-first orders.
        fn eval(expr: &Expr, m: &MetaTable, negated: bool) -> (f64, f64) {
            match expr {
                Expr::Const(b) => (0.0, if *b != negated { 1.0 } else { 0.0 }),
                Expr::Label(l) => {
                    let meta = m.get_or_default(l);
                    let p = meta.prob_true.value();
                    (meta.cost.as_f64(), if negated { 1.0 - p } else { p })
                }
                Expr::Not(inner) => eval(inner, m, !negated),
                Expr::And(cs) | Expr::Or(cs) => {
                    let is_and = matches!(expr, Expr::And(_)) != negated;
                    let children: Vec<(f64, f64)> =
                        cs.iter().map(|c| eval(c, m, negated)).collect();
                    let mut best = f64::INFINITY;
                    let mut prob = 1.0;
                    for (_, p) in &children {
                        if is_and {
                            prob *= p;
                        } else {
                            prob *= 1.0 - p;
                        }
                    }
                    let prob_true = if is_and { prob } else { 1.0 - prob };
                    for order in orderings(children.len()) {
                        let mut reach = 1.0;
                        let mut cost = 0.0;
                        for &i in &order {
                            let (e, p) = children[i];
                            cost += reach * e;
                            reach *= if is_and { p } else { 1.0 - p };
                        }
                        best = best.min(cost);
                    }
                    if children.is_empty() {
                        best = 0.0;
                    }
                    (best, prob_true)
                }
            }
        }
        eval(expr, m, negated).0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The plan's expected cost matches brute force over all depth-first
        /// child orderings at every node.
        #[test]
        fn optimal_among_depth_first_orders(
            costs in prop::collection::vec(1u64..1000, 5),
            probs in prop::collection::vec(0.05f64..0.95, 5),
            shape in 0u8..4,
        ) {
            let m: MetaTable = (0..5)
                .map(|i| (
                    Label::new(format!("v{i}")),
                    ConditionMeta::new(Cost::from_bytes(costs[i]), SimDuration::MAX)
                        .with_prob(Probability::clamped(probs[i])),
                ))
                .collect();
            let expr = match shape {
                0 => parse_expr("(v0 & v1) | (v2 & v3 & v4)").unwrap(),
                1 => parse_expr("v0 & (v1 | v2) & (v3 | v4)").unwrap(),
                2 => parse_expr("!(v0 & v1) | (v2 & !v3) | v4").unwrap(),
                _ => parse_expr("((v0 | v1) & v2) | (v3 & v4)").unwrap(),
            };
            let plan = plan_expr(&expr, &m);
            let best = brute_force_min(&expr, &m, false);
            prop_assert!(
                (plan.expected_cost - best).abs() < 1e-6,
                "plan {} vs brute force {best}", plan.expected_cost
            );
        }

        /// The plan's truth probability matches independent-condition
        /// semantics regardless of ordering.
        #[test]
        fn probability_is_order_independent(
            probs in prop::collection::vec(0.0f64..=1.0, 3),
        ) {
            let m: MetaTable = (0..3)
                .map(|i| (
                    Label::new(format!("v{i}")),
                    ConditionMeta::new(Cost::from_bytes(10), SimDuration::MAX)
                        .with_prob(Probability::clamped(probs[i])),
                ))
                .collect();
            let e = parse_expr("(v0 & v1) | v2").unwrap();
            let plan = plan_expr(&e, &m);
            let expected = 1.0 - (1.0 - probs[0] * probs[1]) * (1.0 - probs[2]);
            prop_assert!((plan.prob_true - expected).abs() < 1e-9);
        }
    }
}

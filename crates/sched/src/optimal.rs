//! Exhaustive-search baselines.
//!
//! Used by tests and benches to validate the polynomial-time policies
//! against ground truth on small instances, and by the ablation benches to
//! quantify how close the heuristics get.

use crate::feasibility::is_feasible;
use crate::item::{Channel, RetrievalItem};
use crate::shortcircuit::expected_and_cost;
use dde_logic::time::{SimDuration, SimTime};

/// All permutations of `items`. Exponential; intended for `n ≤ 8`.
///
/// # Panics
///
/// Panics if `items.len() > 9` (362 880 permutations) to guard against
/// accidental blowups.
pub fn permutations(items: &[RetrievalItem]) -> Vec<Vec<RetrievalItem>> {
    assert!(items.len() <= 9, "permutation search capped at n = 9");
    fn go(rest: &[RetrievalItem]) -> Vec<Vec<RetrievalItem>> {
        if rest.is_empty() {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for i in 0..rest.len() {
            let mut sub = rest.to_vec();
            let head = sub.remove(i);
            for mut p in go(&sub) {
                p.insert(0, head.clone());
                out.push(p);
            }
        }
        out
    }
    go(items)
}

/// The minimum expected AND-evaluation cost over all permutations.
pub fn brute_force_min_expected_cost(items: &[RetrievalItem]) -> f64 {
    permutations(items)
        .iter()
        .map(|p| expected_and_cost(p))
        .fold(f64::INFINITY, f64::min)
}

/// The minimum expected AND-evaluation cost over all *feasible*
/// permutations, or `None` if no permutation is feasible.
pub fn brute_force_min_feasible_cost(
    items: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> Option<f64> {
    permutations(items)
        .into_iter()
        .filter(|p| is_feasible(p, channel, arrival, deadline))
        .map(|p| expected_and_cost(&p))
        .fold(None, |acc, c| {
            Some(match acc {
                None => c,
                Some(a) => a.min(c),
            })
        })
}

/// Whether any permutation is feasible (ground truth for the LVF theorem).
pub fn brute_force_schedulable(
    items: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> bool {
    permutations(items)
        .iter()
        .any(|p| is_feasible(p, channel, arrival, deadline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::greedy_validity_shortcircuit;
    use crate::shortcircuit::optimal_and_order;
    use dde_logic::meta::{Cost, Probability};
    use proptest::prelude::*;

    fn item(label: &str, kb: u64, validity_ms: u64, p: f64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_millis(validity_ms),
        )
        .with_prob(Probability::new(p).unwrap())
    }

    #[test]
    fn permutation_count() {
        let items: Vec<_> = (0..4)
            .map(|i| item(&format!("o{i}"), 1, 1000, 0.5))
            .collect();
        assert_eq!(permutations(&items).len(), 24);
        assert_eq!(permutations(&[]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn permutation_guard() {
        let items: Vec<_> = (0..10).map(|i| item(&format!("o{i}"), 1, 1, 0.5)).collect();
        let _ = permutations(&items);
    }

    #[test]
    fn no_feasible_order_reports_none() {
        let ch = Channel::mbps1();
        let items = vec![item("a", 125, 100, 0.5), item("b", 125, 100, 0.5)];
        assert_eq!(
            brute_force_min_feasible_cost(&items, ch, SimTime::ZERO, SimDuration::from_secs(9)),
            None
        );
        assert!(!brute_force_schedulable(
            &items,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(9)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Pure ratio sort matches brute force when freshness never binds.
        #[test]
        fn ratio_sort_matches_bruteforce(
            specs in prop::collection::vec((1u64..100, 0.0f64..=1.0), 1..5)
        ) {
            let items: Vec<_> = specs.iter().enumerate()
                .map(|(i, (kb, p))| item(&format!("o{i}"), *kb, 10_000_000, *p))
                .collect();
            let sorted = optimal_and_order(&items);
            prop_assert!(
                (expected_and_cost(&sorted) - brute_force_min_expected_cost(&items)).abs() < 1e-6
            );
        }

        /// The hybrid greedy is near the feasible optimum: we assert it is
        /// feasible-optimal on instances with ≤ 3 items (where greedy IS
        /// optimal by exhaustiveness of its lookahead) and within 2× beyond.
        #[test]
        fn hybrid_close_to_feasible_optimum(
            specs in prop::collection::vec((1u64..150, 500u64..4000, 0.05f64..0.95), 1..5),
            deadline_ms in 1000u64..8000,
        ) {
            let items: Vec<_> = specs.iter().enumerate()
                .map(|(i, (kb, v, p))| item(&format!("o{i}"), *kb, *v, *p))
                .collect();
            let ch = Channel::mbps1();
            let d = SimDuration::from_millis(deadline_ms);
            let Some(best) = brute_force_min_feasible_cost(&items, ch, SimTime::ZERO, d)
                else { return Ok(()); };
            let hybrid = greedy_validity_shortcircuit(&items, ch, SimTime::ZERO, d);
            let got = expected_and_cost(&hybrid);
            prop_assert!(got <= best * 2.0 + 1e-6,
                "greedy {got} vs optimum {best}");
        }
    }
}

//! Multi-query scheduling with *shared* objects — the paper's first
//! "remaining challenge" (§IV-B):
//!
//! > "It is important to consider the case where some queries overlap in
//! > needed data objects. In this case, retrieving each object once is not
//! > optimal anymore … there is a possibility that the same data object can
//! > be reused. Such reuse can reduce total cost. At present, the optimal
//! > solution to this problem is unknown."
//!
//! This module implements a reuse-aware heuristic: queries are laid out in
//! EDF bands (optimal for the disjoint case) with LVF inside each band, but
//! an object already fetched by an earlier band is *reused* — not fetched
//! again — whenever its sample will still be fresh at the later query's
//! decision time. Reuse shrinks later bands, which both saves cost and
//! pulls decision times earlier; stale candidates are detected against the
//! band's own finish time and refetched, iterated to a fixpoint.

use crate::feasibility::analyze;
use crate::item::{Channel, RetrievalItem};
use crate::lvf::sort_lvf;
use dde_logic::label::Label;
use dde_logic::meta::Cost;
use dde_logic::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One query in a shared-object workload. Items with equal labels across
/// queries denote the *same* object (same cost and validity expected).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedQuery {
    /// The objects this query needs fresh at its decision time.
    pub items: Vec<RetrievalItem>,
    /// Relative decision deadline.
    pub deadline: SimDuration,
}

impl SharedQuery {
    /// Creates a query.
    pub fn new(items: Vec<RetrievalItem>, deadline: SimDuration) -> SharedQuery {
        SharedQuery { items, deadline }
    }
}

/// One scheduled retrieval in the global timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFetch {
    /// The fetched object's label.
    pub label: Label,
    /// Activation/sampling time (= retrieval start).
    pub start: SimTime,
    /// Retrieval cost.
    pub cost: Cost,
    /// Index of the query whose band triggered the fetch.
    pub for_query: usize,
}

/// Per-query outcome of the shared schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedQueryOutcome {
    /// The query's decision time (when its last needed object is fresh and
    /// available).
    pub finish: SimTime,
    /// Whether every freshness and deadline constraint holds.
    pub feasible: bool,
    /// Labels served by reusing an earlier band's fetch.
    pub reused: Vec<Label>,
}

/// The complete shared-object schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSchedule {
    /// Every retrieval, in timeline order.
    pub fetches: Vec<ScheduledFetch>,
    /// Outcomes, indexed like the input queries.
    pub per_query: Vec<SharedQueryOutcome>,
    /// Total retrieval cost (reuse pays once).
    pub total_cost: Cost,
}

impl SharedSchedule {
    /// Whether every query's constraints hold.
    pub fn all_feasible(&self) -> bool {
        self.per_query.iter().all(|q| q.feasible)
    }

    /// Number of reuse hits across all queries.
    pub fn reuse_count(&self) -> usize {
        self.per_query.iter().map(|q| q.reused.len()).sum()
    }
}

/// Schedules `queries` (all arriving at `arrival`) over one channel with
/// cross-query object reuse. See the module docs for the policy.
pub fn shared_schedule(
    queries: &[SharedQuery],
    channel: Channel,
    arrival: SimTime,
) -> SharedSchedule {
    let mut band_order: Vec<usize> = (0..queries.len()).collect();
    band_order.sort_by_key(|&i| (queries[i].deadline, i));

    let mut fetches: Vec<ScheduledFetch> = Vec::new();
    let mut per_query: Vec<Option<SharedQueryOutcome>> = vec![None; queries.len()];
    // label → (activation time, validity) of its latest fetch
    let mut last_fetch: BTreeMap<Label, (SimTime, SimDuration)> = BTreeMap::new();
    let mut cursor = arrival;
    let mut total = Cost::ZERO;

    for &qi in &band_order {
        let q = &queries[qi];
        // Start optimistic: reuse everything previously fetched; demote
        // entries that turn out stale at this band's finish time. Each
        // iteration only moves items from `reused` to `to_fetch`, so the
        // loop terminates in ≤ items.len() rounds.
        let mut to_fetch: Vec<RetrievalItem> = Vec::new();
        let mut reused: Vec<RetrievalItem> = Vec::new();
        for it in &q.items {
            if last_fetch.contains_key(&it.label) {
                reused.push(it.clone());
            } else {
                to_fetch.push(it.clone());
            }
        }
        loop {
            sort_lvf(&mut to_fetch);
            let finish = cursor + channel.total_time(&to_fetch);
            let stale_idx: Vec<usize> = reused
                .iter()
                .enumerate()
                .filter(|(_, it)| {
                    let (t, validity) = last_fetch[&it.label];
                    t.saturating_add(validity) < finish
                })
                .map(|(k, _)| k)
                .collect();
            if stale_idx.is_empty() {
                break;
            }
            for k in stale_idx.into_iter().rev() {
                to_fetch.push(reused.remove(k));
            }
        }

        // Lay the band out and record the fetches.
        let elapsed = cursor.saturating_since(arrival);
        let budget = q.deadline.saturating_sub(elapsed);
        let analysis = analyze(&to_fetch, channel, cursor, budget);
        for (it, &start) in to_fetch.iter().zip(&analysis.activations) {
            last_fetch.insert(it.label.clone(), (start, it.validity));
            total = total.saturating_add(it.cost);
            fetches.push(ScheduledFetch {
                label: it.label.clone(),
                start,
                cost: it.cost,
                for_query: qi,
            });
        }
        let finish = analysis.finish;
        // Re-verify reused entries against the final finish (the fixpoint
        // loop already guaranteed this; double-check for safety).
        let reused_ok = reused.iter().all(|it| {
            let (t, validity) = last_fetch[&it.label];
            t.saturating_add(validity) >= finish
        });
        let feasible = analysis.is_feasible() && reused_ok;
        per_query[qi] = Some(SharedQueryOutcome {
            finish,
            feasible,
            reused: reused.iter().map(|it| it.label.clone()).collect(),
        });
        cursor = finish;
    }

    SharedSchedule {
        fetches,
        per_query: per_query.into_iter().map(|o| o.expect("filled")).collect(), // lint: allow(panic) — the fetch loop above fills every slot
        total_cost: total,
    }
}

/// The no-reuse reference: every query fetches everything itself
/// (hierarchical EDF + LVF, as in the disjoint model of §IV-A). Returns
/// `(total cost, feasible-for-all)`.
pub fn no_reuse_cost(queries: &[SharedQuery], channel: Channel, arrival: SimTime) -> (Cost, bool) {
    let specs: Vec<crate::hierarchical::QuerySpec> = queries
        .iter()
        .map(|q| crate::hierarchical::QuerySpec::new(q.items.clone(), q.deadline))
        .collect();
    let sched = crate::hierarchical::hierarchical_schedule(&specs, channel, arrival);
    let cost = queries
        .iter()
        .flat_map(|q| q.items.iter().map(|i| i.cost))
        .sum();
    (cost, sched.all_feasible())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(label: &str, kb: u64, validity_ms: u64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_millis(validity_ms),
        )
    }

    #[test]
    fn identical_queries_pay_once() {
        let ch = Channel::mbps1();
        let items = vec![item("a", 125, 600_000), item("b", 125, 600_000)];
        let queries = vec![
            SharedQuery::new(items.clone(), SimDuration::from_secs(30)),
            SharedQuery::new(items.clone(), SimDuration::from_secs(40)),
        ];
        let sched = shared_schedule(&queries, ch, SimTime::ZERO);
        assert!(sched.all_feasible());
        assert_eq!(sched.fetches.len(), 2, "each object fetched once");
        assert_eq!(sched.total_cost, Cost::from_bytes(250_000));
        assert_eq!(sched.reuse_count(), 2);
        // The reusing query decides instantly (no new transfers).
        let second = &sched.per_query[1];
        assert_eq!(second.finish, SimTime::from_secs(2));
    }

    #[test]
    fn short_validity_forces_refetch() {
        let ch = Channel::mbps1();
        // Object expires 1.5 s after sampling; the second band starts 1 s in
        // and needs it fresh at its own finish.
        let shared = item("v", 125, 1500);
        let queries = vec![
            SharedQuery::new(
                vec![shared.clone(), item("x", 125, 600_000)],
                SimDuration::from_secs(30),
            ),
            SharedQuery::new(
                vec![shared.clone(), item("y", 125, 600_000)],
                SimDuration::from_secs(40),
            ),
        ];
        let sched = shared_schedule(&queries, ch, SimTime::ZERO);
        assert!(sched.all_feasible());
        // v fetched twice (stale for band 2), x and y once: 4 fetches.
        assert_eq!(sched.fetches.len(), 4);
        let v_fetches = sched
            .fetches
            .iter()
            .filter(|f| f.label.as_str() == "v")
            .count();
        assert_eq!(v_fetches, 2);
    }

    #[test]
    fn disjoint_queries_match_hierarchical() {
        let ch = Channel::mbps1();
        let queries = vec![
            SharedQuery::new(vec![item("a", 100, 60_000)], SimDuration::from_secs(10)),
            SharedQuery::new(vec![item("b", 200, 60_000)], SimDuration::from_secs(20)),
        ];
        let sched = shared_schedule(&queries, ch, SimTime::ZERO);
        let (no_reuse, feas) = no_reuse_cost(&queries, ch, SimTime::ZERO);
        assert!(sched.all_feasible());
        assert!(feas);
        assert_eq!(sched.total_cost, no_reuse);
        assert_eq!(sched.reuse_count(), 0);
    }

    #[test]
    fn reuse_can_rescue_deadlines() {
        let ch = Channel::mbps1();
        // Without reuse the second query's band starts too late to finish;
        // with reuse it needs nothing new and decides immediately.
        let big = item("big", 1000, 600_000); // 8 s transfer
        let queries = vec![
            SharedQuery::new(vec![big.clone()], SimDuration::from_secs(9)),
            SharedQuery::new(vec![big.clone()], SimDuration::from_secs(10)),
        ];
        let sched = shared_schedule(&queries, ch, SimTime::ZERO);
        assert!(sched.all_feasible());
        let (_, no_reuse_feasible) = no_reuse_cost(&queries, ch, SimTime::ZERO);
        assert!(!no_reuse_feasible, "without reuse the workload overloads");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Reuse never costs more than fetching everything per query, and
        /// the reported timeline is self-consistent (every fetched item's
        /// own freshness holds at its band's finish; reused items are fresh
        /// at the reusing band's finish).
        #[test]
        fn reuse_saves_and_is_consistent(
            pool in prop::collection::vec((50u64..300, 1000u64..60_000), 3..6),
            picks in prop::collection::vec(prop::collection::vec(0usize..6, 1..4), 1..4),
            deadlines in prop::collection::vec(5u64..60, 1..4),
        ) {
            let ch = Channel::mbps1();
            let pool_items: Vec<RetrievalItem> = pool.iter().enumerate()
                .map(|(i, (kb, v))| item(&format!("o{i}"), *kb, *v))
                .collect();
            let n = picks.len().min(deadlines.len());
            let queries: Vec<SharedQuery> = (0..n)
                .map(|qi| {
                    let mut items: Vec<RetrievalItem> = picks[qi].iter()
                        .map(|&k| pool_items[k % pool_items.len()].clone())
                        .collect();
                    items.dedup_by(|a, b| a.label == b.label);
                    SharedQuery::new(items, SimDuration::from_secs(deadlines[qi]))
                })
                .collect();
            let sched = shared_schedule(&queries, ch, SimTime::ZERO);
            let (no_reuse, _) = no_reuse_cost(&queries, ch, SimTime::ZERO);
            prop_assert!(sched.total_cost <= no_reuse);

            // Self-consistency: reconstruct each band's finish and verify.
            let mut last: BTreeMap<Label, (SimTime, SimDuration)> = BTreeMap::new();
            let mut order: Vec<usize> = (0..queries.len()).collect();
            order.sort_by_key(|&i| (queries[i].deadline, i));
            for &qi in &order {
                let outcome = &sched.per_query[qi];
                for f in sched.fetches.iter().filter(|f| f.for_query == qi) {
                    let it = queries[qi].items.iter()
                        .find(|i| i.label == f.label).expect("fetch belongs to query");
                    last.insert(f.label.clone(), (f.start, it.validity));
                    prop_assert!(f.start <= outcome.finish);
                }
                if outcome.feasible {
                    for it in &queries[qi].items {
                        let (t, v) = last.get(&it.label)
                            .copied()
                            .expect("feasible query has all items fetched");
                        prop_assert!(
                            t.saturating_add(v) >= outcome.finish,
                            "item {} stale at finish", it.label
                        );
                    }
                }
            }
        }

        /// With generous validities and deadlines, every duplicated label is
        /// fetched exactly once network-wide.
        #[test]
        fn full_overlap_fetches_once(
            labels in prop::collection::vec(0usize..4, 2..5),
        ) {
            let ch = Channel::mbps1();
            let mk = |k: usize| item(&format!("o{k}"), 100, 3_600_000);
            let queries: Vec<SharedQuery> = labels.iter()
                .map(|&k| SharedQuery::new(vec![mk(k)], SimDuration::from_secs(3600)))
                .collect();
            let sched = shared_schedule(&queries, ch, SimTime::ZERO);
            prop_assert!(sched.all_feasible());
            let mut distinct: Vec<usize> = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(sched.fetches.len(), distinct.len());
        }
    }
}

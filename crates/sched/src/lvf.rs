//! Least-Volatile-object-First scheduling (§IV-A).
//!
//! Prior work (\[1] in the paper) proves that for a single decision query
//! over a single channel, retrieving objects in order of *decreasing
//! validity interval* (longest first) is optimal: if any feasible retrieval
//! schedule exists, the LVF schedule is feasible. The exchange argument:
//! swapping an adjacent out-of-LVF pair never hurts — the later slot only
//! needs the *shorter*-lived object to survive the (identical) remaining
//! transfer time.

use crate::feasibility::{analyze, ScheduleAnalysis};
use crate::item::{Channel, RetrievalItem};
use dde_logic::time::{SimDuration, SimTime};

/// Returns the items reordered Least-Volatile-First (longest validity
/// first). Ties break by label for determinism.
pub fn lvf_order(items: &[RetrievalItem]) -> Vec<RetrievalItem> {
    let mut out = items.to_vec();
    sort_lvf(&mut out);
    out
}

/// Sorts `items` in place Least-Volatile-First.
pub fn sort_lvf(items: &mut [RetrievalItem]) {
    items.sort_by(|a, b| {
        b.validity
            .cmp(&a.validity)
            .then_with(|| a.label.cmp(&b.label))
    });
}

/// Schedules a single query with LVF and analyzes the result.
pub fn lvf_schedule(
    items: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> (Vec<RetrievalItem>, ScheduleAnalysis) {
    let order = lvf_order(items);
    let analysis = analyze(&order, channel, arrival, deadline);
    (order, analysis)
}

/// Whether *any* retrieval order of `items` is feasible. By the LVF
/// optimality theorem this reduces to checking the LVF order — no
/// permutation search required.
pub fn schedulable(
    items: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> bool {
    let (_, analysis) = lvf_schedule(items, channel, arrival, deadline);
    analysis.is_feasible()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use dde_logic::meta::Cost;
    use proptest::prelude::*;

    fn item(label: &str, kb: u64, validity_ms: u64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_millis(validity_ms),
        )
    }

    #[test]
    fn orders_longest_validity_first() {
        let items = vec![item("a", 1, 100), item("b", 1, 5000), item("c", 1, 600)];
        let order = lvf_order(&items);
        let labels: Vec<_> = order.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, vec!["b", "c", "a"]);
    }

    #[test]
    fn ties_break_by_label() {
        let items = vec![item("z", 1, 100), item("a", 1, 100)];
        let order = lvf_order(&items);
        assert_eq!(order[0].label.as_str(), "a");
    }

    #[test]
    fn lvf_rescues_volatile_items() {
        let ch = Channel::mbps1();
        // 125 KB each = 1 s. Volatile item (1.2 s validity) must go last.
        let items = vec![item("volatile", 125, 1200), item("stable", 125, 60_000)];
        // Worst order is infeasible:
        assert!(!is_feasible(
            &[items[0].clone(), items[1].clone()],
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
        // LVF is feasible:
        assert!(schedulable(
            &items,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
    }

    #[test]
    fn infeasible_when_no_order_works() {
        let ch = Channel::mbps1();
        // Two 1 s transfers but every validity < 1 s: even the last item's
        // data would be stale... actually last item finishes exactly as
        // sampled+1s; make validities 0.5 s so nothing works.
        let items = vec![item("a", 125, 500), item("b", 125, 500)];
        assert!(!schedulable(
            &items,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
    }

    fn permutations<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
        if v.is_empty() {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for i in 0..v.len() {
            let mut rest = v.to_vec();
            let x = rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x.clone());
                out.push(p);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The optimality theorem of [1]: if ANY permutation is feasible,
        /// the LVF order is feasible.
        #[test]
        fn lvf_feasible_whenever_any_order_is(
            costs in prop::collection::vec(1u64..300, 1..6),
            validities in prop::collection::vec(100u64..4000, 1..6),
            deadline_ms in 100u64..6000,
        ) {
            let n = costs.len().min(validities.len());
            let items: Vec<_> = (0..n)
                .map(|i| item(&format!("o{i}"), costs[i], validities[i]))
                .collect();
            let ch = Channel::mbps1();
            let deadline = SimDuration::from_millis(deadline_ms);
            let any_feasible = permutations(&items)
                .iter()
                .any(|p| is_feasible(p, ch, SimTime::ZERO, deadline));
            let lvf_feasible = schedulable(&items, ch, SimTime::ZERO, deadline);
            prop_assert_eq!(any_feasible, lvf_feasible);
        }

        /// LVF maximizes schedule slack over all permutations.
        #[test]
        fn lvf_maximizes_slack(
            costs in prop::collection::vec(1u64..200, 2..5),
            validities in prop::collection::vec(500u64..5000, 2..5),
        ) {
            let n = costs.len().min(validities.len());
            let items: Vec<_> = (0..n)
                .map(|i| item(&format!("o{i}"), costs[i], validities[i]))
                .collect();
            let ch = Channel::mbps1();
            let d = SimDuration::from_secs(3600);
            let (_, lvf) = lvf_schedule(&items, ch, SimTime::ZERO, d);
            let Some(lvf_slack) = lvf.slack() else { return Ok(()); };
            for p in permutations(&items) {
                let a = analyze(&p, ch, SimTime::ZERO, d);
                if let Some(s) = a.slack() {
                    prop_assert!(lvf_slack >= s,
                        "permutation had more slack than LVF: {s} > {lvf_slack}");
                }
            }
        }
    }
}

//! Human-readable rendering of retrieval plans.
//!
//! The decision-driven paradigm's pitch is that the *network* understands
//! why data is needed; `explain` makes that visible: it renders an
//! [`EvalPlan`] or [`DnfPlan`]
//! as an indented tree annotated with each step's truth probability,
//! expected cost, and short-circuit ratio — the quantities §III-A reasons
//! about.

use crate::shortcircuit::{and_truth_prob, expected_and_cost, DnfPlan};
use crate::tree::{EvalPlan, PlanNode};
use core::fmt::Write as _;

/// Renders an expression evaluation plan as an indented tree.
///
/// # Examples
///
/// ```
/// use dde_logic::meta::{ConditionMeta, Cost, MetaTable, Probability};
/// use dde_logic::label::Label;
/// use dde_logic::parse::parse_expr;
/// use dde_logic::time::SimDuration;
/// use dde_sched::tree::plan_expr;
/// use dde_sched::explain::explain_plan;
///
/// let expr = parse_expr("(a & b) | c")?;
/// let meta: MetaTable = [("a", 100u64, 0.9), ("b", 200, 0.8), ("c", 50, 0.3)]
///     .into_iter()
///     .map(|(l, c, p)| (
///         Label::new(l),
///         ConditionMeta::new(Cost::from_bytes(c), SimDuration::MAX)
///             .with_prob(Probability::clamped(p)),
///     ))
///     .collect();
/// let text = explain_plan(&plan_expr(&expr, &meta));
/// assert!(text.contains("OR"));
/// assert!(text.contains("fetch a"));
/// # Ok::<(), dde_logic::parse::ParseError>(())
/// ```
pub fn explain_plan(plan: &EvalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &EvalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match &plan.node {
        PlanNode::Const(b) => {
            let _ = writeln!(out, "{pad}const {b}");
        }
        PlanNode::Leaf { label, negated } => {
            let neg = if *negated { "!" } else { "" };
            let _ = writeln!(
                out,
                "{pad}fetch {neg}{label}  [P(true)={:.2}, E[cost]={:.0} B]",
                plan.prob_true, plan.expected_cost
            );
        }
        PlanNode::And(children) => {
            let _ = writeln!(
                out,
                "{pad}AND — stop at first false  [P={:.2}, E={:.0} B]",
                plan.prob_true, plan.expected_cost
            );
            for c in children {
                render(c, depth + 1, out);
            }
        }
        PlanNode::Or(children) => {
            let _ = writeln!(
                out,
                "{pad}OR — stop at first true  [P={:.2}, E={:.0} B]",
                plan.prob_true, plan.expected_cost
            );
            for c in children {
                render(c, depth + 1, out);
            }
        }
    }
}

/// One course of action's predicted quantities, in plan (evaluation) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermSummary {
    /// The term's index in the original DNF expression.
    pub term_idx: usize,
    /// Probability the term evaluates true (all conditions hold).
    pub prob_viable: f64,
    /// Expected short-circuited fetch cost of evaluating the term, bytes.
    pub expected_bytes: f64,
}

/// The machine-readable essence of a DNF retrieval plan: the §III-A
/// predicted expected cost the planner committed to, per term and overall.
/// Emitted on `plan` trace records so the `dde-obs` cost ledger can report
/// predicted-vs-actual cost per decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Courses of action in evaluation order.
    pub terms: Vec<TermSummary>,
    /// Expected total retrieval cost of the whole plan, in bytes.
    pub expected_bytes: f64,
}

impl PlanSummary {
    /// The predicted cost rounded to whole bytes (what trace records carry).
    pub fn expected_bytes_rounded(&self) -> u64 {
        if self.expected_bytes.is_finite() && self.expected_bytes > 0.0 {
            self.expected_bytes.round() as u64
        } else {
            0
        }
    }
}

/// Distills a DNF plan into its predicted quantities.
pub fn summarize_dnf_plan(plan: &DnfPlan) -> PlanSummary {
    let terms = plan
        .terms
        .iter()
        .map(|(term_idx, items)| TermSummary {
            term_idx: *term_idx,
            prob_viable: and_truth_prob(items),
            expected_bytes: expected_and_cost(items),
        })
        .collect();
    PlanSummary {
        terms,
        expected_bytes: plan.expected_cost(),
    }
}

/// Renders a DNF retrieval plan: the candidate courses of action in
/// evaluation order, each with its internally ordered fetches.
pub fn explain_dnf_plan(plan: &DnfPlan) -> String {
    let mut out = String::new();
    let mut reach = 1.0;
    for (rank, (term_idx, items)) in plan.terms.iter().enumerate() {
        let p = and_truth_prob(items);
        let e = expected_and_cost(items);
        let _ = writeln!(
            out,
            "{}. course of action #{term_idx}  [P(viable)={p:.2}, E[cost]={e:.0} B, \
             P(reached)={reach:.2}]",
            rank + 1,
        );
        for it in items {
            let _ = writeln!(
                out,
                "     fetch {}  [{} B, P(true)={:.2}, (1-p)/C={:.2e}]",
                it.label,
                it.cost.as_bytes(),
                it.prob_true.value(),
                it.and_shortcircuit_ratio(),
            );
        }
        reach *= 1.0 - p;
    }
    let _ = writeln!(out, "expected total: {:.0} B", plan.expected_cost());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcircuit::plan_dnf;
    use crate::tree::plan_expr;
    use dde_logic::dnf::{Dnf, Term};
    use dde_logic::label::Label;
    use dde_logic::meta::{ConditionMeta, Cost, MetaTable, Probability};
    use dde_logic::parse::parse_expr;
    use dde_logic::time::SimDuration;

    fn meta(entries: &[(&str, u64, f64)]) -> MetaTable {
        entries
            .iter()
            .map(|(l, bytes, p)| {
                (
                    Label::new(*l),
                    ConditionMeta::new(Cost::from_bytes(*bytes), SimDuration::MAX)
                        .with_prob(Probability::clamped(*p)),
                )
            })
            .collect()
    }

    #[test]
    fn tree_explanation_shows_structure_and_order() {
        let e = parse_expr("(a & b) | !c").unwrap();
        let m = meta(&[("a", 100, 0.9), ("b", 300, 0.5), ("c", 50, 0.8)]);
        let text = explain_plan(&plan_expr(&e, &m));
        assert!(text.contains("OR — stop at first true"));
        assert!(text.contains("AND — stop at first false"));
        assert!(text.contains("fetch !c"));
        // Indentation: leaves are deeper than their connective.
        let or_line = text.lines().position(|l| l.contains("OR")).unwrap();
        let leaf_line = text.lines().position(|l| l.contains("fetch !c")).unwrap();
        assert!(leaf_line > or_line);
    }

    #[test]
    fn dnf_explanation_lists_courses_in_plan_order() {
        let q = Dnf::from_terms(vec![Term::all_of(["x1", "x2"]), Term::all_of(["y1"])]);
        let m = meta(&[
            ("x1", 500_000, 0.2),
            ("x2", 500_000, 0.2),
            ("y1", 100_000, 0.9),
        ]);
        let plan = plan_dnf(&q, &m);
        let text = explain_dnf_plan(&plan);
        // The cheap likely term is ranked first.
        let first = text.lines().next().unwrap();
        assert!(first.contains("course of action #1"), "{first}");
        assert!(text.contains("expected total"));
        assert!(text.contains("fetch y1"));
    }

    #[test]
    fn plan_summary_matches_the_rendered_totals() {
        let q = Dnf::from_terms(vec![Term::all_of(["x1", "x2"]), Term::all_of(["y1"])]);
        let m = meta(&[
            ("x1", 500_000, 0.2),
            ("x2", 500_000, 0.2),
            ("y1", 100_000, 0.9),
        ]);
        let plan = plan_dnf(&q, &m);
        let summary = summarize_dnf_plan(&plan);
        assert_eq!(summary.terms.len(), 2);
        assert!((summary.expected_bytes - plan.expected_cost()).abs() < 1e-9);
        assert_eq!(
            summary.expected_bytes_rounded(),
            plan.expected_cost().round() as u64
        );
        // Plan order: the cheap likely term first, so the first summary
        // entry is the y-term with its own expected cost.
        assert_eq!(summary.terms[0].term_idx, 1);
        assert!(summary.terms[0].prob_viable > 0.8);
    }

    #[test]
    fn const_nodes_render() {
        let e = parse_expr("true & a").unwrap();
        let m = meta(&[("a", 10, 0.5)]);
        let text = explain_plan(&plan_expr(&e, &m));
        assert!(text.contains("const true"));
    }
}

//! The validity-constrained short-circuit greedy of ref \[3] (§III-A).
//!
//! "A greedy algorithm has been proposed, where all data object requests are
//! first ordered according to their validity intervals (longest first) to
//! meet data expiration constraints, then rearrangements are incrementally
//! added, according to objects' short-circuiting probabilities per unit
//! cost, to reduce the total expected retrieval cost."
//!
//! The implementation is a position-by-position greedy: at each slot, pick
//! the remaining item with the best short-circuit ratio `(1 − p)/C` *whose
//! placement still admits a feasible completion* (checked by appending the
//! remainder in LVF order — sound and complete by the LVF optimality
//! theorem). When no item admits a feasible completion (the instance is
//! unschedulable anyway), fall back to pure LVF.

use crate::feasibility::analyze;
use crate::item::{Channel, RetrievalItem};
use crate::lvf::sort_lvf;
use dde_logic::time::{SimDuration, SimTime};

/// Orders a conjunction's items to minimize expected retrieval cost subject
/// to freshness and deadline feasibility. See the module docs.
pub fn greedy_validity_shortcircuit(
    items: &[RetrievalItem],
    channel: Channel,
    arrival: SimTime,
    deadline: SimDuration,
) -> Vec<RetrievalItem> {
    let mut remaining: Vec<RetrievalItem> = items.to_vec();
    // Deterministic scan order: best ratio first, ties by label.
    remaining.sort_by(|a, b| {
        b.and_shortcircuit_ratio()
            .total_cmp(&a.and_shortcircuit_ratio())
            .then_with(|| a.label.cmp(&b.label))
    });

    let mut chosen: Vec<RetrievalItem> = Vec::with_capacity(items.len());
    while !remaining.is_empty() {
        let mut picked = None;
        for idx in 0..remaining.len() {
            // Tentatively place remaining[idx] next, then complete with LVF.
            let mut candidate = chosen.clone();
            candidate.push(remaining[idx].clone());
            let mut rest: Vec<RetrievalItem> = remaining
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != idx)
                .map(|(_, it)| it.clone())
                .collect();
            sort_lvf(&mut rest);
            candidate.extend(rest);
            if analyze(&candidate, channel, arrival, deadline).is_feasible() {
                picked = Some(idx);
                break;
            }
        }
        match picked {
            Some(idx) => chosen.push(remaining.remove(idx)),
            None => {
                // Unschedulable: emit the LVF completion (least bad).
                sort_lvf(&mut remaining);
                chosen.append(&mut remaining);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use crate::lvf::{lvf_order, schedulable};
    use crate::shortcircuit::{expected_and_cost, optimal_and_order};
    use dde_logic::meta::{Cost, Probability};
    use proptest::prelude::*;

    fn item(label: &str, kb: u64, validity_ms: u64, p: f64) -> RetrievalItem {
        RetrievalItem::new(
            label,
            Cost::from_bytes(kb * 1000),
            SimDuration::from_millis(validity_ms),
        )
        .with_prob(Probability::new(p).unwrap())
    }

    #[test]
    fn unconstrained_equals_pure_shortcircuit_order() {
        // Huge validities: freshness never binds.
        let items = vec![
            item("a", 100, 1_000_000, 0.9),
            item("b", 50, 1_000_000, 0.1),
            item("c", 75, 1_000_000, 0.5),
        ];
        let hybrid = greedy_validity_shortcircuit(
            &items,
            Channel::mbps1(),
            SimTime::ZERO,
            SimDuration::from_secs(3600),
        );
        let pure = optimal_and_order(&items);
        let h: Vec<_> = hybrid.iter().map(|i| i.label.as_str()).collect();
        let p: Vec<_> = pure.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(h, p);
    }

    #[test]
    fn tight_validities_force_lvf_positions() {
        let ch = Channel::mbps1();
        // "volatile" has the best short-circuit ratio but must go last or
        // its data expires: 2 items of 1 s each; volatile validity 1.5 s.
        let items = vec![
            item("volatile", 125, 1500, 0.0),
            item("stable", 125, 60_000, 0.99),
        ];
        let order =
            greedy_validity_shortcircuit(&items, ch, SimTime::ZERO, SimDuration::from_secs(60));
        let labels: Vec<_> = order.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, vec!["stable", "volatile"]);
        assert!(is_feasible(
            &order,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
    }

    #[test]
    fn unschedulable_falls_back_to_lvf() {
        let ch = Channel::mbps1();
        let items = vec![item("a", 125, 100, 0.5), item("b", 125, 100, 0.5)];
        assert!(!schedulable(
            &items,
            ch,
            SimTime::ZERO,
            SimDuration::from_secs(60)
        ));
        let order =
            greedy_validity_shortcircuit(&items, ch, SimTime::ZERO, SimDuration::from_secs(60));
        let lvf = lvf_order(&items);
        let o: Vec<_> = order.iter().map(|i| i.label.as_str()).collect();
        let l: Vec<_> = lvf.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(o, l);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The hybrid order is feasible whenever the instance is schedulable.
        #[test]
        fn hybrid_preserves_feasibility(
            specs in prop::collection::vec((1u64..200, 300u64..5000, 0.0f64..=1.0), 1..6),
            deadline_ms in 500u64..8000,
        ) {
            let items: Vec<_> = specs.iter().enumerate()
                .map(|(i, (kb, v, p))| item(&format!("o{i}"), *kb, *v, *p))
                .collect();
            let ch = Channel::mbps1();
            let d = SimDuration::from_millis(deadline_ms);
            let order = greedy_validity_shortcircuit(&items, ch, SimTime::ZERO, d);
            // Same multiset of items.
            prop_assert_eq!(order.len(), items.len());
            if schedulable(&items, ch, SimTime::ZERO, d) {
                prop_assert!(is_feasible(&order, ch, SimTime::ZERO, d));
            }
        }

        /// Never worse in expected cost than plain LVF when both feasible.
        #[test]
        fn hybrid_no_worse_than_lvf(
            specs in prop::collection::vec((1u64..200, 1000u64..8000, 0.0f64..=1.0), 1..6),
        ) {
            let items: Vec<_> = specs.iter().enumerate()
                .map(|(i, (kb, v, p))| item(&format!("o{i}"), *kb, *v, *p))
                .collect();
            let ch = Channel::mbps1();
            let d = SimDuration::from_secs(3600);
            let hybrid = greedy_validity_shortcircuit(&items, ch, SimTime::ZERO, d);
            let lvf = lvf_order(&items);
            if is_feasible(&lvf, ch, SimTime::ZERO, d) {
                prop_assert!(
                    expected_and_cost(&hybrid) <= expected_and_cost(&lvf) + 1e-6
                );
            }
        }
    }
}

//! Weighted set cover for source selection (§III-B).
//!
//! "It is desired to cover all evidence needed for making the decision using
//! the least-cost subset of sources." A source (e.g. a roadside camera)
//! covers the subset of predicates its evidence can resolve — a single
//! picture may cover several nearby road segments — at a retrieval cost.
//!
//! [`greedy_cover`] is the classic `H_n`-approximate greedy; [`exact_cover`]
//! is a branch-and-bound solver for validation on small instances.

use dde_logic::label::Label;
use dde_logic::meta::Cost;
use std::collections::{BTreeMap, BTreeSet};

/// A candidate evidence source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Source<Id> {
    /// Caller's identifier for the source (e.g. a node id or object name).
    pub id: Id,
    /// Labels this source's evidence can resolve.
    pub covers: BTreeSet<Label>,
    /// Cost of retrieving this source's evidence.
    pub cost: Cost,
}

impl<Id> Source<Id> {
    /// Creates a source covering `covers` at `cost`.
    pub fn new<I, S>(id: Id, covers: I, cost: Cost) -> Source<Id>
    where
        I: IntoIterator<Item = S>,
        S: Into<Label>,
    {
        Source {
            id,
            covers: covers.into_iter().map(Into::into).collect(),
            cost,
        }
    }
}

/// The outcome of a cover computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// Indices (into the input source slice) of the chosen sources, in
    /// selection order.
    pub chosen: Vec<usize>,
    /// Total cost of the chosen sources.
    pub cost: Cost,
    /// Labels that no source could cover.
    pub uncovered: BTreeSet<Label>,
}

impl Cover {
    /// Whether every requested label was covered.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }
}

/// Greedy weighted set cover: repeatedly picks the source with the lowest
/// cost per newly-covered label. Achieves the classic `H_n ≈ ln n`
/// approximation ratio; ties break by source index for determinism.
///
/// Labels in `needed` that no source covers are reported in
/// [`Cover::uncovered`] rather than failing the whole computation — a
/// decision query may still resolve without them via short-circuiting.
pub fn greedy_cover<Id>(needed: &BTreeSet<Label>, sources: &[Source<Id>]) -> Cover {
    let coverable: BTreeSet<Label> = sources
        .iter()
        .flat_map(|s| s.covers.iter())
        .filter(|l| needed.contains(*l))
        .cloned()
        .collect();
    let uncovered_forever: BTreeSet<Label> = needed.difference(&coverable).cloned().collect();

    let mut remaining: BTreeSet<Label> = coverable;
    let mut chosen = Vec::new();
    let mut used = vec![false; sources.len()];
    let mut total = Cost::ZERO;

    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None; // (idx, gain, cost-per-gain)
        for (i, s) in sources.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = s.covers.intersection(&remaining).count();
            if gain == 0 {
                continue;
            }
            let ratio = s.cost.as_f64() / gain as f64;
            let better = match best {
                None => true,
                Some((_, _, best_ratio)) => ratio < best_ratio - 1e-12,
            };
            if better {
                best = Some((i, gain, ratio));
            }
        }
        let Some((i, _, _)) = best else { break };
        used[i] = true;
        chosen.push(i);
        total = total.saturating_add(sources[i].cost);
        for l in &sources[i].covers {
            remaining.remove(l);
        }
    }

    Cover {
        chosen,
        cost: total,
        uncovered: uncovered_forever,
    }
}

/// Exact minimum-cost cover by branch and bound.
///
/// Intended for validation and the aggregation-price ablation; exponential
/// in the worst case.
///
/// # Panics
///
/// Panics if `sources.len() > 24`.
pub fn exact_cover<Id>(needed: &BTreeSet<Label>, sources: &[Source<Id>]) -> Cover {
    assert!(sources.len() <= 24, "exact cover capped at 24 sources");

    // Restrict attention to coverable labels, as in greedy_cover.
    let coverable: BTreeSet<Label> = sources
        .iter()
        .flat_map(|s| s.covers.iter())
        .filter(|l| needed.contains(*l))
        .cloned()
        .collect();
    let uncovered_forever: BTreeSet<Label> = needed.difference(&coverable).cloned().collect();

    // Bitmask over coverable labels.
    let label_ids: BTreeMap<&Label, u32> = coverable
        .iter()
        .enumerate()
        .map(|(i, l)| (l, i as u32))
        .collect();
    let full: u64 = if coverable.is_empty() {
        0
    } else {
        (1u64 << coverable.len()) - 1
    };
    let masks: Vec<u64> = sources
        .iter()
        .map(|s| {
            s.covers
                .iter()
                .filter_map(|l| label_ids.get(l))
                .fold(0u64, |m, &b| m | (1 << b))
        })
        .collect();

    let mut best_cost = u64::MAX;
    let mut best_set: Vec<usize> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn search_fixed(
        idx: usize,
        covered: u64,
        cost: u64,
        picked: &mut Vec<usize>,
        masks: &[u64],
        costs: &[u64],
        full: u64,
        best_cost: &mut u64,
        best_set: &mut Vec<usize>,
    ) {
        if covered == full {
            if cost < *best_cost {
                *best_cost = cost;
                *best_set = picked.clone();
            }
            return;
        }
        if idx == masks.len() || cost >= *best_cost {
            return;
        }
        let mut reachable = covered;
        for m in &masks[idx..] {
            reachable |= m;
        }
        if reachable != full {
            return;
        }
        if masks[idx] & !covered != 0 {
            picked.push(idx);
            search_fixed(
                idx + 1,
                covered | masks[idx],
                cost.saturating_add(costs[idx]),
                picked,
                masks,
                costs,
                full,
                best_cost,
                best_set,
            );
            picked.pop();
        }
        search_fixed(
            idx + 1,
            covered,
            cost,
            picked,
            masks,
            costs,
            full,
            best_cost,
            best_set,
        );
    }
    let costs: Vec<u64> = sources.iter().map(|s| s.cost.as_bytes()).collect();
    search_fixed(
        0,
        0,
        0,
        &mut Vec::new(),
        &masks,
        &costs,
        full,
        &mut best_cost,
        &mut best_set,
    );

    Cover {
        chosen: best_set.clone(),
        cost: best_set.iter().map(|&i| sources[i].cost).sum(),
        uncovered: uncovered_forever,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn labels<const N: usize>(names: [&str; N]) -> BTreeSet<Label> {
        names.iter().map(Label::new).collect()
    }

    fn src(id: usize, covers: &[&str], cost: u64) -> Source<usize> {
        Source::new(id, covers.iter().copied(), Cost::from_bytes(cost))
    }

    #[test]
    fn single_source_covers_all() {
        let needed = labels(["a", "b"]);
        let sources = vec![src(0, &["a", "b"], 10)];
        let c = greedy_cover(&needed, &sources);
        assert_eq!(c.chosen, vec![0]);
        assert_eq!(c.cost, Cost::from_bytes(10));
        assert!(c.is_complete());
    }

    #[test]
    fn greedy_prefers_cost_per_label() {
        // One camera sees both segments for 12; two cameras see one each
        // for 5 apiece. Greedy ratio: 12/2 = 6 > 5 → picks the singles.
        let needed = labels(["segA", "segB"]);
        let sources = vec![
            src(0, &["segA", "segB"], 12),
            src(1, &["segA"], 5),
            src(2, &["segB"], 5),
        ];
        let c = greedy_cover(&needed, &sources);
        assert_eq!(c.cost, Cost::from_bytes(10));
        assert_eq!(c.chosen.len(), 2);
    }

    #[test]
    fn overlapping_camera_consolidation() {
        // The paper's example: two cameras overlap one road segment — pick
        // one; different roads need both.
        let needed = labels(["road1", "road2"]);
        let sources = vec![
            src(0, &["road1"], 100), // camera A on road1
            src(1, &["road1"], 90),  // camera B also on road1, cheaper
            src(2, &["road2"], 80),
        ];
        let c = greedy_cover(&needed, &sources);
        assert!(c.is_complete());
        assert_eq!(c.cost, Cost::from_bytes(170));
        assert!(c.chosen.contains(&1) && c.chosen.contains(&2));
    }

    #[test]
    fn uncoverable_labels_reported() {
        let needed = labels(["a", "ghost"]);
        let sources = vec![src(0, &["a"], 1)];
        let c = greedy_cover(&needed, &sources);
        assert!(!c.is_complete());
        assert_eq!(c.uncovered, labels(["ghost"]));
        assert_eq!(c.chosen, vec![0]);
    }

    #[test]
    fn empty_need_is_trivial() {
        let c = greedy_cover(&BTreeSet::new(), &[src(0, &["a"], 1)]);
        assert!(c.chosen.is_empty());
        assert_eq!(c.cost, Cost::ZERO);
        assert!(c.is_complete());
    }

    #[test]
    fn greedy_known_suboptimal_case() {
        // Classic instance where greedy loses: optimum picks {big} at 10,
        // greedy picks cheap-per-element singles first.
        let needed = labels(["x", "y", "z", "w"]);
        let sources = vec![
            src(0, &["x", "y", "z", "w"], 13),
            src(1, &["x", "y"], 6), // ratio 3
            src(2, &["z", "w"], 6), // ratio 3
        ];
        let greedy = greedy_cover(&needed, &sources);
        let exact = exact_cover(&needed, &sources);
        assert_eq!(greedy.cost, Cost::from_bytes(12));
        assert_eq!(exact.cost, Cost::from_bytes(12)); // exact also prefers 12 here
                                                      // Make greedy actually lose:
        let sources2 = vec![
            src(0, &["x", "y", "z", "w"], 10),
            src(1, &["x", "y", "z"], 6), // ratio 2 < 2.5 → greedy takes it
            src(2, &["w"], 6),
        ];
        let g2 = greedy_cover(&needed, &sources2);
        let e2 = exact_cover(&needed, &sources2);
        assert_eq!(g2.cost, Cost::from_bytes(12));
        assert_eq!(e2.cost, Cost::from_bytes(10));
    }

    #[test]
    fn exact_on_empty_sources() {
        let needed = labels(["a"]);
        let c = exact_cover(&needed, &Vec::<Source<usize>>::new());
        assert!(!c.is_complete());
        assert_eq!(c.uncovered, labels(["a"]));
        assert!(c.chosen.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Greedy always produces a complete cover of the coverable labels,
        /// never exceeds H_n times the exact optimum, and never chooses a
        /// redundant source contributing nothing.
        #[test]
        fn greedy_vs_exact(
            source_specs in prop::collection::vec(
                (prop::collection::btree_set(0u8..6, 1..4), 1u64..50), 1..8),
            needed_bits in prop::collection::btree_set(0u8..6, 1..6),
        ) {
            let needed: BTreeSet<Label> =
                needed_bits.iter().map(|b| Label::new(format!("l{b}"))).collect();
            let sources: Vec<Source<usize>> = source_specs.iter().enumerate()
                .map(|(i, (cov, cost))| Source::new(
                    i,
                    cov.iter().map(|b| format!("l{b}")),
                    Cost::from_bytes(*cost),
                ))
                .collect();
            let g = greedy_cover(&needed, &sources);
            let e = exact_cover(&needed, &sources);
            // Same uncoverable set.
            prop_assert_eq!(&g.uncovered, &e.uncovered);
            // Both cover everything coverable: verify explicitly.
            let coverable: BTreeSet<Label> =
                needed.difference(&g.uncovered).cloned().collect();
            let covered_by = |c: &Cover| -> BTreeSet<Label> {
                c.chosen.iter()
                    .flat_map(|&i| sources[i].covers.iter().cloned())
                    .filter(|l| needed.contains(l))
                    .collect()
            };
            prop_assert!(covered_by(&g).is_superset(&coverable));
            prop_assert!(covered_by(&e).is_superset(&coverable));
            // Approximation bound: greedy ≤ H_n · OPT.
            let n = coverable.len().max(1);
            let h_n: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
            prop_assert!(
                g.cost.as_f64() <= e.cost.as_f64() * h_n + 1e-9,
                "greedy {} > H_n * exact {}", g.cost, e.cost
            );
        }
    }
}

//! The price of incorrectly aggregating coverage values (ref \[10], §III-B).
//!
//! When sources advertise only an *aggregate* coverage value (e.g. "I cover
//! 3 segments") instead of the exact label set, a selector that optimizes
//! against the aggregates can pick sources whose coverages overlap, paying
//! more than necessary — or believing it covered everything when it did not.
//! This module implements the aggregate-information selector and a
//! comparator quantifying that price, used by the ablation benches.

use crate::setcover::{greedy_cover, Cover, Source};
use dde_logic::label::Label;
use dde_logic::meta::Cost;
use std::collections::BTreeSet;

/// Selects sources knowing only each source's *count* of covered labels
/// (its aggregate coverage value), greedily by cost per advertised label,
/// until the advertised counts sum to at least the number of needed labels.
///
/// This mimics a selector that trusts aggregate advertisements. The chosen
/// set is then evaluated against the true coverage sets.
pub fn aggregate_select<Id>(needed: &BTreeSet<Label>, sources: &[Source<Id>]) -> Cover {
    let mut order: Vec<usize> = (0..sources.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = ratio(&sources[a]);
        let rb = ratio(&sources[b]);
        ra.total_cmp(&rb).then(a.cmp(&b))
    });

    let mut chosen = Vec::new();
    let mut claimed = 0usize;
    let mut cost = Cost::ZERO;
    for i in order {
        if claimed >= needed.len() {
            break;
        }
        if sources[i].covers.is_empty() {
            continue;
        }
        chosen.push(i);
        claimed += sources[i].covers.len();
        cost = cost.saturating_add(sources[i].cost);
    }

    // Ground truth: what did the chosen set actually cover?
    let covered: BTreeSet<Label> = chosen
        .iter()
        .flat_map(|&i| sources[i].covers.iter().cloned())
        .collect();
    let uncovered = needed.difference(&covered).cloned().collect();
    Cover {
        chosen,
        cost,
        uncovered,
    }
}

fn ratio<Id>(s: &Source<Id>) -> f64 {
    if s.covers.is_empty() {
        f64::INFINITY
    } else {
        s.cost.as_f64() / s.covers.len() as f64
    }
}

/// The outcome of comparing set-aware selection against aggregate selection
/// on the same instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationPrice {
    /// Cost of the set-aware greedy cover.
    pub set_aware_cost: Cost,
    /// Cost of the aggregate-information selection.
    pub aggregate_cost: Cost,
    /// Labels the aggregate selection *believed* covered but did not.
    pub aggregate_misses: usize,
    /// `aggregate_cost / set_aware_cost` (∞ represented as f64::INFINITY
    /// when the set-aware cost is zero and aggregate is not).
    pub cost_ratio: f64,
}

/// Quantifies the price of aggregation on one instance.
pub fn aggregation_price<Id>(needed: &BTreeSet<Label>, sources: &[Source<Id>]) -> AggregationPrice {
    let set_aware = greedy_cover(needed, sources);
    let aggregate = aggregate_select(needed, sources);
    let misses = aggregate.uncovered.difference(&set_aware.uncovered).count();
    let ratio = if set_aware.cost.as_bytes() == 0 {
        if aggregate.cost.as_bytes() == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        aggregate.cost.as_f64() / set_aware.cost.as_f64()
    };
    AggregationPrice {
        set_aware_cost: set_aware.cost,
        aggregate_cost: aggregate.cost,
        aggregate_misses: misses,
        cost_ratio: ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> BTreeSet<Label> {
        names.iter().map(|s| Label::new(*s)).collect()
    }

    fn src(id: usize, covers: &[&str], cost: u64) -> Source<usize> {
        Source::new(id, covers.iter().copied(), Cost::from_bytes(cost))
    }

    #[test]
    fn overlapping_sources_fool_aggregate_selector() {
        // Both cheap sources cover the SAME two labels; aggregate counts
        // (2 + 2 ≥ 3) make the selector stop early, missing label c.
        let needed = labels(&["a", "b", "c"]);
        let sources = vec![
            src(0, &["a", "b"], 4),
            src(1, &["a", "b"], 4),
            src(2, &["c"], 10),
        ];
        let agg = aggregate_select(&needed, &sources);
        assert_eq!(agg.chosen, vec![0, 1]);
        assert_eq!(agg.uncovered, labels(&["c"]));
        // The set-aware greedy covers everything.
        let cover = greedy_cover(&needed, &sources);
        assert!(cover.is_complete());
        let price = aggregation_price(&needed, &sources);
        assert_eq!(price.aggregate_misses, 1);
    }

    #[test]
    fn disjoint_sources_have_no_price() {
        let needed = labels(&["a", "b"]);
        let sources = vec![src(0, &["a"], 5), src(1, &["b"], 5)];
        let price = aggregation_price(&needed, &sources);
        assert_eq!(price.aggregate_misses, 0);
        assert_eq!(price.set_aware_cost, price.aggregate_cost);
        assert!((price.cost_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_need_costs_nothing() {
        let price = aggregation_price(&BTreeSet::new(), &[src(0, &["a"], 3)]);
        assert_eq!(price.set_aware_cost, Cost::ZERO);
        assert_eq!(price.aggregate_cost, Cost::ZERO);
        assert!((price.cost_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_coverage_sources_skipped() {
        let needed = labels(&["a"]);
        let sources = vec![src(0, &[], 1), src(1, &["a"], 2)];
        let agg = aggregate_select(&needed, &sources);
        assert_eq!(agg.chosen, vec![1]);
        assert!(agg.is_complete());
    }
}

//! # dde-coverage — source selection for decision queries
//!
//! §III-B of the paper: "to determine the most appropriate sources to
//! retrieve evidence from, one must solve a source selection problem. This
//! problem can be cast as one of coverage."
//!
//! - [`setcover`] — weighted set cover: the `H_n`-approximate greedy used by
//!   Athena's `slt`/`lcf`/`lvf` retrieval schemes, plus an exact
//!   branch-and-bound solver for validation;
//! - [`aggregation`] — the "price of incorrectly aggregating coverage
//!   values" (ref \[10]): what selection loses when sources advertise only
//!   aggregate counts instead of exact label sets.
//!
//! # Example
//!
//! ```
//! use dde_coverage::prelude::*;
//! use dde_logic::prelude::*;
//! use std::collections::BTreeSet;
//!
//! // Two cameras overlap on segment B; cover all three segments cheaply.
//! let needed: BTreeSet<Label> =
//!     ["segA", "segB", "segC"].iter().map(|s| Label::new(s)).collect();
//! let sources = vec![
//!     Source::new("cam1", ["segA", "segB"], Cost::from_bytes(300_000)),
//!     Source::new("cam2", ["segB", "segC"], Cost::from_bytes(300_000)),
//!     Source::new("cam3", ["segB"], Cost::from_bytes(250_000)),
//! ];
//! let cover = greedy_cover(&needed, &sources);
//! assert!(cover.is_complete());
//! assert_eq!(cover.chosen.len(), 2); // cam1 + cam2; cam3 is redundant
//! ```

#![warn(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod aggregation;
pub mod setcover;

pub use aggregation::{aggregate_select, aggregation_price, AggregationPrice};
pub use setcover::{exact_cover, greedy_cover, Cover, Source};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::aggregation::{aggregate_select, aggregation_price, AggregationPrice};
    pub use crate::setcover::{exact_cover, greedy_cover, Cover, Source};
}

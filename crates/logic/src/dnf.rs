//! Disjunctive-normal-form decision queries.
//!
//! The paper's workload model (§III): a query
//! `q = (b00 ∧ b01 ∧ …) ∨ (b10 ∧ b11 ∧ …) ∨ …` where each disjunct is an
//! alternative *course of action* and each conjunct a Boolean condition. The
//! query is resolved when a single viable course of action is found (all of
//! one term's conditions true) or when every course of action has been ruled
//! out (each term contains a false condition).

use crate::label::{Assignment, Label};
use crate::time::SimTime;
use crate::truth::Truth;
use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

/// A possibly-negated reference to a label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    label: Label,
    negated: bool,
}

impl Literal {
    /// A positive literal (`label` must be true).
    pub fn positive(label: Label) -> Literal {
        Literal {
            label,
            negated: false,
        }
    }

    /// A negative literal (`label` must be false).
    pub fn negative(label: Label) -> Literal {
        Literal {
            label,
            negated: true,
        }
    }

    /// The referenced label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// Whether the literal is negated.
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// The literal's truth given the label's truth.
    pub fn eval(&self, label_value: Truth) -> Truth {
        if self.negated {
            label_value.negate()
        } else {
            label_value
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "!{}", self.label)
        } else {
            write!(f, "{}", self.label)
        }
    }
}

/// A conjunction of literals — one alternative course of action.
///
/// Internally deduplicated: each label appears at most once. Contradictory
/// conjunctions (`a ∧ !a`) cannot be represented; [`Term::conjoin`] reports
/// them by returning `None`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Term {
    // label -> negated?
    literals: BTreeMap<Label, bool>,
}

impl Term {
    /// The empty conjunction (constant true).
    pub fn empty() -> Term {
        Term::default()
    }

    /// Builds a term from literals.
    ///
    /// Duplicate literals collapse; a contradictory pair (`a` and `!a`) makes
    /// the whole term unsatisfiable, which is represented by... nothing: use
    /// [`Term::try_from_literals`] when contradiction is possible.
    ///
    /// # Panics
    ///
    /// Panics if the literals are contradictory.
    pub fn from_literals(literals: Vec<Literal>) -> Term {
        Term::try_from_literals(literals).expect("contradictory term") // lint: allow(panic) — documented panicking constructor; try_from_literals is the fallible path
    }

    /// Builds a term from literals, returning `None` when they contradict.
    pub fn try_from_literals(literals: Vec<Literal>) -> Option<Term> {
        let mut map = BTreeMap::new();
        for lit in literals {
            if let Some(prev) = map.insert(lit.label.clone(), lit.negated) {
                if prev != lit.negated {
                    return None;
                }
            }
        }
        Some(Term { literals: map })
    }

    /// A term of positive literals over the given label names — the common
    /// case for the paper's route queries.
    ///
    /// # Examples
    ///
    /// ```
    /// use dde_logic::dnf::Term;
    ///
    /// let t = Term::all_of(["viableA", "viableB", "viableC"]);
    /// assert_eq!(t.literals().count(), 3);
    /// ```
    pub fn all_of<I, S>(labels: I) -> Term
    where
        I: IntoIterator<Item = S>,
        S: Into<Label>,
    {
        Term {
            literals: labels.into_iter().map(|l| (l.into(), false)).collect(),
        }
    }

    /// Iterates over the literals in label order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        self.literals.iter().map(|(label, &negated)| Literal {
            label: label.clone(),
            negated,
        })
    }

    /// The labels mentioned by this term.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.literals.keys()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether this is the empty (constant-true) term.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the term contains a literal over `label`.
    pub fn contains(&self, label: &Label) -> bool {
        self.literals.contains_key(label)
    }

    /// Conjoins two terms; `None` if the result would be contradictory.
    pub fn conjoin(&self, other: &Term) -> Option<Term> {
        let mut merged = self.literals.clone();
        for (label, &negated) in &other.literals {
            if let Some(&prev) = merged.get(label) {
                if prev != negated {
                    return None;
                }
            } else {
                merged.insert(label.clone(), negated);
            }
        }
        Some(Term { literals: merged })
    }

    /// Whether `self` subsumes `other` (every literal of `self` appears in
    /// `other`, so `other ⟹ self`).
    pub fn subsumes(&self, other: &Term) -> bool {
        self.literals
            .iter()
            .all(|(l, n)| other.literals.get(l) == Some(n))
    }

    /// Kleene evaluation of the conjunction under `asg` at `now`.
    pub fn eval_at(&self, asg: &Assignment, now: SimTime) -> Truth {
        let mut acc = Truth::True;
        for (label, &negated) in &self.literals {
            let v = asg.value_at(label, now);
            let lit = if negated { v.negate() } else { v };
            acc = acc.and(lit);
            if acc == Truth::False {
                break;
            }
        }
        acc
    }

    /// Labels of this term that are still unknown under `asg` at `now`.
    pub fn unknown_labels(&self, asg: &Assignment, now: SimTime) -> Vec<Label> {
        self.literals
            .keys()
            .filter(|l| !asg.value_at(l, now).is_known())
            .cloned()
            .collect()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "true");
        }
        write!(f, "(")?;
        for (i, lit) in self.literals().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ")")
    }
}

/// The outcome of checking a query against the current assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Some course of action is fully satisfied; the payload is the index of
    /// the first viable term.
    Viable(usize),
    /// Every course of action contains a false condition: no viable action.
    Infeasible,
    /// Not yet decided; more evidence is needed.
    Undecided,
}

impl Resolution {
    /// Whether the query has been decided either way.
    pub fn is_decided(self) -> bool {
        !matches!(self, Resolution::Undecided)
    }
}

/// A decision query in disjunctive normal form.
///
/// # Examples
///
/// ```
/// use dde_logic::dnf::{Dnf, Term};
///
/// // The paper's route-finding example:
/// // (viableA & viableB & viableC) | (viableD & viableE & viableF)
/// let q = Dnf::from_terms(vec![
///     Term::all_of(["viableA", "viableB", "viableC"]),
///     Term::all_of(["viableD", "viableE", "viableF"]),
/// ]);
/// assert_eq!(q.terms().len(), 2);
/// assert_eq!(q.labels().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf {
    terms: Vec<Term>,
}

impl Dnf {
    /// Builds a query from alternative courses of action.
    ///
    /// Exact duplicate terms are removed (keeping first occurrences); term
    /// order is otherwise preserved, since the engine reports the *first*
    /// viable term.
    pub fn from_terms(terms: Vec<Term>) -> Dnf {
        let mut seen = BTreeSet::new();
        let terms = terms
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect();
        Dnf { terms }
    }

    /// The constant-false query (no alternatives).
    pub fn unsatisfiable() -> Dnf {
        Dnf { terms: Vec::new() }
    }

    /// The alternative courses of action.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// All distinct labels across all terms.
    pub fn labels(&self) -> BTreeSet<Label> {
        self.terms
            .iter()
            .flat_map(|t| t.labels().cloned())
            .collect()
    }

    /// Removes terms subsumed by another term (absorption: `a ∨ (a ∧ b) = a`).
    #[must_use]
    pub fn absorbed(&self) -> Dnf {
        let mut kept: Vec<Term> = Vec::new();
        for t in &self.terms {
            if kept.iter().any(|k| k.subsumes(t)) {
                continue;
            }
            kept.retain(|k| !t.subsumes(k));
            kept.push(t.clone());
        }
        Dnf { terms: kept }
    }

    /// Kleene evaluation under `asg` at `now`.
    pub fn eval_at(&self, asg: &Assignment, now: SimTime) -> Truth {
        let mut acc = Truth::False;
        for t in &self.terms {
            acc = acc.or(t.eval_at(asg, now));
            if acc == Truth::True {
                break;
            }
        }
        acc
    }

    /// Checks whether the decision is resolved under `asg` at `now`.
    pub fn resolution(&self, asg: &Assignment, now: SimTime) -> Resolution {
        let mut any_unknown = false;
        for (i, t) in self.terms.iter().enumerate() {
            match t.eval_at(asg, now) {
                Truth::True => return Resolution::Viable(i),
                Truth::Unknown => any_unknown = true,
                Truth::False => {}
            }
        }
        if any_unknown {
            Resolution::Undecided
        } else {
            Resolution::Infeasible
        }
    }

    /// Labels that can still influence the outcome under `asg` at `now`.
    ///
    /// This is the short-circuit pruning of §II-A: once a term contains a
    /// false condition the rest of its conditions need not be examined, and
    /// once some term is fully true nothing else matters at all.
    pub fn relevant_labels(&self, asg: &Assignment, now: SimTime) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        for t in &self.terms {
            match t.eval_at(asg, now) {
                Truth::True => return BTreeSet::new(),
                Truth::False => {}
                Truth::Unknown => out.extend(t.unknown_labels(asg, now)),
            }
        }
        out
    }

    /// Indices of terms not yet falsified under `asg` at `now`.
    pub fn live_terms(&self, asg: &Assignment, now: SimTime) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.eval_at(asg, now) != Truth::False)
            .map(|(i, _)| i)
            .collect()
    }
}

impl FromIterator<Term> for Dnf {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        Dnf::from_terms(iter.into_iter().collect())
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "false");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn set(asg: &mut Assignment, name: &str, v: bool) {
        asg.set(
            Label::new(name),
            Truth::from(v),
            SimTime::ZERO,
            SimDuration::MAX,
        );
    }

    fn route_query() -> Dnf {
        Dnf::from_terms(vec![
            Term::all_of(["a", "b", "c"]),
            Term::all_of(["d", "e", "f"]),
        ])
    }

    #[test]
    fn literal_eval() {
        let l = Literal::positive(Label::new("x"));
        assert_eq!(l.eval(Truth::True), Truth::True);
        let n = Literal::negative(Label::new("x"));
        assert_eq!(n.eval(Truth::True), Truth::False);
        assert_eq!(n.eval(Truth::Unknown), Truth::Unknown);
        assert!(n.is_negated());
        assert_eq!(n.to_string(), "!x");
    }

    #[test]
    fn term_dedup_and_contradiction() {
        let t = Term::try_from_literals(vec![
            Literal::positive(Label::new("a")),
            Literal::positive(Label::new("a")),
        ])
        .unwrap();
        assert_eq!(t.len(), 1);
        assert!(Term::try_from_literals(vec![
            Literal::positive(Label::new("a")),
            Literal::negative(Label::new("a")),
        ])
        .is_none());
    }

    #[test]
    fn term_conjoin() {
        let ab = Term::all_of(["a", "b"]);
        let bc = Term::all_of(["b", "c"]);
        let abc = ab.conjoin(&bc).unwrap();
        assert_eq!(abc.len(), 3);
        let not_b = Term::from_literals(vec![Literal::negative(Label::new("b"))]);
        assert!(ab.conjoin(&not_b).is_none());
    }

    #[test]
    fn term_subsumption() {
        let a = Term::all_of(["a"]);
        let ab = Term::all_of(["a", "b"]);
        assert!(a.subsumes(&ab));
        assert!(!ab.subsumes(&a));
        assert!(Term::empty().subsumes(&a));
    }

    #[test]
    fn absorption_removes_subsumed() {
        let q = Dnf::from_terms(vec![
            Term::all_of(["a", "b"]),
            Term::all_of(["a"]),
            Term::all_of(["c"]),
        ]);
        let abs = q.absorbed();
        assert_eq!(abs.terms().len(), 2);
        assert_eq!(abs.terms()[0], Term::all_of(["a"]));
    }

    #[test]
    fn duplicate_terms_removed() {
        let q = Dnf::from_terms(vec![Term::all_of(["a"]), Term::all_of(["a"])]);
        assert_eq!(q.terms().len(), 1);
    }

    #[test]
    fn resolution_viable_on_first_true_term() {
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "d", true);
        set(&mut asg, "e", true);
        set(&mut asg, "f", true);
        assert_eq!(q.resolution(&asg, SimTime::ZERO), Resolution::Viable(1));
    }

    #[test]
    fn resolution_infeasible_when_all_terms_false() {
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "a", false);
        set(&mut asg, "e", false);
        assert_eq!(q.resolution(&asg, SimTime::ZERO), Resolution::Infeasible);
        assert!(q.resolution(&asg, SimTime::ZERO).is_decided());
    }

    #[test]
    fn resolution_undecided_otherwise() {
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "a", true);
        assert_eq!(q.resolution(&asg, SimTime::ZERO), Resolution::Undecided);
    }

    #[test]
    fn empty_dnf_is_infeasible() {
        let q = Dnf::unsatisfiable();
        assert_eq!(
            q.resolution(&Assignment::new(), SimTime::ZERO),
            Resolution::Infeasible
        );
        assert_eq!(q.to_string(), "false");
    }

    #[test]
    fn relevant_labels_prunes_falsified_terms() {
        // Paper §II-A: "if a picture of segment A shows that it is badly
        // damaged, we can skip examining segments B and C".
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "a", false);
        let rel = q.relevant_labels(&asg, SimTime::ZERO);
        assert_eq!(
            rel.iter().map(Label::as_str).collect::<Vec<_>>(),
            vec!["d", "e", "f"]
        );
    }

    #[test]
    fn relevant_labels_empty_once_viable() {
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "a", true);
        set(&mut asg, "b", true);
        set(&mut asg, "c", true);
        assert!(q.relevant_labels(&asg, SimTime::ZERO).is_empty());
    }

    #[test]
    fn relevant_labels_excludes_already_known() {
        let q = route_query();
        let mut asg = Assignment::new();
        set(&mut asg, "a", true);
        let rel = q.relevant_labels(&asg, SimTime::ZERO);
        assert!(!rel.contains("a"));
        assert!(rel.contains("b"));
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn expired_labels_reopen_the_decision() {
        let q = Dnf::from_terms(vec![Term::all_of(["a"])]);
        let mut asg = Assignment::new();
        asg.set(
            Label::new("a"),
            Truth::True,
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        assert_eq!(
            q.resolution(&asg, SimTime::from_millis(500)),
            Resolution::Viable(0)
        );
        // After expiry, the evidence no longer supports the decision.
        assert_eq!(
            q.resolution(&asg, SimTime::from_secs(2)),
            Resolution::Undecided
        );
    }

    #[test]
    fn live_terms_tracks_falsification() {
        let q = route_query();
        let mut asg = Assignment::new();
        assert_eq!(q.live_terms(&asg, SimTime::ZERO), vec![0, 1]);
        set(&mut asg, "b", false);
        assert_eq!(q.live_terms(&asg, SimTime::ZERO), vec![1]);
    }

    #[test]
    fn display_shapes() {
        let q = route_query();
        assert_eq!(q.to_string(), "(a & b & c) | (d & e & f)");
        assert_eq!(Term::empty().to_string(), "true");
    }
}

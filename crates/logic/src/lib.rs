//! # dde-logic — decision logic for decision-driven execution
//!
//! Foundation crate of the Athena reproduction (Abdelzaher et al.,
//! *Decision-driven Execution*, ICDCS 2017). It provides:
//!
//! - [`time`] — integer-microsecond simulated time ([`SimTime`],
//!   [`SimDuration`]) shared by every other crate;
//! - [`truth`] — Kleene three-valued logic ([`Truth`]), the semantics under
//!   which partially-evaluated decisions are sound to short-circuit;
//! - [`label`] — named Boolean world-state variables ([`Label`]) and
//!   freshness-aware partial assignments ([`Assignment`]);
//! - [`expr`] — general Boolean expression trees ([`Expr`]) with conversion
//!   to disjunctive normal form;
//! - [`dnf`] — DNF decision queries ([`Dnf`]): alternative courses of action,
//!   resolution checking, and short-circuit relevance pruning;
//! - [`meta`] — per-condition retrieval metadata ([`ConditionMeta`]): cost,
//!   latency, success probability, validity interval;
//! - [`parse`] — a text syntax for expressions.
//!
//! # Example
//!
//! The paper's post-earthquake route query:
//!
//! ```
//! use dde_logic::prelude::*;
//!
//! let query = parse_expr("(viableA & viableB & viableC) | (viableD & viableE & viableF)")?
//!     .to_dnf(64)?;
//!
//! let mut world = Assignment::new();
//! // A picture shows segment A is badly damaged...
//! world.set(Label::new("viableA"), Truth::False, SimTime::ZERO, SimDuration::from_secs(60));
//!
//! // ...so the whole first route is short-circuited away:
//! let relevant = query.relevant_labels(&world, SimTime::ZERO);
//! assert_eq!(relevant.len(), 3); // only viableD, viableE, viableF remain
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]
#![warn(missing_debug_implementations)]

pub mod dnf;
pub mod expr;
pub mod label;
pub mod meta;
pub mod parse;
pub mod time;
pub mod truth;

pub use dnf::{Dnf, Literal, Resolution, Term};
pub use expr::{DnfOverflow, Expr};
pub use label::{Assignment, Label, LabelValue};
pub use meta::{ConditionMeta, Cost, MetaTable, Probability};
pub use parse::{parse_expr, ParseError};
pub use time::{SimDuration, SimTime};
pub use truth::Truth;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::dnf::{Dnf, Literal, Resolution, Term};
    pub use crate::expr::Expr;
    pub use crate::label::{Assignment, Label, LabelValue};
    pub use crate::meta::{ConditionMeta, Cost, MetaTable, Probability};
    pub use crate::parse::parse_expr;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::truth::Truth;
}

//! General Boolean expression trees over labels.
//!
//! Decision queries "can be represented by Boolean expressions over
//! predicates that the underlying sensors can supply evidence to evaluate"
//! (§II-A). The canonical form used by the scheduling algorithms is DNF
//! ([`crate::dnf::Dnf`]); this module provides the general tree form that
//! applications author, partial evaluation under three-valued logic, and
//! conversion to DNF.

use crate::dnf::{Dnf, Literal, Term};
use crate::label::{Assignment, Label};
use crate::time::SimTime;
use crate::truth::Truth;
use core::fmt;
use std::collections::BTreeSet;

/// A Boolean expression over [`Label`]s.
///
/// # Examples
///
/// ```
/// use dde_logic::expr::Expr;
///
/// // (viableA ∧ viableB) ∨ (viableC ∧ viableD)
/// let e = Expr::or(vec![
///     Expr::and(vec![Expr::label("viableA"), Expr::label("viableB")]),
///     Expr::and(vec![Expr::label("viableC"), Expr::label("viableD")]),
/// ]);
/// assert_eq!(e.labels().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant truth value.
    Const(bool),
    /// A positive reference to a label.
    Label(Label),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction of zero or more sub-expressions (empty = true).
    And(Vec<Expr>),
    /// Disjunction of zero or more sub-expressions (empty = false).
    Or(Vec<Expr>),
}

impl Expr {
    /// A positive literal for the given label name.
    pub fn label(name: impl Into<Label>) -> Expr {
        Expr::Label(name.into())
    }

    /// Conjunction of the given sub-expressions.
    pub fn and(children: Vec<Expr>) -> Expr {
        Expr::And(children)
    }

    /// Disjunction of the given sub-expressions.
    pub fn or(children: Vec<Expr>) -> Expr {
        Expr::Or(children)
    }

    /// Negation of `inner`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Expr) -> Expr {
        Expr::Not(Box::new(inner))
    }

    /// Evaluates the expression under Kleene three-valued logic, with label
    /// values looked up in `asg` at time `now` (stale entries read as
    /// unknown).
    pub fn eval_at(&self, asg: &Assignment, now: SimTime) -> Truth {
        self.eval_with(&mut |label| asg.value_at(label, now))
    }

    /// Evaluates the expression with an arbitrary label oracle.
    pub fn eval_with(&self, lookup: &mut dyn FnMut(&Label) -> Truth) -> Truth {
        match self {
            Expr::Const(b) => Truth::from(*b),
            Expr::Label(l) => lookup(l),
            Expr::Not(e) => e.eval_with(lookup).negate(),
            Expr::And(children) => {
                let mut acc = Truth::True;
                for c in children {
                    acc = acc.and(c.eval_with(lookup));
                    if acc == Truth::False {
                        break;
                    }
                }
                acc
            }
            Expr::Or(children) => {
                let mut acc = Truth::False;
                for c in children {
                    acc = acc.or(c.eval_with(lookup));
                    if acc == Truth::True {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// All distinct labels mentioned in the expression.
    pub fn labels(&self) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut BTreeSet<Label>) {
        match self {
            Expr::Const(_) => {}
            Expr::Label(l) => {
                out.insert(l.clone());
            }
            Expr::Not(e) => e.collect_labels(out),
            Expr::And(cs) | Expr::Or(cs) => {
                for c in cs {
                    c.collect_labels(out);
                }
            }
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Label(_) => 1,
            Expr::Not(e) => 1 + e.size(),
            Expr::And(cs) | Expr::Or(cs) => 1 + cs.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Pushes negations down to literals (negation normal form) and removes
    /// double negations.
    #[must_use]
    pub fn to_nnf(&self) -> Expr {
        self.nnf(false)
    }

    fn nnf(&self, negated: bool) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b != negated),
            Expr::Label(l) => {
                if negated {
                    Expr::Not(Box::new(Expr::Label(l.clone())))
                } else {
                    Expr::Label(l.clone())
                }
            }
            Expr::Not(e) => e.nnf(!negated),
            Expr::And(cs) => {
                let children = cs.iter().map(|c| c.nnf(negated)).collect();
                if negated {
                    Expr::Or(children)
                } else {
                    Expr::And(children)
                }
            }
            Expr::Or(cs) => {
                let children = cs.iter().map(|c| c.nnf(negated)).collect();
                if negated {
                    Expr::And(children)
                } else {
                    Expr::Or(children)
                }
            }
        }
    }

    /// Converts the expression to disjunctive normal form.
    ///
    /// # Errors
    ///
    /// Returns [`DnfOverflow`] if the conversion would produce more than
    /// `max_terms` terms — DNF conversion is exponential in the worst case,
    /// and a resource-management layer must not be tricked into building an
    /// astronomically large plan.
    pub fn to_dnf(&self, max_terms: usize) -> Result<Dnf, DnfOverflow> {
        let nnf = self.to_nnf();
        let terms = nnf.dnf_terms(max_terms)?;
        Ok(Dnf::from_terms(terms))
    }

    /// Core DNF distribution; expects `self` to be in NNF.
    fn dnf_terms(&self, max_terms: usize) -> Result<Vec<Term>, DnfOverflow> {
        match self {
            Expr::Const(true) => Ok(vec![Term::empty()]),
            Expr::Const(false) => Ok(vec![]),
            Expr::Label(l) => Ok(vec![Term::from_literals(vec![Literal::positive(
                l.clone(),
            )])]),
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Label(l) => Ok(vec![Term::from_literals(vec![Literal::negative(
                    l.clone(),
                )])]),
                _ => unreachable!("to_nnf pushes negations to literals"),
            },
            Expr::Or(cs) => {
                let mut terms = Vec::new();
                for c in cs {
                    terms.extend(c.dnf_terms(max_terms)?);
                    if terms.len() > max_terms {
                        return Err(DnfOverflow { limit: max_terms });
                    }
                }
                Ok(terms)
            }
            Expr::And(cs) => {
                // Distribute AND over the children's term lists.
                let mut acc: Vec<Term> = vec![Term::empty()];
                for c in cs {
                    let child_terms = c.dnf_terms(max_terms)?;
                    let mut next = Vec::with_capacity(acc.len() * child_terms.len().max(1));
                    for left in &acc {
                        for right in &child_terms {
                            if let Some(merged) = left.conjoin(right) {
                                next.push(merged);
                            }
                            if next.len() > max_terms {
                                return Err(DnfOverflow { limit: max_terms });
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }
}

/// Error returned by [`Expr::to_dnf`] when the DNF would exceed the caller's
/// term budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnfOverflow {
    /// The term budget that was exceeded.
    pub limit: usize,
}

impl fmt::Display for DnfOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DNF conversion exceeded {} terms", self.limit)
    }
}

impl std::error::Error for DnfOverflow {}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{b}"),
            Expr::Label(l) => write!(f, "{l}"),
            Expr::Not(e) => write!(f, "!{e}"),
            Expr::And(cs) => {
                if cs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Expr::Or(cs) => {
                if cs.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn asg(pairs: &[(&str, Truth)]) -> Assignment {
        let mut a = Assignment::new();
        for (name, v) in pairs {
            a.set(Label::new(name), *v, SimTime::ZERO, SimDuration::MAX);
        }
        a
    }

    #[test]
    fn eval_basic_connectives() {
        let e = Expr::and(vec![Expr::label("a"), Expr::label("b")]);
        assert_eq!(
            e.eval_at(
                &asg(&[("a", Truth::True), ("b", Truth::True)]),
                SimTime::ZERO
            ),
            Truth::True
        );
        assert_eq!(
            e.eval_at(&asg(&[("a", Truth::False)]), SimTime::ZERO),
            Truth::False
        );
        assert_eq!(
            e.eval_at(&asg(&[("a", Truth::True)]), SimTime::ZERO),
            Truth::Unknown
        );
    }

    #[test]
    fn eval_respects_freshness() {
        let e = Expr::label("a");
        let mut a = Assignment::new();
        a.set(
            Label::new("a"),
            Truth::True,
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        assert_eq!(e.eval_at(&a, SimTime::from_millis(500)), Truth::True);
        assert_eq!(e.eval_at(&a, SimTime::from_secs(2)), Truth::Unknown);
    }

    #[test]
    fn empty_connectives_are_identities() {
        assert_eq!(
            Expr::and(vec![]).eval_at(&Assignment::new(), SimTime::ZERO),
            Truth::True
        );
        assert_eq!(
            Expr::or(vec![]).eval_at(&Assignment::new(), SimTime::ZERO),
            Truth::False
        );
    }

    #[test]
    fn labels_collects_distinct() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::label("a"), Expr::label("b")]),
            Expr::and(vec![Expr::label("a"), Expr::not(Expr::label("c"))]),
        ]);
        let labels = e.labels();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains("a"));
    }

    #[test]
    fn nnf_pushes_negations() {
        // !(a & !b) => !a | b
        let e = Expr::not(Expr::and(vec![
            Expr::label("a"),
            Expr::not(Expr::label("b")),
        ]));
        let nnf = e.to_nnf();
        assert_eq!(
            nnf,
            Expr::or(vec![Expr::not(Expr::label("a")), Expr::label("b")])
        );
    }

    #[test]
    fn nnf_on_constants() {
        assert_eq!(Expr::not(Expr::Const(true)).to_nnf(), Expr::Const(false));
        assert_eq!(
            Expr::not(Expr::not(Expr::label("x"))).to_nnf(),
            Expr::label("x")
        );
    }

    #[test]
    fn to_dnf_route_query() {
        // (a & b & c) | (d & e & f) is already DNF.
        let e = Expr::or(vec![
            Expr::and(vec![Expr::label("a"), Expr::label("b"), Expr::label("c")]),
            Expr::and(vec![Expr::label("d"), Expr::label("e"), Expr::label("f")]),
        ]);
        let dnf = e.to_dnf(64).unwrap();
        assert_eq!(dnf.terms().len(), 2);
        assert_eq!(dnf.terms()[0].len(), 3);
    }

    #[test]
    fn to_dnf_distributes() {
        // a & (b | c) => (a & b) | (a & c)
        let e = Expr::and(vec![
            Expr::label("a"),
            Expr::or(vec![Expr::label("b"), Expr::label("c")]),
        ]);
        let dnf = e.to_dnf(64).unwrap();
        assert_eq!(dnf.terms().len(), 2);
    }

    #[test]
    fn to_dnf_drops_contradictory_terms() {
        // a & !a is unsatisfiable => empty DNF (constant false)
        let e = Expr::and(vec![Expr::label("a"), Expr::not(Expr::label("a"))]);
        let dnf = e.to_dnf(64).unwrap();
        assert!(dnf.terms().is_empty());
    }

    #[test]
    fn to_dnf_overflow_guard() {
        // (a1|b1) & (a2|b2) & ... & (a12|b12) has 2^12 terms.
        let clauses: Vec<Expr> = (0..12)
            .map(|i| {
                Expr::or(vec![
                    Expr::label(format!("a{i}")),
                    Expr::label(format!("b{i}")),
                ])
            })
            .collect();
        let e = Expr::and(clauses);
        let err = e.to_dnf(100).unwrap_err();
        assert_eq!(err.limit, 100);
        assert!(err.to_string().contains("100"));
        assert!(e.to_dnf(5000).is_ok());
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Expr::or(vec![
            Expr::and(vec![Expr::label("a"), Expr::not(Expr::label("b"))]),
            Expr::Const(false),
        ]);
        assert_eq!(e.to_string(), "((a & !b) | false)");
        assert_eq!(Expr::and(vec![]).to_string(), "true");
        assert_eq!(Expr::or(vec![]).to_string(), "false");
    }

    /// Random expression over a small label pool.
    fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            (0usize..4).prop_map(|i| Expr::label(format!("v{i}"))),
            any::<bool>().prop_map(Expr::Const),
        ];
        leaf.prop_recursive(depth, 32, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::And),
                prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::Or),
                inner.prop_map(Expr::not),
            ]
        })
        .boxed()
    }

    proptest! {
        /// DNF conversion preserves semantics on all total assignments.
        #[test]
        fn dnf_preserves_semantics(e in arb_expr(3), bits in 0u8..16) {
            let Ok(dnf) = e.to_dnf(4096) else { return Ok(()) };
            let mut a = Assignment::new();
            for i in 0..4 {
                let v = Truth::from(bits & (1 << i) != 0);
                a.set(Label::new(format!("v{i}")), v, SimTime::ZERO, SimDuration::MAX);
            }
            prop_assert_eq!(
                e.eval_at(&a, SimTime::ZERO),
                dnf.eval_at(&a, SimTime::ZERO)
            );
        }

        /// NNF preserves semantics under three-valued (partial) assignments.
        #[test]
        fn nnf_preserves_semantics(e in arb_expr(3), trits in prop::collection::vec(0u8..3, 4)) {
            let mut a = Assignment::new();
            for (i, t) in trits.iter().enumerate() {
                let v = match t { 0 => Truth::True, 1 => Truth::False, _ => continue };
                a.set(Label::new(format!("v{i}")), v, SimTime::ZERO, SimDuration::MAX);
            }
            prop_assert_eq!(
                e.eval_at(&a, SimTime::ZERO),
                e.to_nnf().eval_at(&a, SimTime::ZERO)
            );
        }

        /// Partial evaluation is sound: if the three-valued result is decided
        /// under a partial assignment, every completion agrees with it.
        #[test]
        fn partial_eval_sound(e in arb_expr(3), trits in prop::collection::vec(0u8..3, 4)) {
            let mut partial = Assignment::new();
            let mut unknowns = Vec::new();
            for (i, t) in trits.iter().enumerate() {
                let name = format!("v{i}");
                match t {
                    0 => { partial.set(Label::new(&name), Truth::True, SimTime::ZERO, SimDuration::MAX); }
                    1 => { partial.set(Label::new(&name), Truth::False, SimTime::ZERO, SimDuration::MAX); }
                    _ => unknowns.push(name),
                }
            }
            let partial_result = e.eval_at(&partial, SimTime::ZERO);
            if partial_result.is_known() {
                // Try all completions of the unknowns.
                for mask in 0..(1u32 << unknowns.len()) {
                    let mut total = partial.clone();
                    for (j, name) in unknowns.iter().enumerate() {
                        let v = Truth::from(mask & (1 << j) != 0);
                        total.set(Label::new(name), v, SimTime::ZERO, SimDuration::MAX);
                    }
                    prop_assert_eq!(e.eval_at(&total, SimTime::ZERO), partial_result);
                }
            }
        }
    }
}

//! Three-valued (Kleene) logic.
//!
//! The paper's system abstraction (§II-B) stores labels whose value can be
//! *true*, *false*, or *unknown* — unknown meaning that no fresh evidence has
//! been examined yet. Decision expressions are therefore evaluated under
//! Kleene's strong three-valued logic: an AND with a false conjunct is false
//! no matter what the unknowns turn out to be (this is exactly what makes
//! short-circuiting sound), and symmetrically for OR.

use core::fmt;
use core::ops::Not;

/// A three-valued truth value.
///
/// # Examples
///
/// ```
/// use dde_logic::truth::Truth;
///
/// // A false conjunct decides an AND even with unknowns present.
/// assert_eq!(Truth::False.and(Truth::Unknown), Truth::False);
/// // A true disjunct decides an OR.
/// assert_eq!(Truth::True.or(Truth::Unknown), Truth::True);
/// // Otherwise unknowns propagate.
/// assert_eq!(Truth::True.and(Truth::Unknown), Truth::Unknown);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Truth {
    /// The predicate is known to hold.
    True,
    /// The predicate is known not to hold.
    False,
    /// No (fresh) evidence has determined the predicate yet.
    #[default]
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    #[must_use]
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    #[must_use]
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    #[must_use]
    pub fn negate(self) -> Truth {
        use Truth::*;
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }

    /// Whether the value is decided (not [`Truth::Unknown`]).
    pub fn is_known(self) -> bool {
        self != Truth::Unknown
    }

    /// Converts to `Option<bool>`, mapping `Unknown` to `None`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Truth::True => Some(true),
            Truth::False => Some(false),
            Truth::Unknown => None,
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl From<Option<bool>> for Truth {
    fn from(b: Option<bool>) -> Truth {
        match b {
            Some(true) => Truth::True,
            Some(false) => Truth::False,
            None => Truth::Unknown,
        }
    }
}

impl Not for Truth {
    type Output = Truth;
    fn not(self) -> Truth {
        self.negate()
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Folds a conjunction over an iterator of truth values.
///
/// Returns [`Truth::True`] for an empty iterator (the empty conjunction).
///
/// # Examples
///
/// ```
/// use dde_logic::truth::{all, Truth};
///
/// assert_eq!(all([Truth::True, Truth::Unknown]), Truth::Unknown);
/// assert_eq!(all([Truth::True, Truth::False]), Truth::False);
/// assert_eq!(all(std::iter::empty()), Truth::True);
/// ```
pub fn all<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
    let mut acc = Truth::True;
    for t in iter {
        acc = acc.and(t);
        if acc == Truth::False {
            return Truth::False;
        }
    }
    acc
}

/// Folds a disjunction over an iterator of truth values.
///
/// Returns [`Truth::False`] for an empty iterator (the empty disjunction).
///
/// # Examples
///
/// ```
/// use dde_logic::truth::{any, Truth};
///
/// assert_eq!(any([Truth::False, Truth::Unknown]), Truth::Unknown);
/// assert_eq!(any([Truth::False, Truth::True]), Truth::True);
/// assert_eq!(any(std::iter::empty()), Truth::False);
/// ```
pub fn any<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
    let mut acc = Truth::False;
    for t in iter {
        acc = acc.or(t);
        if acc == Truth::True {
            return Truth::True;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::{all as t_all, any as t_any, *};
    use proptest::prelude::*;
    use Truth::*;

    const ALL: [Truth; 3] = [True, False, Unknown];

    fn arb_truth() -> impl Strategy<Value = Truth> {
        prop_oneof![Just(True), Just(False), Just(Unknown)]
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(True), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn negation_involutive() {
        for t in ALL {
            assert_eq!(t.negate().negate(), t);
        }
        assert_eq!(!True, False);
    }

    #[test]
    fn conversions() {
        assert_eq!(Truth::from(true), True);
        assert_eq!(Truth::from(Some(false)), False);
        assert_eq!(Truth::from(None), Unknown);
        assert_eq!(True.to_bool(), Some(true));
        assert_eq!(Unknown.to_bool(), None);
        assert!(!Unknown.is_known());
        assert!(False.is_known());
    }

    #[test]
    fn folds_short_circuit() {
        assert_eq!(t_all([True, False, Unknown]), False);
        assert_eq!(t_any([False, True, Unknown]), True);
        assert_eq!(t_all([True, True]), True);
        assert_eq!(t_any([False, False]), False);
        assert_eq!(t_all([Unknown]), Unknown);
        assert_eq!(t_any([Unknown]), Unknown);
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(Truth::default(), Unknown);
    }

    proptest! {
        #[test]
        fn commutativity(a in arb_truth(), b in arb_truth()) {
            prop_assert_eq!(a.and(b), b.and(a));
            prop_assert_eq!(a.or(b), b.or(a));
        }

        #[test]
        fn associativity(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
            prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
            prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
        }

        #[test]
        fn de_morgan(a in arb_truth(), b in arb_truth()) {
            prop_assert_eq!(a.and(b).negate(), a.negate().or(b.negate()));
            prop_assert_eq!(a.or(b).negate(), a.negate().and(b.negate()));
        }

        #[test]
        fn distributivity(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
            prop_assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
            prop_assert_eq!(a.or(b.and(c)), a.or(b).and(a.or(c)));
        }

        #[test]
        fn identity_elements(a in arb_truth()) {
            prop_assert_eq!(a.and(True), a);
            prop_assert_eq!(a.or(False), a);
            prop_assert_eq!(a.and(False), False);
            prop_assert_eq!(a.or(True), True);
        }

        #[test]
        fn kleene_refinement_monotone(a in arb_truth(), b in arb_truth()) {
            // Refining an Unknown operand to a concrete value must never flip
            // an already-decided result: this is what makes caching of partial
            // evaluations sound.
            if a.and(b).is_known() {
                for refined in ALL {
                    if b == Unknown {
                        prop_assert_eq!(a.and(refined), a.and(b));
                    }
                }
            }
            if a.or(b).is_known() {
                for refined in ALL {
                    if b == Unknown {
                        prop_assert_eq!(a.or(refined), a.or(b));
                    }
                }
            }
        }
    }
}

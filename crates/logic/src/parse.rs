//! A small text syntax for decision expressions.
//!
//! Grammar (usual precedence, `!` > `&` > `|`):
//!
//! ```text
//! expr    := or
//! or      := and ( '|' and )*
//! and     := unary ( '&' unary )*
//! unary   := '!' unary | primary
//! primary := 'true' | 'false' | label | '(' expr ')'
//! label   := [A-Za-z0-9_/.-]+
//! ```
//!
//! Labels may contain `/` so hierarchical names like `viable/seg_3_4` parse
//! directly.
//!
//! # Examples
//!
//! ```
//! use dde_logic::parse::parse_expr;
//!
//! let e = parse_expr("(viableA & viableB & viableC) | (viableD & viableE & viableF)")?;
//! assert_eq!(e.labels().len(), 6);
//! # Ok::<(), dde_logic::parse::ParseError>(())
//! ```

use crate::expr::Expr;
use core::fmt;

/// Error produced by [`parse_expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an expression from its text form.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input (unbalanced parentheses,
/// dangling operators, trailing garbage, empty input).
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let expr = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.parse_and()?];
        loop {
            self.skip_ws();
            if self.eat(b'|') {
                // Tolerate C-style `||`.
                self.eat(b'|');
                self.skip_ws();
                children.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if children.len() == 1 {
            children.pop().expect("one child") // lint: allow(panic) — guarded by children.len() == 1
        } else {
            Expr::Or(children)
        })
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.parse_unary()?];
        loop {
            self.skip_ws();
            if self.eat(b'&') {
                self.eat(b'&');
                self.skip_ws();
                children.push(self.parse_unary()?);
            } else {
                break;
            }
        }
        Ok(if children.len() == 1 {
            children.pop().expect("one child") // lint: allow(panic) — guarded by children.len() == 1
        } else {
            Expr::And(children)
        })
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat(b'!') {
            let inner = self.parse_unary()?;
            return Ok(Expr::not(inner));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_or()?;
                self.skip_ws();
                if !self.eat(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some(c) if is_label_byte(c) => {
                let start = self.pos;
                while self.peek().is_some_and(is_label_byte) {
                    self.pos += 1;
                }
                let word = core::str::from_utf8(&self.input[start..self.pos])
                    .expect("label bytes are ASCII"); // lint: allow(panic) — is_label_byte admits only ASCII
                match word {
                    "true" => Ok(Expr::Const(true)),
                    "false" => Ok(Expr::Const(false)),
                    _ => Ok(Expr::label(word)),
                }
            }
            Some(_) => Err(self.error("expected label, constant, '!' or '('")),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

fn is_label_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'/' | b'.' | b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Assignment;
    use crate::time::{SimDuration, SimTime};
    use crate::truth::Truth;
    use proptest::prelude::*;

    #[test]
    fn parses_route_query() {
        let e = parse_expr("(a & b & c) | (d & e & f)").unwrap();
        assert_eq!(e.to_string(), "((a & b & c) | (d & e & f))");
        let dnf = e.to_dnf(16).unwrap();
        assert_eq!(dnf.terms().len(), 2);
    }

    #[test]
    fn parses_constants_and_negation() {
        assert_eq!(parse_expr("true").unwrap(), Expr::Const(true));
        assert_eq!(parse_expr("false").unwrap(), Expr::Const(false));
        assert_eq!(parse_expr("!x").unwrap(), Expr::not(Expr::label("x")));
        assert_eq!(
            parse_expr("!!x").unwrap(),
            Expr::not(Expr::not(Expr::label("x")))
        );
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let e = parse_expr("a | b & c").unwrap();
        assert_eq!(
            e,
            Expr::or(vec![
                Expr::label("a"),
                Expr::and(vec![Expr::label("b"), Expr::label("c")]),
            ])
        );
    }

    #[test]
    fn tolerates_double_operators_and_whitespace() {
        let e1 = parse_expr("a && b || c").unwrap();
        let e2 = parse_expr("  a & b | c ").unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn hierarchical_label_names() {
        let e = parse_expr("viable/seg_3.4 & camera-7/fresh").unwrap();
        let labels = e.labels();
        assert!(labels.contains("viable/seg_3.4"));
        assert!(labels.contains("camera-7/fresh"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "(a", "a)", "a &", "| a", "a b", "&", "a @ b", "!("] {
            let err = parse_expr(bad).unwrap_err();
            assert!(!err.message.is_empty(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse_expr("a & $").unwrap_err();
        assert_eq!(err.position, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parsed_expression_evaluates() {
        let e = parse_expr("(a & !b) | c").unwrap();
        let mut asg = Assignment::new();
        asg.set(
            crate::label::Label::new("a"),
            Truth::True,
            SimTime::ZERO,
            SimDuration::MAX,
        );
        asg.set(
            crate::label::Label::new("b"),
            Truth::False,
            SimTime::ZERO,
            SimDuration::MAX,
        );
        assert_eq!(e.eval_at(&asg, SimTime::ZERO), Truth::True);
    }

    proptest! {
        /// Display output of a parsed expression re-parses to an equal tree
        /// (Display always emits full parentheses, so this is exact).
        #[test]
        fn display_reparses(input in "[a-z]{1,3}( [&|] [a-z]{1,3}){0,4}") {
            let Ok(e) = parse_expr(&input) else { return Ok(()) };
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            // Re-parsing may flatten singleton And/Or differently, so compare
            // by DNF semantics over the small label pool instead.
            prop_assert_eq!(
                e.to_dnf(1024).unwrap().absorbed(),
                reparsed.to_dnf(1024).unwrap().absorbed()
            );
        }
    }
}

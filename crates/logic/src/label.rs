//! Labels: named Boolean variables describing physical-world state.
//!
//! The system "represents the physical world by a set of labels (names of
//! Boolean variables)" (§II-B). A label such as `viableA` is resolved to
//! *true*/*false* by an annotator examining evidence, and the resolved value
//! carries a *validity interval* after which it is stale.

use crate::time::{SimDuration, SimTime};
use crate::truth::Truth;
use core::fmt;
use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An interned label name (e.g. `viable/seg_3_4` or `Dim`).
///
/// Cloning a `Label` is cheap (it is a reference-counted string), which keeps
/// decision expressions and assignments lightweight.
///
/// # Examples
///
/// ```
/// use dde_logic::label::Label;
///
/// let a = Label::new("viableA");
/// let b: Label = "viableA".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "viableA");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Label(Arc::from(name.as_ref()))
    }

    /// The label's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Arc::from(s.as_str()))
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl serde::Serialize for Label {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Label {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        String::deserialize(d).map(Label::from)
    }
}

/// A resolved label value together with the freshness bookkeeping the paper's
/// data-validity constraints require (§IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelValue {
    /// The truth value established by an annotator.
    pub value: Truth,
    /// When the underlying evidence was sampled.
    pub sampled_at: SimTime,
    /// How long after `sampled_at` the value remains fresh.
    pub validity: SimDuration,
}

impl LabelValue {
    /// Creates a resolved value sampled at `sampled_at` with validity
    /// interval `validity`.
    pub fn new(value: Truth, sampled_at: SimTime, validity: SimDuration) -> Self {
        LabelValue {
            value,
            sampled_at,
            validity,
        }
    }

    /// The instant at which this value ceases to be fresh.
    pub fn expires_at(&self) -> SimTime {
        self.sampled_at.saturating_add(self.validity)
    }

    /// Whether the value is still fresh at `now`.
    pub fn is_fresh_at(&self, now: SimTime) -> bool {
        now <= self.expires_at()
    }
}

/// A partial assignment of truth values to labels, with freshness awareness.
///
/// This is the working state of a decision query: labels resolve over time as
/// evidence arrives, and previously resolved labels may *expire* back to
/// unknown as the physical world moves on.
///
/// # Examples
///
/// ```
/// use dde_logic::label::{Assignment, Label};
/// use dde_logic::time::{SimDuration, SimTime};
/// use dde_logic::truth::Truth;
///
/// let mut asg = Assignment::new();
/// let a = Label::new("viableA");
/// asg.set(a.clone(), Truth::True, SimTime::ZERO, SimDuration::from_secs(10));
/// assert_eq!(asg.value_at(&a, SimTime::from_secs(5)), Truth::True);
/// assert_eq!(asg.value_at(&a, SimTime::from_secs(11)), Truth::Unknown);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    values: BTreeMap<Label, LabelValue>,
}

impl Assignment {
    /// Creates an empty assignment (every label unknown).
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Records a resolved value for `label`.
    ///
    /// Returns the previously recorded value, if any.
    pub fn set(
        &mut self,
        label: Label,
        value: Truth,
        sampled_at: SimTime,
        validity: SimDuration,
    ) -> Option<LabelValue> {
        self.values
            .insert(label, LabelValue::new(value, sampled_at, validity))
    }

    /// Records an already-constructed [`LabelValue`].
    pub fn set_value(&mut self, label: Label, value: LabelValue) -> Option<LabelValue> {
        self.values.insert(label, value)
    }

    /// The stored entry for `label`, fresh or not.
    pub fn get(&self, label: &Label) -> Option<&LabelValue> {
        self.values.get(label)
    }

    /// The truth value of `label` at time `now`, treating expired entries as
    /// [`Truth::Unknown`].
    pub fn value_at(&self, label: &Label, now: SimTime) -> Truth {
        match self.values.get(label) {
            Some(v) if v.is_fresh_at(now) => v.value,
            _ => Truth::Unknown,
        }
    }

    /// The truth value ignoring freshness (useful for static logic tests).
    pub fn value_ignoring_freshness(&self, label: &Label) -> Truth {
        self.values
            .get(label)
            .map(|v| v.value)
            .unwrap_or(Truth::Unknown)
    }

    /// Removes entries that are stale at `now`; returns how many were evicted.
    pub fn evict_stale(&mut self, now: SimTime) -> usize {
        let before = self.values.len();
        self.values.retain(|_, v| v.is_fresh_at(now));
        before - self.values.len()
    }

    /// Removes the entry for `label`, returning it if present.
    pub fn clear(&mut self, label: &Label) -> Option<LabelValue> {
        self.values.remove(label)
    }

    /// Number of recorded (fresh or stale) entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over all recorded `(label, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &LabelValue)> {
        self.values.iter()
    }

    /// The earliest expiry instant among entries that are fresh at `now`, or
    /// `None` if nothing is fresh.
    ///
    /// This drives the paper's freshness constraint `min_i(t_i + I_i) ≥ F`.
    pub fn earliest_expiry(&self, now: SimTime) -> Option<SimTime> {
        self.values
            .values()
            .filter(|v| v.is_fresh_at(now))
            .map(|v| v.expires_at())
            .min()
    }
}

impl FromIterator<(Label, LabelValue)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (Label, LabelValue)>>(iter: I) -> Self {
        Assignment {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Label, LabelValue)> for Assignment {
    fn extend<I: IntoIterator<Item = (Label, LabelValue)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(value: Truth, at: u64, validity: u64) -> LabelValue {
        LabelValue::new(
            value,
            SimTime::from_secs(at),
            SimDuration::from_secs(validity),
        )
    }

    #[test]
    fn label_equality_and_borrow() {
        let a = Label::new("x");
        let b = Label::from("x".to_string());
        assert_eq!(a, b);
        let mut map = BTreeMap::new();
        map.insert(a, 1);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(map.get("x"), Some(&1));
    }

    #[test]
    fn label_value_freshness() {
        let v = lv(Truth::True, 2, 5);
        assert_eq!(v.expires_at(), SimTime::from_secs(7));
        assert!(v.is_fresh_at(SimTime::from_secs(7)));
        assert!(!v.is_fresh_at(SimTime::from_micros(7_000_001)));
    }

    #[test]
    fn infinite_validity_never_expires() {
        let v = LabelValue::new(Truth::True, SimTime::from_secs(1), SimDuration::MAX);
        assert!(v.is_fresh_at(SimTime::MAX));
    }

    #[test]
    fn assignment_set_get_and_expiry() {
        let mut asg = Assignment::new();
        let a = Label::new("a");
        assert!(asg.is_empty());
        asg.set_value(a.clone(), lv(Truth::False, 0, 3));
        assert_eq!(asg.len(), 1);
        assert_eq!(asg.value_at(&a, SimTime::from_secs(2)), Truth::False);
        assert_eq!(asg.value_at(&a, SimTime::from_secs(4)), Truth::Unknown);
        assert_eq!(asg.value_ignoring_freshness(&a), Truth::False);
        assert_eq!(
            asg.value_at(&Label::new("missing"), SimTime::ZERO),
            Truth::Unknown
        );
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut asg = Assignment::new();
        let a = Label::new("a");
        assert!(asg.set_value(a.clone(), lv(Truth::True, 0, 1)).is_none());
        let prev = asg.set_value(a.clone(), lv(Truth::False, 5, 1)).unwrap();
        assert_eq!(prev.value, Truth::True);
        assert_eq!(asg.value_at(&a, SimTime::from_secs(5)), Truth::False);
    }

    #[test]
    fn evict_stale_removes_only_expired() {
        let mut asg = Assignment::new();
        asg.set_value(Label::new("old"), lv(Truth::True, 0, 1));
        asg.set_value(Label::new("new"), lv(Truth::True, 0, 100));
        let evicted = asg.evict_stale(SimTime::from_secs(10));
        assert_eq!(evicted, 1);
        assert_eq!(asg.len(), 1);
        assert!(asg.get(&Label::new("new")).is_some());
    }

    #[test]
    fn earliest_expiry_tracks_fresh_entries() {
        let mut asg = Assignment::new();
        asg.set_value(Label::new("a"), lv(Truth::True, 0, 5));
        asg.set_value(Label::new("b"), lv(Truth::True, 0, 9));
        asg.set_value(Label::new("stale"), lv(Truth::True, 0, 1));
        let now = SimTime::from_secs(2);
        assert_eq!(asg.earliest_expiry(now), Some(SimTime::from_secs(5)));
        assert_eq!(asg.earliest_expiry(SimTime::from_secs(100)), None);
    }

    #[test]
    fn collect_and_extend() {
        let pairs = vec![
            (Label::new("a"), lv(Truth::True, 0, 1)),
            (Label::new("b"), lv(Truth::False, 0, 1)),
        ];
        let mut asg: Assignment = pairs.clone().into_iter().collect();
        assert_eq!(asg.len(), 2);
        asg.extend(vec![(Label::new("c"), lv(Truth::True, 0, 1))]);
        assert_eq!(asg.len(), 3);
    }

    #[test]
    fn clear_removes_entry() {
        let mut asg = Assignment::new();
        let a = Label::new("a");
        asg.set(
            a.clone(),
            Truth::True,
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        assert!(asg.clear(&a).is_some());
        assert!(asg.clear(&a).is_none());
    }
}

//! Per-condition metadata used by the retrieval-cost optimizations.
//!
//! §III-A: "Associated with each condition `b_ij` may be several pieces of
//! metadata. Examples include (i) retrieval cost `C_ij` (e.g., data bandwidth
//! consumed), (ii) estimated retrieval latency `l_ij`, (iii) success
//! probability `p_ij` (i.e., probability of evaluating to true), and (iv)
//! data validity interval `d_ij`."

use crate::label::Label;
use crate::time::SimDuration;
use core::fmt;
use std::collections::BTreeMap;

/// A probability in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use dde_logic::meta::Probability;
///
/// let p = Probability::new(0.6).unwrap();
/// assert_eq!(p.value(), 0.6);
/// assert_eq!(p.complement().value(), 0.4);
/// assert!(Probability::new(1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Probability(f64);

impl Probability {
    /// Certain falsehood.
    pub const ZERO: Probability = Probability(0.0);
    /// Certain truth.
    pub const ONE: Probability = Probability(1.0);
    /// Maximum-entropy prior, used when nothing is known about a condition.
    pub const HALF: Probability = Probability(0.5);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Result<Probability, InvalidProbability> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Probability(p))
        } else {
            Err(InvalidProbability(p))
        }
    }

    /// Creates a probability, clamping out-of-range finite values into
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    pub fn clamped(p: f64) -> Probability {
        assert!(!p.is_nan(), "probability must not be NaN");
        Probability(p.clamp(0.0, 1.0))
    }

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 - p`: the short-circuit probability of an ANDed condition.
    #[must_use]
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// Product of two independent probabilities.
    #[must_use]
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probability that at least one of two independent events occurs.
    #[must_use]
    pub fn or(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }
}

impl Default for Probability {
    fn default() -> Self {
        Probability::HALF
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Error returned by [`Probability::new`] for values outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidProbability(pub f64);

impl fmt::Display for InvalidProbability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probability out of range: {}", self.0)
    }
}

impl std::error::Error for InvalidProbability {}

/// Retrieval cost in bytes transferred over the bottleneck resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// Zero cost (e.g. a locally cached label).
    pub const ZERO: Cost = Cost(0);

    /// Cost of transferring `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Cost {
        Cost(bytes)
    }

    /// The byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Cost as a float, for ratio computations.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating sum.
    #[must_use]
    pub fn saturating_add(self, other: Cost) -> Cost {
        Cost(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl core::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::saturating_add)
    }
}

/// Metadata for one condition of a decision query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionMeta {
    /// Retrieval cost `C` of the evidence object resolving this condition.
    pub cost: Cost,
    /// Estimated end-to-end retrieval latency `l`.
    pub latency: SimDuration,
    /// Probability `p` that the condition evaluates to *true*.
    pub prob_true: Probability,
    /// Validity interval `d` of the evidence.
    pub validity: SimDuration,
}

impl ConditionMeta {
    /// Creates metadata with the given cost and validity, default latency
    /// zero and maximum-entropy probability.
    pub fn new(cost: Cost, validity: SimDuration) -> ConditionMeta {
        ConditionMeta {
            cost,
            latency: SimDuration::ZERO,
            prob_true: Probability::HALF,
            validity,
        }
    }

    /// Sets the success probability.
    #[must_use]
    pub fn with_prob(mut self, p: Probability) -> ConditionMeta {
        self.prob_true = p;
        self
    }

    /// Sets the estimated retrieval latency.
    #[must_use]
    pub fn with_latency(mut self, l: SimDuration) -> ConditionMeta {
        self.latency = l;
        self
    }

    /// The short-circuit efficiency of this condition inside an AND:
    /// `(1 - p) / C` (§III-A).
    ///
    /// A zero-cost condition has infinite efficiency — evaluate it first.
    pub fn and_shortcircuit_ratio(&self) -> f64 {
        let c = self.cost.as_f64();
        if c == 0.0 {
            f64::INFINITY
        } else {
            self.prob_true.complement().value() / c
        }
    }

    /// The short-circuit efficiency of this condition inside an OR:
    /// `p / C`.
    pub fn or_shortcircuit_ratio(&self) -> f64 {
        let c = self.cost.as_f64();
        if c == 0.0 {
            f64::INFINITY
        } else {
            self.prob_true.value() / c
        }
    }
}

impl Default for ConditionMeta {
    fn default() -> Self {
        ConditionMeta::new(Cost::ZERO, SimDuration::MAX)
    }
}

/// A table of per-label condition metadata for a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaTable {
    entries: BTreeMap<Label, ConditionMeta>,
}

impl MetaTable {
    /// Creates an empty table.
    pub fn new() -> MetaTable {
        MetaTable::default()
    }

    /// Registers metadata for `label`, returning any previous entry.
    pub fn insert(&mut self, label: Label, meta: ConditionMeta) -> Option<ConditionMeta> {
        self.entries.insert(label, meta)
    }

    /// Metadata for `label`, if registered.
    pub fn get(&self, label: &Label) -> Option<&ConditionMeta> {
        self.entries.get(label)
    }

    /// Metadata for `label`, or the (pessimistic) default.
    pub fn get_or_default(&self, label: &Label) -> ConditionMeta {
        self.entries.get(label).copied().unwrap_or_default()
    }

    /// Number of registered labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(label, meta)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &ConditionMeta)> {
        self.entries.iter()
    }
}

impl FromIterator<(Label, ConditionMeta)> for MetaTable {
    fn from_iter<I: IntoIterator<Item = (Label, ConditionMeta)>>(iter: I) -> Self {
        MetaTable {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Label, ConditionMeta)> for MetaTable {
    fn extend<I: IntoIterator<Item = (Label, ConditionMeta)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    #[test]
    fn probability_validation() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert_eq!(Probability::clamped(2.0), Probability::ONE);
        assert_eq!(Probability::clamped(-1.0), Probability::ZERO);
        let err = Probability::new(1.5).unwrap_err();
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn probability_algebra() {
        let p = Probability::new(0.25).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert!((p.and(q).value() - 0.125).abs() < 1e-12);
        assert!((p.or(q).value() - 0.625).abs() < 1e-12);
        assert_eq!(Probability::default(), Probability::HALF);
        assert_eq!(p.to_string(), "0.250");
    }

    #[test]
    fn cost_arithmetic() {
        let c = Cost::from_bytes(4 * MB);
        assert_eq!(c.as_bytes(), 4 * MB);
        assert_eq!(
            vec![Cost::from_bytes(1), Cost::from_bytes(2)]
                .into_iter()
                .sum::<Cost>(),
            Cost::from_bytes(3)
        );
        assert_eq!(
            Cost::from_bytes(u64::MAX)
                .saturating_add(Cost::from_bytes(1))
                .as_bytes(),
            u64::MAX
        );
        assert_eq!(Cost::from_bytes(7).to_string(), "7B");
    }

    /// The paper's worked example (§III-A): h is a 4 MB clip with p = 0.6,
    /// k is a 5 MB clip with p = 0.2; k should be evaluated first because
    /// (1-0.2)/5 = 0.16 > (1-0.6)/4 = 0.1.
    #[test]
    fn paper_shortcircuit_example() {
        let h = ConditionMeta::new(Cost::from_bytes(4 * MB), SimDuration::MAX)
            .with_prob(Probability::new(0.6).unwrap());
        let k = ConditionMeta::new(Cost::from_bytes(5 * MB), SimDuration::MAX)
            .with_prob(Probability::new(0.2).unwrap());
        assert!(k.and_shortcircuit_ratio() > h.and_shortcircuit_ratio());
        assert!((k.and_shortcircuit_ratio() - 0.16 / MB as f64).abs() < 1e-18);
        assert!((h.and_shortcircuit_ratio() - 0.10 / MB as f64).abs() < 1e-18);
    }

    #[test]
    fn or_ratio_prefers_likely_true() {
        let likely = ConditionMeta::new(Cost::from_bytes(MB), SimDuration::MAX)
            .with_prob(Probability::new(0.9).unwrap());
        let unlikely = ConditionMeta::new(Cost::from_bytes(MB), SimDuration::MAX)
            .with_prob(Probability::new(0.1).unwrap());
        assert!(likely.or_shortcircuit_ratio() > unlikely.or_shortcircuit_ratio());
    }

    #[test]
    fn zero_cost_is_infinitely_efficient() {
        let free = ConditionMeta::new(Cost::ZERO, SimDuration::MAX);
        assert!(free.and_shortcircuit_ratio().is_infinite());
        assert!(free.or_shortcircuit_ratio().is_infinite());
    }

    #[test]
    fn meta_table_basics() {
        let mut t = MetaTable::new();
        assert!(t.is_empty());
        let a = Label::new("a");
        t.insert(
            a.clone(),
            ConditionMeta::new(Cost::from_bytes(10), SimDuration::from_secs(5)),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&a).unwrap().cost, Cost::from_bytes(10));
        // Unknown labels get the pessimistic default.
        let d = t.get_or_default(&Label::new("zzz"));
        assert_eq!(d.cost, Cost::ZERO);
        assert_eq!(d.validity, SimDuration::MAX);
    }

    #[test]
    fn meta_table_collect() {
        let t: MetaTable = vec![
            (Label::new("a"), ConditionMeta::default()),
            (Label::new("b"), ConditionMeta::default()),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn builder_methods() {
        let m = ConditionMeta::new(Cost::from_bytes(1), SimDuration::from_secs(1))
            .with_prob(Probability::new(0.3).unwrap())
            .with_latency(SimDuration::from_millis(20));
        assert_eq!(m.prob_true.value(), 0.3);
        assert_eq!(m.latency, SimDuration::from_millis(20));
    }
}

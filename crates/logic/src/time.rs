//! Simulated-time primitives shared by every crate in the workspace.
//!
//! The paper's scheduling theory (§IV) reasons about *validity intervals*,
//! *decision deadlines*, and *activation times*. All of these are represented
//! here as integer microseconds so that event ordering in the discrete-event
//! simulator is exact and deterministic (no floating-point tie ambiguity).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in microseconds since the start of the
/// simulation.
///
/// # Examples
///
/// ```
/// use dde_logic::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use dde_logic::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never expires".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "effectively infinite
    /// validity" (e.g. the existence of a bridge, §II-A).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid duration in seconds: {s}"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::MAX {
            write!(f, "t=∞")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimDuration::MAX {
            write!(f, "∞")
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl From<core::time::Duration> for SimDuration {
    fn from(d: core::time::Duration) -> Self {
        SimDuration(d.as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(7), SimDuration::from_secs(3));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(2),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(2)
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250000s");
        assert_eq!(SimTime::MAX.to_string(), "t=∞");
        assert_eq!(SimDuration::MAX.to_string(), "∞");
    }

    #[test]
    fn from_std_duration() {
        let d: SimDuration = core::time::Duration::from_millis(42).into();
        assert_eq!(d, SimDuration::from_millis(42));
    }
}

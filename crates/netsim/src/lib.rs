//! # dde-netsim — deterministic discrete-event network simulation
//!
//! Substrate for the Athena reproduction, substituting for the EMANE-Shim
//! emulator the paper's evaluation used (§VII). The evaluation's results
//! depend on transfer times implied by object sizes over 1 Mbps links and on
//! hop-by-hop message ordering; this crate models exactly those:
//!
//! - [`topology`] — nodes, duplex links with bandwidth / propagation latency
//!   / loss, topology builders (line, ring, star, grid, random-connected),
//!   and all-pairs shortest-path next-hop routing;
//! - [`sim`] — the event-heap engine: [`Protocol`] handlers per node,
//!   FIFO links that serialize transmissions, timers, external stimuli,
//!   node up/down fault injection; identical seeds give identical runs;
//! - [`metrics`] — per-link and per-message-kind traffic accounting, the
//!   instrument behind the paper's Fig. 3 bandwidth comparison;
//! - [`fault`] — seeded, replayable fault timelines (node churn, link
//!   outages, partitions) the simulator applies at exact instants;
//! - [`partition`] — deterministic balanced region partitioning with
//!   conservative lookahead derived from boundary-link latency;
//! - [`shard`] — the conservative parallel engine: regions pinned to
//!   worker threads, barrier windows sized by the lookahead, stable
//!   partition-independent event keys, so one seed yields a byte-identical
//!   trace at any thread count.

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod fault;
pub mod metrics;
pub mod partition;
pub mod shard;
pub mod sim;
pub mod topology;

pub use fault::{FaultEvent, FaultSchedule, TimedFault};
pub use metrics::{KindCounters, Metrics};
pub use partition::Partition;
pub use shard::{EventKey, ShardedSimulator};
pub use sim::{
    Command, Context, MediumMode, Protocol, SendError, Simulator, TraceEvent, WireMessage,
};
pub use topology::{LinkSpec, NodeId, Topology};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::fault::{FaultEvent, FaultSchedule};
    pub use crate::metrics::Metrics;
    pub use crate::partition::Partition;
    pub use crate::shard::ShardedSimulator;
    pub use crate::sim::{Context, Protocol, Simulator, WireMessage};
    pub use crate::topology::{LinkSpec, NodeId, Topology};
    pub use dde_logic::time::{SimDuration, SimTime};
}

//! Network topologies: nodes, links, and shortest-path routing.
//!
//! The paper's evaluation (§VII) deploys ~30 Athena nodes on a Manhattan
//! grid with 1 Mbps node-to-node connections. This module provides the
//! general graph substrate: link specifications (bandwidth, propagation
//! latency, loss), common topology builders, and all-pairs next-hop routing
//! computed by breadth-first search (links are homogeneous in the paper, so
//! hop count is the routing metric).

use core::fmt;
use dde_logic::time::SimDuration;
use std::collections::VecDeque;

/// Identifier of a simulated node.
///
/// The paper's prototype identifies nodes by `IP:PORT`; the simulator uses a
/// dense index, which keeps routing tables flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Transmission characteristics of a (directed) link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Probability that a message is lost in transit (failure injection).
    pub loss: f64,
}

impl LinkSpec {
    /// The paper's evaluation configuration: 1 Mbps, 1 ms propagation,
    /// lossless.
    pub fn mbps1() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 1_000_000,
            latency: SimDuration::from_millis(1),
            loss: 0.0,
        }
    }

    /// A link with the given capacity in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn with_bandwidth(bandwidth_bps: u64) -> LinkSpec {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        LinkSpec {
            bandwidth_bps,
            latency: SimDuration::from_millis(1),
            loss: 0.0,
        }
    }

    /// Sets the propagation latency.
    #[must_use]
    pub fn latency(mut self, latency: SimDuration) -> LinkSpec {
        self.latency = latency;
        self
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss <= 1.0`.
    #[must_use]
    pub fn loss(mut self, loss: f64) -> LinkSpec {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Time to clock `bytes` bytes onto the medium.
    pub fn transmission_time(&self, bytes: u64) -> SimDuration {
        // micros = bytes * 8 * 1e6 / bps, computed in u128 to avoid overflow.
        let micros = (bytes as u128 * 8 * 1_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_micros(micros.min(u64::MAX as u128) as u64)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::mbps1()
    }
}

/// An undirected network of nodes and links with precomputed routing.
///
/// # Examples
///
/// ```
/// use dde_netsim::topology::{LinkSpec, Topology};
///
/// let topo = Topology::line(3, LinkSpec::mbps1());
/// let (a, c) = (topo.node(0), topo.node(2));
/// assert_eq!(topo.hop_distance(a, c), Some(2));
/// assert_eq!(topo.next_hop(a, c), Some(topo.node(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    // adjacency[u] = (v, spec of link u->v)
    adjacency: Vec<Vec<(NodeId, LinkSpec)>>,
    // next_hop[u][v] = first hop on a shortest u->v path (usize::MAX = unreachable)
    next_hop: Vec<Vec<usize>>,
    // dist[u][v] in hops (usize::MAX = unreachable)
    dist: Vec<Vec<usize>>,
    routes_dirty: bool,
    // Fault state: crashed nodes and downed links are *physically* still
    // present (adjacency is unchanged) but excluded from routing. BTreeSet
    // with endpoints ordered (min, max) keeps iteration deterministic.
    disabled_nodes: std::collections::BTreeSet<usize>,
    disabled_links: std::collections::BTreeSet<(usize, usize)>,
}

impl Topology {
    /// Creates a topology with `n` nodes and no links.
    pub fn new(n: usize) -> Topology {
        Topology {
            n,
            adjacency: vec![Vec::new(); n],
            next_hop: Vec::new(),
            dist: Vec::new(),
            routes_dirty: true,
            disabled_nodes: std::collections::BTreeSet::new(),
            disabled_links: std::collections::BTreeSet::new(),
        }
    }

    /// The node with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.n, "node index {i} out of range (n={})", self.n);
        NodeId(i)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// Adds an undirected link between `a` and `b` with symmetric `spec`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b`, or if the
    /// link already exists.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert!(a.0 < self.n && b.0 < self.n, "link endpoint out of range");
        assert_ne!(a, b, "self-links are not allowed");
        assert!(!self.has_link(a, b), "link {a}-{b} already exists");
        self.adjacency[a.0].push((b, spec));
        self.adjacency[b.0].push((a, spec));
        self.routes_dirty = true;
    }

    /// Whether a direct link `a`–`b` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(a.0)
            .is_some_and(|adj| adj.iter().any(|(v, _)| *v == b))
    }

    /// The spec of the directed link `a → b`, if the nodes are adjacent.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkSpec> {
        self.adjacency
            .get(a.0)?
            .iter()
            .find(|(v, _)| *v == b)
            .map(|(_, s)| *s)
    }

    /// Neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[node.0].iter().map(|(v, _)| *v)
    }

    /// Number of directed links (twice the undirected link count).
    pub fn directed_link_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    // ---- Fault state (node churn and link outages) -------------------

    fn link_key(a: NodeId, b: NodeId) -> (usize, usize) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Whether `node` is enabled (not crashed). Nodes start enabled.
    pub fn is_node_enabled(&self, node: NodeId) -> bool {
        !self.disabled_nodes.contains(&node.0)
    }

    /// Enables or disables a node for routing purposes. Disabled nodes keep
    /// their physical links ([`Topology::has_link`] is unchanged) but no
    /// route traverses or terminates at them. Returns `true` if the state
    /// changed (and marks routes stale).
    pub fn set_node_enabled(&mut self, node: NodeId, enabled: bool) -> bool {
        assert!(node.0 < self.n, "node out of range");
        let changed = if enabled {
            self.disabled_nodes.remove(&node.0)
        } else {
            self.disabled_nodes.insert(node.0)
        };
        if changed {
            self.routes_dirty = true;
        }
        changed
    }

    /// Whether the physical link `a`–`b` exists *and* is currently enabled
    /// (not taken down by a fault). Does not consider endpoint node state;
    /// see [`Topology::is_link_usable`].
    pub fn is_link_enabled(&self, a: NodeId, b: NodeId) -> bool {
        self.has_link(a, b) && !self.disabled_links.contains(&Self::link_key(a, b))
    }

    /// Enables or disables the undirected link `a`–`b`. Returns `true` if
    /// the state changed (and marks routes stale).
    ///
    /// # Panics
    ///
    /// Panics if the physical link does not exist.
    pub fn set_link_enabled(&mut self, a: NodeId, b: NodeId, enabled: bool) -> bool {
        assert!(self.has_link(a, b), "no physical link {a}-{b}");
        let key = Self::link_key(a, b);
        let changed = if enabled {
            self.disabled_links.remove(&key)
        } else {
            self.disabled_links.insert(key)
        };
        if changed {
            self.routes_dirty = true;
        }
        changed
    }

    /// Whether traffic can currently flow `a → b`: the link exists, is
    /// enabled, and both endpoints are enabled.
    pub fn is_link_usable(&self, a: NodeId, b: NodeId) -> bool {
        self.is_link_enabled(a, b) && self.is_node_enabled(a) && self.is_node_enabled(b)
    }

    /// Whether any fault state (disabled node or link) is active.
    pub fn has_fault_state(&self) -> bool {
        !self.disabled_nodes.is_empty() || !self.disabled_links.is_empty()
    }

    /// Neighbors of `node` reachable over currently-usable links.
    pub fn neighbors_up(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[node.0]
            .iter()
            .map(|(v, _)| *v)
            .filter(move |&v| self.is_link_usable(node, v))
    }

    /// Recomputes the all-pairs next-hop tables. Called automatically by the
    /// routing queries; exposed for callers that want to pay the cost
    /// eagerly.
    pub fn rebuild_routes(&mut self) {
        let n = self.n;
        let mut next_hop = vec![vec![usize::MAX; n]; n];
        let mut dist = vec![vec![usize::MAX; n]; n];
        // BFS from every destination, walking predecessors toward sources,
        // gives each source its first hop toward that destination. With
        // homogeneous links (the paper's setting) hop count is the metric;
        // ties break toward the lowest-numbered neighbor for determinism.
        // Crashed nodes and downed links are excluded, so routes always
        // detour around active faults (or report unreachable).
        for dst in 0..n {
            if !self.is_node_enabled(NodeId(dst)) {
                continue;
            }
            let mut q = VecDeque::new();
            dist[dst][dst] = 0;
            next_hop[dst][dst] = dst;
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                let mut nbrs: Vec<usize> = self.adjacency[u].iter().map(|(v, _)| v.0).collect();
                nbrs.sort_unstable();
                for v in nbrs {
                    if dist[v][dst] == usize::MAX && self.is_link_usable(NodeId(v), NodeId(u)) {
                        dist[v][dst] = dist[u][dst] + 1;
                        next_hop[v][dst] = u;
                        q.push_back(v);
                    }
                }
            }
        }
        self.next_hop = next_hop;
        self.dist = dist;
        self.routes_dirty = false;
    }

    fn routes(&self) -> (&Vec<Vec<usize>>, &Vec<Vec<usize>>) {
        assert!(
            !self.routes_dirty,
            "routing tables stale: call rebuild_routes() after mutating links"
        );
        (&self.next_hop, &self.dist)
    }

    /// Ensures routing tables are current (no-op when already built).
    pub fn ensure_routes(&mut self) {
        if self.routes_dirty {
            self.rebuild_routes();
        }
    }

    /// First hop on a shortest path `from → to`, or `None` when unreachable.
    /// Returns `Some(from)` when `from == to`.
    ///
    /// # Panics
    ///
    /// Panics if the routing tables are stale (mutate, then call
    /// [`Topology::rebuild_routes`]).
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let (next, _) = self.routes();
        match next[from.0][to.0] {
            usize::MAX => None,
            h => Some(NodeId(h)),
        }
    }

    /// Shortest-path length in hops, or `None` when unreachable.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let (_, dist) = self.routes();
        match dist[from.0][to.0] {
            usize::MAX => None,
            d => Some(d),
        }
    }

    /// The full shortest path `from → to` (inclusive), or `None` when
    /// unreachable.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = self.next_hop(cur, to)?;
            path.push(cur);
            if path.len() > self.n {
                return None; // routing loop; cannot happen with BFS tables
            }
        }
        Some(path)
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&mut self) -> bool {
        self.ensure_routes();
        if self.n == 0 {
            return true;
        }
        (1..self.n).all(|v| self.dist[0][v] != usize::MAX)
    }

    // ---- Builders ----------------------------------------------------

    /// A path topology `0 – 1 – … – (n-1)`.
    pub fn line(n: usize, spec: LinkSpec) -> Topology {
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(NodeId(i - 1), NodeId(i), spec);
        }
        t.rebuild_routes();
        t
    }

    /// A ring topology.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize, spec: LinkSpec) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut t = Topology::new(n);
        for i in 0..n {
            t.add_link(NodeId(i), NodeId((i + 1) % n), spec);
        }
        t.rebuild_routes();
        t
    }

    /// A star with node 0 at the hub.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize, spec: LinkSpec) -> Topology {
        assert!(n >= 2, "a star needs at least 2 nodes");
        let mut t = Topology::new(n);
        for i in 1..n {
            t.add_link(NodeId(0), NodeId(i), spec);
        }
        t.rebuild_routes();
        t
    }

    /// A `rows × cols` grid; node `(r, c)` has index `r * cols + c` and links
    /// to its 4-neighborhood. This is the Manhattan layout of §VII.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn grid(rows: usize, cols: usize, spec: LinkSpec) -> Topology {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut t = Topology::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let here = NodeId(r * cols + c);
                if c + 1 < cols {
                    t.add_link(here, NodeId(r * cols + c + 1), spec);
                }
                if r + 1 < rows {
                    t.add_link(here, NodeId((r + 1) * cols + c), spec);
                }
            }
        }
        t.rebuild_routes();
        t
    }

    /// A connected random topology: a random spanning tree plus
    /// `extra_links` additional random links, built deterministically from
    /// `seed`.
    pub fn random_connected(n: usize, extra_links: usize, seed: u64) -> Topology {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Topology::new(n);
        // Random spanning tree: connect each node i>0 to a random earlier node.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            t.add_link(NodeId(i), NodeId(j), LinkSpec::mbps1());
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_links && attempts < extra_links * 20 && n >= 2 {
            attempts += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !t.has_link(NodeId(a), NodeId(b)) {
                t.add_link(NodeId(a), NodeId(b), LinkSpec::mbps1());
                added += 1;
            }
        }
        t.rebuild_routes();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transmission_time_matches_paper_config() {
        // 1 MB over 1 Mbps = 8 seconds.
        let spec = LinkSpec::mbps1();
        assert_eq!(spec.transmission_time(1_000_000), SimDuration::from_secs(8));
        // 100 KB over 1 Mbps = 0.8 s.
        assert_eq!(
            spec.transmission_time(100_000),
            SimDuration::from_millis(800)
        );
        assert_eq!(spec.transmission_time(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::with_bandwidth(0);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn invalid_loss_rejected() {
        let _ = LinkSpec::mbps1().loss(1.5);
    }

    #[test]
    fn line_routing() {
        let t = Topology::line(5, LinkSpec::mbps1());
        assert_eq!(t.hop_distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(t.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(t.next_hop(NodeId(2), NodeId(2)), Some(NodeId(2)));
        assert_eq!(
            t.path(NodeId(0), NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn grid_routing_distances_are_manhattan() {
        let t = Topology::grid(4, 4, LinkSpec::mbps1());
        // (0,0) -> (3,3): 6 hops.
        assert_eq!(t.hop_distance(NodeId(0), NodeId(15)), Some(6));
        // neighbors of a middle node
        let mid = NodeId(5); // (1,1)
        let nbrs: Vec<_> = t.neighbors(mid).collect();
        assert_eq!(nbrs.len(), 4);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::star(5, LinkSpec::mbps1());
        assert_eq!(t.next_hop(NodeId(1), NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.hop_distance(NodeId(1), NodeId(2)), Some(2));
    }

    #[test]
    fn ring_takes_shorter_side() {
        let t = Topology::ring(6, LinkSpec::mbps1());
        assert_eq!(t.hop_distance(NodeId(0), NodeId(3)), Some(3));
        assert_eq!(t.hop_distance(NodeId(0), NodeId(5)), Some(1));
    }

    #[test]
    fn disconnected_nodes_unreachable() {
        let mut t = Topology::new(3);
        t.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
        t.rebuild_routes();
        assert_eq!(t.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(t.hop_distance(NodeId(0), NodeId(2)), None);
        assert!(t.path(NodeId(0), NodeId(2)).is_none());
        assert!(!t.is_connected());
    }

    #[test]
    fn duplicate_link_panics() {
        let mut t = Topology::new(2);
        t.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.add_link(NodeId(1), NodeId(0), LinkSpec::mbps1());
        }));
        assert!(r.is_err());
    }

    #[test]
    fn link_lookup() {
        let mut t = Topology::new(2);
        let spec = LinkSpec::with_bandwidth(2_000_000);
        t.add_link(NodeId(0), NodeId(1), spec);
        t.rebuild_routes();
        assert_eq!(
            t.link(NodeId(0), NodeId(1)).unwrap().bandwidth_bps,
            2_000_000
        );
        assert!(t.link(NodeId(1), NodeId(1)).is_none());
        assert_eq!(t.directed_link_count(), 2);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let mut t = Topology::random_connected(20, 10, seed);
            assert!(t.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn random_topology_deterministic() {
        let a = Topology::random_connected(15, 5, 42);
        let b = Topology::random_connected(15, 5, 42);
        for u in a.nodes() {
            let na: Vec<_> = a.neighbors(u).collect();
            let nb: Vec<_> = b.neighbors(u).collect();
            assert_eq!(na, nb);
        }
    }

    proptest! {
        /// next_hop always makes strict progress toward the destination.
        #[test]
        fn next_hop_decreases_distance(seed in 0u64..50, n in 4usize..16) {
            let t = Topology::random_connected(n, n / 2, seed);
            for from in t.nodes() {
                for to in t.nodes() {
                    if from == to { continue; }
                    let hop = t.next_hop(from, to).unwrap();
                    prop_assert_eq!(
                        t.hop_distance(hop, to).unwrap() + 1,
                        t.hop_distance(from, to).unwrap()
                    );
                }
            }
        }

        /// Paths returned by `path` are real adjacency walks of the right length.
        #[test]
        fn path_is_valid_walk(seed in 0u64..20, n in 4usize..12) {
            let t = Topology::random_connected(n, 3, seed);
            for from in t.nodes() {
                for to in t.nodes() {
                    let p = t.path(from, to).unwrap();
                    prop_assert_eq!(p.len(), t.hop_distance(from, to).unwrap() + 1);
                    prop_assert_eq!(*p.first().unwrap(), from);
                    prop_assert_eq!(*p.last().unwrap(), to);
                    for w in p.windows(2) {
                        prop_assert!(t.has_link(w[0], w[1]));
                    }
                }
            }
        }

        /// Hop distance is symmetric on undirected graphs.
        #[test]
        fn distance_symmetric(seed in 0u64..20, n in 3usize..12) {
            let t = Topology::random_connected(n, 2, seed);
            for a in t.nodes() {
                for b in t.nodes() {
                    prop_assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
                }
            }
        }
    }
}

//! Traffic accounting for simulation runs.
//!
//! Fig. 3 of the paper compares *total network bandwidth consumption* across
//! retrieval schemes; these counters are the measurement instrument. Bytes
//! are counted per directed link and per message kind at transmission time
//! (lost messages still consume the medium, as on a radio).

use crate::topology::NodeId;
use std::collections::BTreeMap;

/// Aggregated traffic counters for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Messages handed to the medium.
    pub messages_sent: u64,
    /// Messages delivered to a protocol handler.
    pub messages_delivered: u64,
    /// Messages lost in transit (link loss).
    pub messages_lost: u64,
    /// Messages dropped because the destination node was down.
    pub messages_dropped: u64,
    /// Of [`Metrics::messages_dropped`], how many were attributable to an
    /// injected fault (crashed node or downed link) rather than a manually
    /// downed node. Always `<= messages_dropped`.
    pub messages_dropped_by_fault: u64,
    /// Messages purged from transmitter queues before ever being sent,
    /// because their sender crashed or their link went down. These never
    /// counted toward [`Metrics::messages_sent`], so they sit *outside* the
    /// `sent = delivered + lost + dropped` conservation identity.
    pub messages_purged_by_fault: u64,
    /// Total bytes clocked onto all links.
    pub bytes_sent: u64,
    per_link: BTreeMap<(NodeId, NodeId), u64>,
    per_kind: BTreeMap<&'static str, KindCounters>,
}

/// Per-message-kind counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Messages of this kind sent.
    pub count: u64,
    /// Bytes of this kind sent.
    pub bytes: u64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records a transmission of `bytes` from `from` to `to` tagged `kind`.
    pub fn record_send(&mut self, from: NodeId, to: NodeId, bytes: u64, kind: &'static str) {
        self.messages_sent += 1;
        self.bytes_sent += bytes;
        *self.per_link.entry((from, to)).or_insert(0) += bytes;
        let k = self.per_kind.entry(kind).or_default();
        k.count += 1;
        k.bytes += bytes;
    }

    /// Bytes sent over the directed link `from → to`.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.per_link.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Counters for a message kind.
    pub fn kind(&self, kind: &str) -> KindCounters {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterates over `(kind, counters)` pairs in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindCounters)> + '_ {
        self.per_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates over per-directed-link byte counts.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), u64)> + '_ {
        self.per_link.iter().map(|(k, v)| (*k, *v))
    }

    /// Folds another set of counters into this one. Used by the sharded
    /// simulator to aggregate per-region counters into the run totals;
    /// every counter is a sum, so the fold is order-independent.
    pub fn absorb(&mut self, other: &Metrics) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.messages_dropped += other.messages_dropped;
        self.messages_dropped_by_fault += other.messages_dropped_by_fault;
        self.messages_purged_by_fault += other.messages_purged_by_fault;
        self.bytes_sent += other.bytes_sent;
        for (link, bytes) in &other.per_link {
            *self.per_link.entry(*link).or_insert(0) += bytes;
        }
        for (kind, c) in &other.per_kind {
            let k = self.per_kind.entry(kind).or_default();
            k.count += c.count;
            k.bytes += c.bytes;
        }
    }

    /// The busiest directed link and its byte count, if any traffic flowed.
    pub fn hottest_link(&self) -> Option<((NodeId, NodeId), u64)> {
        self.per_link
            .iter()
            .max_by_key(|(_, &b)| b)
            .map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = Metrics::new();
        m.record_send(NodeId(0), NodeId(1), 100, "data");
        m.record_send(NodeId(0), NodeId(1), 50, "data");
        m.record_send(NodeId(1), NodeId(2), 10, "request");
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 160);
        assert_eq!(m.link_bytes(NodeId(0), NodeId(1)), 150);
        assert_eq!(m.link_bytes(NodeId(1), NodeId(0)), 0);
        assert_eq!(m.kind("data").count, 2);
        assert_eq!(m.kind("data").bytes, 150);
        assert_eq!(m.kind("nonexistent"), KindCounters::default());
    }

    #[test]
    fn hottest_link() {
        let mut m = Metrics::new();
        assert!(m.hottest_link().is_none());
        m.record_send(NodeId(0), NodeId(1), 10, "a");
        m.record_send(NodeId(2), NodeId(3), 99, "a");
        assert_eq!(m.hottest_link(), Some(((NodeId(2), NodeId(3)), 99)));
    }

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = Metrics::new();
        a.record_send(NodeId(0), NodeId(1), 5, "x");
        a.messages_delivered = 1;
        a.messages_dropped = 2;
        let mut b = Metrics::new();
        b.record_send(NodeId(0), NodeId(1), 7, "x");
        b.record_send(NodeId(1), NodeId(2), 3, "y");
        b.messages_lost = 4;
        b.messages_purged_by_fault = 5;
        a.absorb(&b);
        assert_eq!(a.messages_sent, 3);
        assert_eq!(a.bytes_sent, 15);
        assert_eq!(a.messages_delivered, 1);
        assert_eq!(a.messages_lost, 4);
        assert_eq!(a.messages_dropped, 2);
        assert_eq!(a.messages_purged_by_fault, 5);
        assert_eq!(a.link_bytes(NodeId(0), NodeId(1)), 12);
        assert_eq!(a.kind("x").count, 2);
        assert_eq!(a.kind("y").bytes, 3);
    }

    #[test]
    fn aggregates_sum_per_kind() {
        let mut m = Metrics::new();
        m.record_send(NodeId(0), NodeId(1), 5, "x");
        m.record_send(NodeId(1), NodeId(0), 7, "y");
        let total: u64 = m.kinds().map(|(_, c)| c.bytes).sum();
        assert_eq!(total, m.bytes_sent);
        assert_eq!(m.links().count(), 2);
    }
}

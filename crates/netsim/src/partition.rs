//! Deterministic topology partitioning for the sharded simulator.
//!
//! The conservative parallel engine ([`crate::shard`]) pins each region of
//! the topology to one worker thread and synchronizes regions with barrier
//! windows whose width is the **lookahead**: the minimum latency over any
//! link that crosses a region boundary. A message that leaves its region
//! at time `t` cannot arrive before `t + lookahead`, so every region may
//! safely process all events strictly before the window end without
//! hearing from its peers.
//!
//! The partition itself is a pure function of `(topology, region count,
//! seed)` — it never reads thread state — so a given configuration always
//! produces the same regions. Determinism of the *simulation results*
//! does not depend on the partition shape at all (the engine orders events
//! by partition-independent keys); the partition only determines how much
//! parallelism and lookahead a run gets.

use crate::topology::{NodeId, Topology};
use dde_logic::time::SimDuration;

/// A mapping of topology nodes onto contiguous regions, plus the
/// conservative lookahead the boundary links permit.
#[derive(Debug, Clone)]
pub struct Partition {
    region_of: Vec<u32>,
    regions: Vec<Vec<NodeId>>,
    lookahead: Option<SimDuration>,
}

impl Partition {
    /// Partitions `topology` into at most `regions` balanced regions.
    ///
    /// Nodes are laid out in BFS order from a seed-chosen start node
    /// (neighbors visited in ascending id, disconnected remainders
    /// appended in id order) and the order is cut into contiguous chunks,
    /// so regions are both balanced (sizes differ by at most one) and
    /// locality-preserving — BFS neighbors tend to land in the same chunk,
    /// which keeps boundary traffic low.
    ///
    /// The region count is clamped to the node count; asking for more
    /// regions than nodes yields one singleton region per node.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty, or if any boundary link has zero
    /// latency — zero lookahead would force zero-width windows and the
    /// conservative scheme could not advance.
    pub fn build(topology: &Topology, regions: usize, seed: u64) -> Partition {
        let n = topology.len();
        assert!(n > 0, "cannot partition an empty topology");
        let want = regions.clamp(1, n);

        // BFS layout from a seeded start.
        let start = NodeId((seed % n as u64) as usize);
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let enqueue =
            |q: &mut std::collections::VecDeque<NodeId>, seen: &mut Vec<bool>, node: NodeId| {
                if !seen[node.index()] {
                    seen[node.index()] = true;
                    q.push_back(node);
                }
            };
        enqueue(&mut queue, &mut seen, start);
        // Components beyond the first are picked up in id order.
        let mut next_unseen = 0usize;
        loop {
            while let Some(node) = queue.pop_front() {
                order.push(node);
                let mut neighbors: Vec<NodeId> = topology.neighbors(node).collect();
                neighbors.sort_unstable_by_key(|n| n.index());
                for nb in neighbors {
                    enqueue(&mut queue, &mut seen, nb);
                }
            }
            while next_unseen < n && seen[next_unseen] {
                next_unseen += 1;
            }
            if next_unseen == n {
                break;
            }
            enqueue(&mut queue, &mut seen, NodeId(next_unseen));
        }
        debug_assert_eq!(order.len(), n);

        // Cut the order into `want` contiguous chunks, sizes n/want rounded
        // up for the first n % want chunks.
        let base = n / want;
        let extra = n % want;
        let mut region_of = vec![0u32; n];
        let mut region_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(want);
        let mut cursor = 0usize;
        for r in 0..want {
            let size = base + usize::from(r < extra);
            let mut members: Vec<NodeId> = order[cursor..cursor + size].to_vec();
            cursor += size;
            members.sort_unstable_by_key(|n| n.index());
            for node in &members {
                region_of[node.index()] = r as u32;
            }
            region_nodes.push(members);
        }

        // Lookahead: minimum latency over links that cross a region
        // boundary. `None` when nothing crosses (single region, or
        // disconnected regions).
        let mut lookahead: Option<SimDuration> = None;
        for a in 0..n {
            let a_id = NodeId(a);
            for (b_id, spec) in topology
                .neighbors(a_id)
                .filter_map(|b| topology.link(a_id, b).map(|spec| (b, spec)))
            {
                if region_of[a] != region_of[b_id.index()] {
                    assert!(
                        spec.latency > SimDuration::ZERO,
                        "boundary link {a_id}-{b_id} has zero latency: no conservative lookahead"
                    );
                    lookahead = Some(match lookahead {
                        Some(l) => l.min(spec.latency),
                        None => spec.latency,
                    });
                }
            }
        }

        Partition {
            region_of,
            regions: region_nodes,
            lookahead,
        }
    }

    /// Number of regions.
    pub fn count(&self) -> usize {
        self.regions.len()
    }

    /// The region `node` belongs to.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region_of[node.index()] as usize
    }

    /// The full node → region map, indexed by node id.
    pub fn region_map(&self) -> &[u32] {
        &self.region_of
    }

    /// Nodes of region `r`, in ascending id order.
    pub fn nodes_in(&self, r: usize) -> &[NodeId] {
        &self.regions[r]
    }

    /// The conservative lookahead: minimum latency over boundary links, or
    /// `None` when no link crosses a region boundary (then only faults and
    /// the deadline bound the barrier window).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn assert_exact_cover(p: &Partition, n: usize) {
        // Every node appears in exactly one region, and region_of agrees
        // with the member lists.
        let mut seen = vec![0u32; n];
        for r in 0..p.count() {
            for node in p.nodes_in(r) {
                seen[node.index()] += 1;
                assert_eq!(p.region_of(*node), r);
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "cover: {seen:?}");
    }

    #[test]
    fn single_node_topology_yields_one_region() {
        let topo = Topology::new(1);
        let p = Partition::build(&topo, 8, 42);
        assert_eq!(p.count(), 1);
        assert_exact_cover(&p, 1);
        assert_eq!(p.lookahead(), None, "no links, no boundary");
    }

    #[test]
    fn fully_connected_topology_partitions_cleanly() {
        let n = 6;
        let mut topo = Topology::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                topo.add_link(NodeId(a), NodeId(b), LinkSpec::mbps1());
            }
        }
        for regions in [1, 2, 3, 4, 6, 9] {
            let p = Partition::build(&topo, regions, 7);
            assert_eq!(p.count(), regions.min(n));
            assert_exact_cover(&p, n);
            if p.count() > 1 {
                let l = p.lookahead().expect("fully connected has boundaries");
                assert!(l > SimDuration::ZERO, "lookahead strictly positive");
                assert_eq!(l, SimDuration::from_millis(1), "min latency is 1ms");
            }
        }
    }

    #[test]
    fn chain_topology_cuts_into_contiguous_runs() {
        let n = 10;
        let topo = Topology::line(n, LinkSpec::mbps1().latency(SimDuration::from_millis(3)));
        let p = Partition::build(&topo, 4, 0);
        assert_eq!(p.count(), 4);
        assert_exact_cover(&p, n);
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> = (0..p.count()).map(|r| p.nodes_in(r).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes: {sizes:?}");
        assert_eq!(p.lookahead(), Some(SimDuration::from_millis(3)));
    }

    #[test]
    fn lookahead_is_min_over_boundary_links_only() {
        // 0-1 intra-region fast link, 1-2 boundary slow link.
        let mut topo = Topology::new(4);
        topo.add_link(
            NodeId(0),
            NodeId(1),
            LinkSpec::mbps1().latency(SimDuration::from_micros(10)),
        );
        topo.add_link(
            NodeId(1),
            NodeId(2),
            LinkSpec::mbps1().latency(SimDuration::from_millis(50)),
        );
        topo.add_link(
            NodeId(2),
            NodeId(3),
            LinkSpec::mbps1().latency(SimDuration::from_micros(20)),
        );
        let p = Partition::build(&topo, 2, 0);
        assert_exact_cover(&p, 4);
        if p.region_of(NodeId(1)) != p.region_of(NodeId(2)) {
            // BFS from node 0 puts {0,1} and {2,3} together: the only
            // boundary is the 50ms link, so the fast intra-region links
            // must not shrink the lookahead.
            assert_eq!(p.lookahead(), Some(SimDuration::from_millis(50)));
        }
    }

    #[test]
    fn more_regions_than_nodes_clamps_to_singletons() {
        let topo = Topology::line(3, LinkSpec::mbps1());
        let p = Partition::build(&topo, 8, 5);
        assert_eq!(p.count(), 3);
        assert_exact_cover(&p, 3);
        assert!(p.lookahead().is_some());
    }

    #[test]
    fn partition_is_deterministic_for_a_seed_and_varies_layout_by_seed() {
        let topo = Topology::grid(4, 4, LinkSpec::mbps1());
        let a = Partition::build(&topo, 4, 1);
        let b = Partition::build(&topo, 4, 1);
        assert_eq!(a.region_map(), b.region_map());
        // Different seeds start BFS elsewhere; the cover invariants hold
        // regardless.
        for seed in 0..8 {
            let p = Partition::build(&topo, 4, seed);
            assert_exact_cover(&p, 16);
            assert!(p.lookahead().unwrap() > SimDuration::ZERO);
        }
    }

    #[test]
    fn disconnected_topology_is_fully_covered() {
        // Two components, no links between them.
        let mut topo = Topology::new(5);
        topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
        topo.add_link(NodeId(3), NodeId(4), LinkSpec::mbps1());
        let p = Partition::build(&topo, 2, 9);
        assert_exact_cover(&p, 5);
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_topology_panics() {
        let topo = Topology::new(0);
        let _ = Partition::build(&topo, 2, 0);
    }

    #[test]
    #[should_panic(expected = "zero latency")]
    fn zero_latency_boundary_link_panics() {
        let mut topo = Topology::new(2);
        topo.add_link(
            NodeId(0),
            NodeId(1),
            LinkSpec::mbps1().latency(SimDuration::ZERO),
        );
        let _ = Partition::build(&topo, 2, 0);
    }
}

//! The discrete-event simulation engine.
//!
//! This replaces the paper's EMANE-based emulation (§VII): each node runs a
//! [`Protocol`] implementation; messages traverse links with finite
//! bandwidth, propagation latency, and optional loss; everything is driven by
//! a deterministic event heap keyed on `(time, sequence)` so identical seeds
//! produce identical runs.

use crate::fault::{FaultEvent, FaultSchedule};
use crate::metrics::Metrics;
use crate::topology::{NodeId, Topology};
use dde_logic::time::{SimDuration, SimTime};
use dde_obs::{EventKind, MemorySink, NullSink, SharedSink, Sink, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// A message that can be clocked onto a link.
pub trait WireMessage {
    /// Size on the wire, in bytes (headers included, by convention).
    fn wire_size(&self) -> u64;

    /// A short static tag used for per-kind traffic accounting
    /// (e.g. `"request"`, `"data"`, `"label"`).
    fn kind(&self) -> &'static str {
        "msg"
    }

    /// Whether the message is *background* traffic: a link transmits a
    /// background message only when no foreground message is waiting
    /// (strict two-level priority, non-preemptive). Used for Athena's
    /// prefetch pushes ("the prefetch queue is only processed in the
    /// background", §VI-A of the paper).
    fn background(&self) -> bool {
        false
    }

    /// The decision query this message is serving, if the protocol can
    /// attribute it. Carried on the `transmit`/`deliver`/`loss` trace
    /// events so the `dde-obs` cost ledger can charge link bytes to the
    /// causing decision; `None` traffic lands in the ledger's overhead
    /// bucket. Purely observational — never consulted by the simulator.
    fn attribution(&self) -> Option<u64> {
        None
    }
}

/// Node-local protocol logic.
///
/// Handlers receive a [`Context`] through which they may send messages to
/// *neighbors* (multi-hop forwarding is the protocol's job, as in the
/// paper's hop-by-hop Athena design) and set timers.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Msg: WireMessage;
    /// External stimulus type (e.g. a user-initiated decision query).
    type Ext;

    /// Called once per node when the simulation starts.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from a neighbor is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when an external stimulus scheduled through
    /// [`Simulator::schedule_external`] arrives.
    fn on_external(&mut self, ctx: &mut Context<'_, Self::Msg>, ext: Self::Ext) {
        let _ = (ctx, ext);
    }

    /// Called when this node comes back up after a scheduled
    /// [`FaultEvent::NodeRecover`]. Protocols use this to rebuild any
    /// state lost in the crash (re-announce queries, re-arm timers).
    /// Default: do nothing.
    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Handler-side view of the simulation: clock, identity, topology, an
/// outbox for sends and timers, and the trace sink.
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    topology: &'a Topology,
    commands: &'a mut Vec<Command<M>>,
    sink: &'a mut dyn Sink,
}

impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("node", &self.node)
            .finish()
    }
}

impl<'a, M> Context<'a, M> {
    /// Assembles a handler context. The sharded engine (`crate::shard`)
    /// builds the same view per dispatched event, and external hosts (a
    /// live transport runtime such as `dde-net`) use this to drive a
    /// [`Protocol`] outside any simulator: dispatch one handler, then
    /// drain the `commands` vec and realize each [`Command`] against the
    /// real network and a real timer wheel.
    pub fn new(
        now: SimTime,
        node: NodeId,
        topology: &'a Topology,
        commands: &'a mut Vec<Command<M>>,
        sink: &'a mut dyn Sink,
    ) -> Context<'a, M> {
        Context {
            now,
            node,
            topology,
            commands,
            sink,
        }
    }

    /// Whether the active trace sink consumes events. Protocol code should
    /// check this before building event payloads that allocate (names,
    /// rationale strings) so the default [`dde_obs::NullSink`] costs one
    /// branch per site.
    pub fn obs_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Records a trace event stamped with the current simulated time and
    /// this node's identity. A no-op when the sink is disabled.
    pub fn emit(&mut self, kind: EventKind) {
        if self.sink.enabled() {
            self.sink.record(&TraceRecord {
                at: self.now,
                node: self.node.index() as u32,
                kind,
            });
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The (immutable) network topology, for neighbor and routing queries.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The next hop toward `dst`, or `None` if unreachable.
    pub fn next_hop_toward(&self, dst: NodeId) -> Option<NodeId> {
        self.topology.next_hop(self.node, dst)
    }

    /// Queues `msg` for transmission to the *neighbor* `to`.
    ///
    /// Protocols are hop-by-hop; route first with
    /// [`Context::next_hop_toward`]. A send to a non-neighbor trips a
    /// debug assertion (DES tests catch protocol routing bugs loudly); in
    /// release builds the message is dropped and a `Drop` trace record
    /// with reason `"not-neighbor"` is emitted, so a routing race in a
    /// live deployment can never take down the node. Callers that want
    /// the error surfaced use [`Context::try_send`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        if let Err(err) = self.try_send(to, msg) {
            debug_assert!(false, "{err}");
        }
    }

    /// Queues `msg` for transmission to the *neighbor* `to`, surfacing a
    /// typed [`SendError`] instead of asserting when `to` is not adjacent.
    ///
    /// On error the message is not queued and a `Drop` trace record with
    /// reason `"not-neighbor"` is emitted for the cost ledger's overhead
    /// accounting.
    pub fn try_send(&mut self, to: NodeId, msg: M) -> Result<(), SendError> {
        if !self.topology.has_link(self.node, to) {
            self.emit(EventKind::Drop {
                from: self.node.index() as u32,
                to: to.index() as u32,
                reason: "not-neighbor",
            });
            return Err(SendError::NotNeighbor {
                from: self.node,
                to,
            });
        }
        self.commands.push(Command::Send { to, msg });
        Ok(())
    }

    /// Sets a timer to fire `after` from now, carrying `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) {
        self.commands.push(Command::Timer {
            at: self.now + after,
            tag,
        });
    }

    /// Sets a timer to fire at absolute time `at` (clamped to now if in the
    /// past), carrying `tag`.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) {
        self.commands.push(Command::Timer {
            at: at.max(self.now),
            tag,
        });
    }
}

/// A failed [`Context::try_send`]. The only current variant is a
/// non-neighbor destination; live transports (`dde-net`) wrap this in
/// their own error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination is not adjacent to the sending node. Protocols are
    /// hop-by-hop: route with [`Context::next_hop_toward`] first.
    NotNeighbor {
        /// The node that attempted the send.
        from: NodeId,
        /// The non-adjacent destination.
        to: NodeId,
    },
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NotNeighbor { from, to } => {
                write!(f, "{from} attempted to send to non-neighbor {to}")
            }
        }
    }
}

impl std::error::Error for SendError {}

/// An action queued by a protocol handler, drained by whatever engine is
/// driving the node: the event-heap [`Simulator`], the sharded engine, or
/// an external host realizing sends against a live transport and timers
/// against a wall-clock timer wheel.
#[derive(Debug)]
pub enum Command<M> {
    /// Transmit `msg` to the adjacent node `to`.
    Send {
        /// Destination (already adjacency-checked by [`Context`]).
        to: NodeId,
        /// The message to clock onto the link.
        msg: M,
    },
    /// Fire [`Protocol::on_timer`] with `tag` at time `at`.
    Timer {
        /// Absolute fire time.
        at: SimTime,
        /// Opaque protocol-chosen discriminator.
        tag: u64,
    },
}

enum Event<P: Protocol> {
    Start {
        node: NodeId,
    },
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: P::Msg,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    External {
        node: NodeId,
        ext: P::Ext,
    },
    /// A link finished clocking out its current message; start the next.
    LinkFree {
        from: NodeId,
        to: NodeId,
    },
    /// A scheduled fault transition fires.
    Fault(FaultEvent),
}

struct Scheduled<P: Protocol> {
    at: SimTime,
    seq: u64,
    event: Event<P>,
}

impl<P: Protocol> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P: Protocol> Eq for Scheduled<P> {}
impl<P: Protocol> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Protocol> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// How node transmitters share the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MediumMode {
    /// Every directed link has its own transmitter (wired point-to-point).
    #[default]
    FullDuplex,
    /// A node owns one radio: it clocks out on at most one link at a time,
    /// as in the paper's wireless EMANE setting. Receptions are unlimited
    /// (no interference model).
    HalfDuplexTx,
}

/// One recorded transmission, when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the message started clocking onto the link.
    pub at: SimTime,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The message's kind tag.
    pub kind: &'static str,
    /// Wire size in bytes.
    pub bytes: u64,
    /// Whether it rode in the background priority class.
    pub background: bool,
}

/// Transmitter state of one directed link: whether it is currently
/// clocking a message out, plus foreground and background wait queues.
pub(crate) struct LinkState<M> {
    pub(crate) busy: bool,
    pub(crate) foreground: std::collections::VecDeque<M>,
    pub(crate) background: std::collections::VecDeque<M>,
}

impl<M> Default for LinkState<M> {
    fn default() -> Self {
        LinkState {
            busy: false,
            foreground: std::collections::VecDeque::new(),
            background: std::collections::VecDeque::new(),
        }
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// A two-node ping-pong:
///
/// ```
/// use dde_netsim::prelude::*;
///
/// struct Ping { count: u32 }
///
/// #[derive(Debug)]
/// struct Ball;
/// impl WireMessage for Ball {
///     fn wire_size(&self) -> u64 { 100 }
/// }
///
/// impl Protocol for Ping {
///     type Msg = Ball;
///     type Ext = ();
///     fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
///         if ctx.node() == NodeId(0) {
///             ctx.send(NodeId(1), Ball);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, _msg: Ball) {
///         self.count += 1;
///         if self.count < 3 {
///             ctx.send(from, Ball);
///         }
///     }
/// }
///
/// let topo = Topology::line(2, LinkSpec::mbps1());
/// let mut sim = Simulator::new(topo, vec![Ping { count: 0 }, Ping { count: 0 }], 7);
/// sim.run();
/// // The ball bounces until each side has seen it 3 times: 5 deliveries.
/// assert_eq!(sim.metrics().messages_delivered, 5);
/// ```
pub struct Simulator<P: Protocol> {
    topology: Topology,
    nodes: Vec<P>,
    node_up: Vec<bool>,
    heap: BinaryHeap<Scheduled<P>>,
    now: SimTime,
    seq: u64,
    // per directed link: transmitter state and waiting messages
    links: BTreeMap<(NodeId, NodeId), LinkState<P::Msg>>,
    metrics: Metrics,
    rng: SmallRng,
    events_processed: u64,
    sink: Box<dyn Sink>,
    // Shim for the deprecated enable_trace/take_trace path: a handle to the
    // MemorySink installed as `sink`, so take_trace can read it back.
    legacy_trace: Option<SharedSink<MemorySink>>,
    trace_cap: usize,
    medium: MediumMode,
    // number of in-flight transmissions per node (HalfDuplexTx: 0 or 1)
    node_tx_busy: Vec<u32>,
}

impl<P: Protocol> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.heap.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol instance per
    /// node. `seed` drives link-loss sampling.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()` or if routing tables are
    /// stale.
    pub fn new(mut topology: Topology, nodes: Vec<P>, seed: u64) -> Simulator<P> {
        assert_eq!(
            nodes.len(),
            topology.len(),
            "need exactly one protocol instance per topology node"
        );
        topology.ensure_routes();
        let n = nodes.len();
        let mut sim = Simulator {
            topology,
            nodes,
            node_up: vec![true; n],
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            links: BTreeMap::new(),
            metrics: Metrics::new(),
            rng: SmallRng::seed_from_u64(seed),
            events_processed: 0,
            sink: Box::new(NullSink),
            legacy_trace: None,
            trace_cap: 0,
            medium: MediumMode::FullDuplex,
            node_tx_busy: vec![0; n],
        };
        for i in 0..n {
            sim.push(SimTime::ZERO, Event::Start { node: NodeId(i) });
        }
        sim
    }

    fn push(&mut self, at: SimTime, event: Event<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Records a simulator-level trace event attributed to `node`, stamped
    /// with the current simulated time. No-op when the sink is disabled.
    fn emit(&mut self, node: NodeId, kind: EventKind) {
        if self.sink.enabled() {
            self.sink.record(&TraceRecord {
                at: self.now,
                node: node.index() as u32,
                kind,
            });
        }
    }

    /// Schedules an external stimulus (e.g. a user query) for `node` at
    /// absolute time `at`.
    pub fn schedule_external(&mut self, at: SimTime, node: NodeId, ext: P::Ext) {
        assert!(node.index() < self.nodes.len(), "node out of range");
        self.push(at.max(self.now), Event::External { node, ext });
    }

    /// Installs every event of a [`FaultSchedule`] into the event heap.
    ///
    /// Faults fire at their exact scheduled instants; at equal timestamps,
    /// faults installed here precede protocol events scheduled later (the
    /// heap breaks ties by insertion sequence). Installing an **empty**
    /// schedule is a strict no-op: no events, no RNG draws, no state
    /// changes — the run is bit-identical to one without this call.
    ///
    /// May be called multiple times; schedules merge in the heap.
    ///
    /// # Panics
    ///
    /// Panics if any event is scheduled before the current simulated time
    /// or names a node outside the topology.
    pub fn install_faults(&mut self, schedule: &FaultSchedule) {
        for f in schedule.events() {
            assert!(f.at >= self.now, "fault scheduled in the past: {f:?}");
            let valid = |n: NodeId| n.index() < self.nodes.len();
            match f.event {
                FaultEvent::NodeCrash(n) | FaultEvent::NodeRecover(n) => {
                    assert!(valid(n), "fault names unknown node {n}");
                }
                FaultEvent::LinkDown(a, b) | FaultEvent::LinkUp(a, b) => {
                    assert!(valid(a) && valid(b), "fault names unknown link {a}-{b}");
                    assert!(
                        self.topology.has_link(a, b),
                        "fault names non-existent link {a}-{b}"
                    );
                }
            }
            self.push(f.at, Event::Fault(f.event));
        }
    }

    /// Applies a single fault transition at the current instant.
    fn apply_fault(&mut self, fault: FaultEvent) {
        match fault {
            FaultEvent::NodeCrash(n) => {
                if !self.node_up[n.index()] {
                    return; // already down: idempotent
                }
                self.emit(
                    n,
                    EventKind::Fault {
                        fault: "node-crash",
                        node: n.index() as u32,
                        peer: None,
                    },
                );
                self.node_up[n.index()] = false;
                self.topology.set_node_enabled(n, false);
                self.topology.rebuild_routes();
                // The crashed transmitter's queued (never-sent) traffic
                // vanishes with it. In-flight transmissions already
                // radiated their tail and complete normally — delivery
                // *to* the crashed node is dropped at arrival.
                let neighbors: Vec<NodeId> = self.topology.neighbors(n).collect();
                for nb in neighbors {
                    self.purge_link_queues(n, nb);
                }
            }
            FaultEvent::NodeRecover(n) => {
                if self.node_up[n.index()] {
                    return; // already up: idempotent
                }
                self.emit(
                    n,
                    EventKind::Fault {
                        fault: "node-recover",
                        node: n.index() as u32,
                        peer: None,
                    },
                );
                self.node_up[n.index()] = true;
                self.topology.set_node_enabled(n, true);
                self.topology.rebuild_routes();
                let mut commands = Vec::new();
                {
                    let mut ctx = Context {
                        now: self.now,
                        node: n,
                        topology: &self.topology,
                        commands: &mut commands,
                        sink: &mut *self.sink,
                    };
                    self.nodes[n.index()].on_recover(&mut ctx);
                }
                for cmd in commands {
                    match cmd {
                        Command::Send { to, msg } => self.transmit(n, to, msg),
                        Command::Timer { at, tag } => self.push(at, Event::Timer { node: n, tag }),
                    }
                }
            }
            FaultEvent::LinkDown(a, b) => {
                if self.topology.set_link_enabled(a, b, false) {
                    self.emit(
                        a,
                        EventKind::Fault {
                            fault: "link-down",
                            node: a.index() as u32,
                            peer: Some(b.index() as u32),
                        },
                    );
                    self.topology.rebuild_routes();
                    self.purge_link_queues(a, b);
                    self.purge_link_queues(b, a);
                }
            }
            FaultEvent::LinkUp(a, b) => {
                if self.topology.set_link_enabled(a, b, true) {
                    self.emit(
                        a,
                        EventKind::Fault {
                            fault: "link-up",
                            node: a.index() as u32,
                            peer: Some(b.index() as u32),
                        },
                    );
                    self.topology.rebuild_routes();
                }
            }
        }
    }

    /// Discards everything waiting (never sent) on the directed link
    /// `from → to`, counting the purge in the metrics.
    fn purge_link_queues(&mut self, from: NodeId, to: NodeId) {
        if let Some(link) = self.links.get_mut(&(from, to)) {
            let purged = (link.foreground.len() + link.background.len()) as u64;
            link.foreground.clear();
            link.background.clear();
            self.metrics.messages_purged_by_fault += purged;
            if purged > 0 {
                self.emit(
                    from,
                    EventKind::Purge {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        count: purged,
                    },
                );
            }
        }
    }

    /// Marks a node up or down. Messages to/from a down node are dropped;
    /// its timers and externals are swallowed.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.node_up[node.index()] = up;
    }

    /// Whether `node` is currently up.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Selects how node transmitters share the medium. Must be called
    /// before any traffic flows.
    pub fn set_medium(&mut self, medium: MediumMode) {
        debug_assert_eq!(self.metrics.messages_sent, 0, "set_medium before traffic");
        self.medium = medium;
    }

    /// Installs a trace sink; every subsequent simulator and protocol event
    /// is recorded into it. The default is [`dde_obs::NullSink`], whose
    /// cost is one `enabled()` branch per instrumentation site.
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.legacy_trace = None;
        self.sink = sink;
    }

    /// The active trace sink (e.g. to flush it mid-run).
    pub fn sink_mut(&mut self) -> &mut dyn Sink {
        &mut *self.sink
    }

    /// Removes and returns the active sink, restoring the null sink.
    pub fn take_sink(&mut self) -> Box<dyn Sink> {
        self.legacy_trace = None;
        std::mem::replace(&mut self.sink, Box::new(NullSink))
    }

    /// Starts recording transmissions (up to `cap` events) for
    /// message-flow inspection; see [`Simulator::take_trace`].
    #[deprecated(
        since = "0.1.0",
        note = "use Simulator::set_sink with a dde-obs sink; transmissions are EventKind::Transmit records"
    )]
    pub fn enable_trace(&mut self, cap: usize) {
        let shared = SharedSink::new(MemorySink::new());
        self.legacy_trace = Some(shared.clone());
        self.trace_cap = cap;
        self.sink = Box::new(shared);
    }

    /// Returns and clears the recorded trace (empty if tracing was never
    /// enabled), uninstalling the sink that
    /// [`enable_trace`](Simulator::enable_trace) set up.
    #[deprecated(
        since = "0.1.0",
        note = "use Simulator::set_sink with a dde-obs sink; transmissions are EventKind::Transmit records"
    )]
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let Some(shared) = self.legacy_trace.take() else {
            return Vec::new();
        };
        self.sink = Box::new(NullSink);
        shared
            .with(|s| s.take())
            .into_iter()
            .filter_map(|rec| match rec.kind {
                EventKind::Transmit {
                    from,
                    to,
                    msg,
                    bytes,
                    background,
                    ..
                } => Some(TraceEvent {
                    at: rec.at,
                    from: NodeId(from as usize),
                    to: NodeId(to as usize),
                    kind: msg,
                    bytes,
                    background,
                }),
                _ => None,
            })
            .take(self.trace_cap)
            .collect()
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Exclusive access to a node's protocol state (for post-run inspection
    /// or fault injection between runs).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all protocol instances.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Consumes the simulator, returning the protocol instances.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Processes a single event. Returns `false` when the event queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, event, .. }) = self.heap.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;

        if let Event::LinkFree { from, to } = event {
            self.link_freed(from, to);
            return true;
        }
        if let Event::Fault(fault) = event {
            self.apply_fault(fault);
            return true;
        }
        let mut commands = Vec::new();
        let node_id = match &event {
            Event::Start { node } | Event::Timer { node, .. } | Event::External { node, .. } => {
                *node
            }
            Event::Deliver { to, .. } => *to,
            Event::LinkFree { .. } | Event::Fault(_) => unreachable!("handled above"),
        };
        if let Event::Deliver { from, to, .. } = &event {
            // The link went down (by fault) while the message was in flight:
            // it never arrives.
            if !self.topology.is_link_enabled(*from, *to) {
                self.metrics.messages_dropped += 1;
                self.metrics.messages_dropped_by_fault += 1;
                let (from, to) = (*from, *to);
                self.emit(
                    to,
                    EventKind::Drop {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        reason: "link-down",
                    },
                );
                return true;
            }
        }
        if !self.node_up[node_id.index()] {
            if let Event::Deliver { from, to, .. } = &event {
                self.metrics.messages_dropped += 1;
                // A destination downed by the fault schedule (rather than by
                // a manual `set_node_up`) is visible in the topology state.
                if !self.topology.is_node_enabled(node_id) {
                    self.metrics.messages_dropped_by_fault += 1;
                }
                let (from, to) = (*from, *to);
                self.emit(
                    to,
                    EventKind::Drop {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        reason: "node-down",
                    },
                );
            }
            return true;
        }
        if let Event::Deliver { from, to, msg } = &event {
            let kind = msg.kind();
            let (from, to) = (*from, *to);
            self.emit(
                to,
                EventKind::Deliver {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    msg: kind,
                    query: msg.attribution(),
                },
            );
        }

        {
            let mut ctx = Context {
                now: self.now,
                node: node_id,
                topology: &self.topology,
                commands: &mut commands,
                sink: &mut *self.sink,
            };
            let node = &mut self.nodes[node_id.index()];
            match event {
                Event::Start { .. } => node.on_start(&mut ctx),
                Event::Deliver { from, msg, .. } => {
                    self.metrics.messages_delivered += 1;
                    node.on_message(&mut ctx, from, msg)
                }
                Event::Timer { tag, .. } => node.on_timer(&mut ctx, tag),
                Event::External { ext, .. } => node.on_external(&mut ctx, ext),
                Event::LinkFree { .. } | Event::Fault(_) => unreachable!("handled above"),
            }
        }

        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => self.transmit(node_id, to, msg),
                Command::Timer { at, tag } => self.push(at, Event::Timer { node: node_id, tag }),
            }
        }
        true
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let node_blocked =
            self.medium == MediumMode::HalfDuplexTx && self.node_tx_busy[from.index()] > 0;
        let link = self.links.entry((from, to)).or_default();
        if link.busy || node_blocked {
            if msg.background() {
                link.background.push_back(msg);
            } else {
                link.foreground.push_back(msg);
            }
        } else {
            self.start_transmission(from, to, msg);
        }
    }

    /// Begins clocking `msg` onto the (idle) link `from → to`.
    fn start_transmission(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let Some(spec) = self.topology.link(from, to) else {
            // Context::try_send checks adjacency, so this is unreachable
            // from well-formed command streams; degrade to a counted drop
            // rather than a panic (same policy as the send path).
            debug_assert!(false, "transmission on non-existent link {from}->{to}");
            self.metrics.messages_lost += 1;
            self.emit(
                from,
                EventKind::Drop {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    reason: "not-neighbor",
                },
            );
            return;
        };
        let bytes = msg.wire_size();
        let depart = self.now + spec.transmission_time(bytes);
        self.links.entry((from, to)).or_default().busy = true;
        self.node_tx_busy[from.index()] += 1;
        self.metrics.record_send(from, to, bytes, msg.kind());
        self.emit(
            from,
            EventKind::Transmit {
                from: from.index() as u32,
                to: to.index() as u32,
                msg: msg.kind(),
                bytes,
                background: msg.background(),
                query: msg.attribution(),
            },
        );
        let lost = spec.loss > 0.0 && self.rng.gen::<f64>() < spec.loss;
        if !lost {
            let arrival = depart + spec.latency;
            self.push(arrival, Event::Deliver { to, from, msg });
        } else {
            self.metrics.messages_lost += 1;
            self.emit(
                from,
                EventKind::Loss {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    msg: msg.kind(),
                    bytes,
                    query: msg.attribution(),
                },
            );
        }
        self.push(depart, Event::LinkFree { from, to });
    }

    /// The link finished a transmission: start the next waiting message —
    /// foreground strictly before background. Under [`MediumMode::HalfDuplexTx`]
    /// the freed *radio* may serve any of the node's outgoing links
    /// (foreground anywhere beats background anywhere; ties go to the
    /// lowest-numbered neighbor for determinism).
    fn link_freed(&mut self, from: NodeId, to: NodeId) {
        self.links.entry((from, to)).or_default().busy = false;
        self.node_tx_busy[from.index()] = self.node_tx_busy[from.index()].saturating_sub(1);
        match self.medium {
            MediumMode::FullDuplex => {
                let link = self.links.entry((from, to)).or_default();
                let next = link
                    .foreground
                    .pop_front()
                    .or_else(|| link.background.pop_front());
                if let Some(msg) = next {
                    self.start_transmission(from, to, msg);
                }
            }
            MediumMode::HalfDuplexTx => {
                if self.node_tx_busy[from.index()] > 0 {
                    return; // radio already claimed again
                }
                let neighbors: Vec<NodeId> = self.topology.neighbors(from).collect();
                // Foreground from any link first, then background.
                for foreground in [true, false] {
                    for &nb in &neighbors {
                        let Some(link) = self.links.get_mut(&(from, nb)) else {
                            continue;
                        };
                        if link.busy {
                            continue;
                        }
                        let next = if foreground {
                            link.foreground.pop_front()
                        } else {
                            link.background.pop_front()
                        };
                        if let Some(msg) = next {
                            self.start_transmission(from, nb, msg);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Runs until the event queue drains. Returns the number of events
    /// processed by this call.
    ///
    /// # Panics
    ///
    /// Panics after 100 million events as a runaway-protocol backstop; use
    /// [`Simulator::run_until`] for open-ended workloads.
    pub fn run(&mut self) -> u64 {
        let before = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed < 100_000_000,
                "runaway simulation: 1e8 events processed"
            );
        }
        self.events_processed - before
    }

    /// Runs until simulated time would exceed `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains. Returns the number of
    /// events processed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.events_processed;
        while let Some(head) = self.heap.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed - before
    }
}

#[cfg(test)]
mod tests {
    // Tests capture observations in thread-local RefCells; test code is
    // outside the shard-safety envelope.
    #![allow(clippy::disallowed_types)]

    use super::*;
    use crate::topology::LinkSpec;

    #[derive(Debug, Clone)]
    struct Packet(u64);
    impl WireMessage for Packet {
        fn wire_size(&self) -> u64 {
            self.0
        }
        fn kind(&self) -> &'static str {
            "packet"
        }
    }

    /// Flood protocol: node 0 sends `initial` packets to its neighbor at
    /// start; every receiver re-sends up to `ttl` times.
    struct Echo {
        received_at: Vec<SimTime>,
        bounce: bool,
    }

    impl Protocol for Echo {
        type Msg = Packet;
        type Ext = Packet;

        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            if ctx.node() == NodeId(0) && self.bounce {
                ctx.send(NodeId(1), Packet(125_000)); // 1 s at 1 Mbps
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<'_, Packet>, _from: NodeId, _msg: Packet) {
            self.received_at.push(_ctx.now());
        }

        fn on_external(&mut self, ctx: &mut Context<'_, Packet>, ext: Packet) {
            if let Some(next) = ctx.next_hop_toward(NodeId(0)) {
                if next != ctx.node() {
                    ctx.send(next, ext);
                }
            }
        }
    }

    fn echo(bounce: bool) -> Echo {
        Echo {
            received_at: Vec::new(),
            bounce,
        }
    }

    #[test]
    fn transfer_time_includes_tx_and_latency() {
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        sim.run();
        let rx = &sim.node(NodeId(1)).received_at;
        assert_eq!(rx.len(), 1);
        // 125000 B * 8 / 1 Mbps = 1 s, + 1 ms latency.
        assert_eq!(rx[0], SimTime::from_millis(1001));
        assert_eq!(sim.metrics().bytes_sent, 125_000);
        assert_eq!(sim.metrics().kind("packet").count, 1);
    }

    #[test]
    fn fifo_link_serializes_transmissions() {
        struct Burst;
        impl Protocol for Burst {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    // Two 0.5 s packets back to back.
                    ctx.send(NodeId(1), Packet(62_500));
                    ctx.send(NodeId(1), Packet(62_500));
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Packet>, _: NodeId, _: Packet) {
                ARRIVALS.with(|a| a.borrow_mut().push(ctx.now()));
            }
        }
        thread_local! {
            static ARRIVALS: std::cell::RefCell<Vec<SimTime>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        ARRIVALS.with(|a| a.borrow_mut().clear());
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Burst, Burst], 1);
        sim.run();
        ARRIVALS.with(|a| {
            let arr = a.borrow();
            assert_eq!(arr.len(), 2);
            // Second transmission waits for the first to clear the link.
            assert_eq!(arr[0], SimTime::from_millis(501));
            assert_eq!(arr[1], SimTime::from_millis(1001));
        });
    }

    #[test]
    fn external_events_are_delivered() {
        let topo = Topology::line(3, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(false), echo(false), echo(false)], 1);
        // Node 2 receives an external packet and forwards toward node 0.
        sim.schedule_external(SimTime::from_secs(1), NodeId(2), Packet(1000));
        sim.run();
        assert_eq!(sim.node(NodeId(1)).received_at.len(), 1);
        assert!(sim.node(NodeId(1)).received_at[0] > SimTime::from_secs(1));
    }

    #[test]
    fn down_node_drops_messages() {
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        sim.set_node_up(NodeId(1), false);
        sim.run();
        assert_eq!(sim.node(NodeId(1)).received_at.len(), 0);
        assert_eq!(sim.metrics().messages_dropped, 1);
        // Bytes were still consumed on the medium.
        assert_eq!(sim.metrics().bytes_sent, 125_000);
    }

    #[test]
    fn lossy_link_drops_but_charges_bandwidth() {
        struct Spam;
        impl Protocol for Spam {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    for _ in 0..100 {
                        ctx.send(NodeId(1), Packet(100));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
        }
        let mut topo = Topology::new(2);
        topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1().loss(0.5));
        topo.rebuild_routes();
        let mut sim = Simulator::new(topo, vec![Spam, Spam], 42);
        sim.run();
        let m = sim.metrics();
        assert_eq!(m.messages_sent, 100);
        assert_eq!(m.bytes_sent, 10_000);
        assert!(
            m.messages_lost > 20 && m.messages_lost < 80,
            "lost {}",
            m.messages_lost
        );
        assert_eq!(m.messages_lost + m.messages_delivered, 100);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut topo = Topology::new(2);
            topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1().loss(0.3));
            topo.rebuild_routes();
            let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], seed);
            sim.run();
            (sim.metrics().messages_lost, sim.events_processed())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct TimerChain;
        impl Protocol for TimerChain {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, tag: u64) {
                ctx.set_timer(SimDuration::from_secs(1), tag + 1);
            }
        }
        let topo = Topology::line(1, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![TimerChain], 1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // start + timers at 1..=5.
        assert_eq!(sim.events_processed(), 6);
        // Queue still holds the timer at t=6.
        assert!(sim.step());
    }

    #[test]
    fn timer_tags_round_trip() {
        struct Tags(Vec<u64>);
        impl Protocol for Tags {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                ctx.set_timer(SimDuration::from_secs(2), 7);
                ctx.set_timer_at(SimTime::from_secs(1), 3);
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, Packet>, tag: u64) {
                self.0.push(tag);
            }
        }
        let topo = Topology::line(1, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Tags(Vec::new())], 1);
        sim.run();
        assert_eq!(sim.node(NodeId(0)).0, vec![3, 7]);
    }

    // The debug assertion stays so DES tests catch routing bugs loudly;
    // release builds degrade to a typed error (next test).
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(2), Packet(1));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
        }
        let topo = Topology::line(3, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Bad, Bad, Bad], 1);
        sim.run();
    }

    #[test]
    fn try_send_to_non_neighbor_returns_typed_error() {
        struct Probe {
            err: Option<SendError>,
        }
        impl Protocol for Probe {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    self.err = ctx.try_send(NodeId(2), Packet(1)).err();
                    // The adjacent hop still works after the failed send.
                    ctx.try_send(NodeId(1), Packet(2)).unwrap();
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
        }
        let topo = Topology::line(3, LinkSpec::mbps1());
        let nodes = (0..3).map(|_| Probe { err: None }).collect();
        let mut sim = Simulator::new(topo, nodes, 1);
        sim.run();
        assert_eq!(
            sim.node(NodeId(0)).err,
            Some(SendError::NotNeighbor {
                from: NodeId(0),
                to: NodeId(2),
            })
        );
        assert_eq!(sim.metrics().messages_delivered, 1);
    }

    #[test]
    fn background_traffic_yields_to_foreground() {
        #[derive(Debug, Clone)]
        struct Tagged(u64, bool); // (bytes, background)
        impl WireMessage for Tagged {
            fn wire_size(&self) -> u64 {
                self.0
            }
            fn background(&self) -> bool {
                self.1
            }
        }
        struct Mixer;
        impl Protocol for Mixer {
            type Msg = Tagged;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
                if ctx.node() == NodeId(0) {
                    // One background blob first, then two foreground packets.
                    ctx.send(NodeId(1), Tagged(125_000, true)); // 1 s
                    ctx.send(NodeId(1), Tagged(62_500, false)); // 0.5 s
                    ctx.send(NodeId(1), Tagged(62_500, false)); // 0.5 s
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, _: NodeId, msg: Tagged) {
                MIXER_LOG.with(|l| l.borrow_mut().push((ctx.now(), msg.1)));
            }
        }
        thread_local! {
            static MIXER_LOG: std::cell::RefCell<Vec<(SimTime, bool)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        MIXER_LOG.with(|l| l.borrow_mut().clear());
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Mixer, Mixer], 1);
        sim.run();
        MIXER_LOG.with(|l| {
            let log = l.borrow();
            assert_eq!(log.len(), 3);
            // All three arrived at start together; the background blob was
            // already in flight (non-preemptive), but the two foreground
            // packets overtake any *queued* background work. Since the blob
            // started first (queue order), it arrives first; had it been
            // queued behind, it would arrive last — exercise that too:
            assert!(log.iter().filter(|(_, bg)| *bg).count() == 1);
        });

        // Second shape: foreground first, then background + foreground mix.
        struct Mixer2;
        impl Protocol for Mixer2 {
            type Msg = Tagged;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Tagged(62_500, false)); // starts now
                    ctx.send(NodeId(1), Tagged(125_000, true)); // queued bg
                    ctx.send(NodeId(1), Tagged(62_500, false)); // queued fg
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, _: NodeId, msg: Tagged) {
                MIXER2_LOG.with(|l| l.borrow_mut().push((ctx.now(), msg.1)));
            }
        }
        thread_local! {
            static MIXER2_LOG: std::cell::RefCell<Vec<(SimTime, bool)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        MIXER2_LOG.with(|l| l.borrow_mut().clear());
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Mixer2, Mixer2], 1);
        sim.run();
        MIXER2_LOG.with(|l| {
            let log = l.borrow();
            assert_eq!(log.len(), 3);
            // The queued foreground packet overtakes the queued background
            // blob: arrival order fg, fg, bg.
            assert!(
                !log[0].1 && !log[1].1 && log[2].1,
                "expected fg,fg,bg got {log:?}"
            );
        });
    }

    #[test]
    fn half_duplex_serializes_a_nodes_transmissions() {
        struct Fanout;
        impl Protocol for Fanout {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Packet(125_000)); // 1 s each
                    ctx.send(NodeId(2), Packet(125_000));
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Packet>, _: NodeId, _: Packet) {
                FANOUT_LOG.with(|l| l.borrow_mut().push((ctx.node(), ctx.now())));
            }
        }
        thread_local! {
            static FANOUT_LOG: std::cell::RefCell<Vec<(NodeId, SimTime)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let run = |medium: MediumMode| -> Vec<(NodeId, SimTime)> {
            FANOUT_LOG.with(|l| l.borrow_mut().clear());
            let topo = Topology::star(3, LinkSpec::mbps1());
            let mut sim = Simulator::new(topo, vec![Fanout, Fanout, Fanout], 1);
            sim.set_medium(medium);
            sim.run();
            FANOUT_LOG.with(|l| l.borrow().clone())
        };
        // Full duplex: both transfers run concurrently, arriving together.
        let full = run(MediumMode::FullDuplex);
        assert_eq!(full.len(), 2);
        assert_eq!(full[0].1, SimTime::from_millis(1001));
        assert_eq!(full[1].1, SimTime::from_millis(1001));
        // Half duplex: one radio — the second transfer waits a full second.
        let half = run(MediumMode::HalfDuplexTx);
        assert_eq!(half.len(), 2);
        assert_eq!(half[0].1, SimTime::from_millis(1001));
        assert_eq!(half[1].1, SimTime::from_millis(2001));
    }

    #[test]
    #[allow(deprecated)]
    fn trace_records_transmissions() {
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        sim.enable_trace(16);
        sim.run();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].from, NodeId(0));
        assert_eq!(trace[0].to, NodeId(1));
        assert_eq!(trace[0].bytes, 125_000);
        assert_eq!(trace[0].kind, "packet");
        assert!(!trace[0].background);
        // Taking the trace clears it.
        assert!(sim.take_trace().is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn trace_respects_cap() {
        struct Burst2;
        impl Protocol for Burst2 {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    for _ in 0..10 {
                        ctx.send(NodeId(1), Packet(10));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
        }
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Burst2, Burst2], 1);
        sim.enable_trace(3);
        sim.run();
        assert_eq!(sim.take_trace().len(), 3);
    }

    #[test]
    fn sink_records_link_layer_lifecycle() {
        use dde_obs::{MemorySink, SharedSink};
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        let shared = SharedSink::new(MemorySink::new());
        sim.set_sink(Box::new(shared.clone()));
        sim.run();
        let records = shared.with(|s| s.take());
        let kinds: Vec<&'static str> = records.iter().map(|r| r.kind.kind_name()).collect();
        // One transmission at t=0, delivered after tx + latency.
        assert_eq!(kinds, vec!["transmit", "deliver"]);
        assert_eq!(records[0].node, 0);
        assert_eq!(records[1].node, 1);
        assert_eq!(records[1].at, SimTime::from_millis(1001));
    }

    #[test]
    fn sink_records_fault_lifecycle() {
        use dde_obs::{MemorySink, SharedSink};
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        let mut faults = FaultSchedule::new();
        faults.crash_at(SimTime::from_millis(500), NodeId(1));
        faults.recover_at(SimTime::from_secs(5), NodeId(1));
        sim.install_faults(&faults);
        let shared = SharedSink::new(MemorySink::new());
        sim.set_sink(Box::new(shared.clone()));
        sim.run();
        let kinds: Vec<&'static str> =
            shared.with(|s| s.events().iter().map(|r| r.kind.kind_name()).collect());
        // transmit at t=0, crash at 0.5s, arrival dropped at 1.001s,
        // recovery at 5s.
        assert_eq!(kinds, vec!["transmit", "fault", "drop", "fault"]);
    }

    #[test]
    fn message_conservation_after_drain() {
        // After the queue drains: sent = delivered + lost + dropped.
        let mut topo = Topology::new(3);
        topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1().loss(0.4));
        topo.add_link(NodeId(1), NodeId(2), LinkSpec::mbps1());
        topo.rebuild_routes();
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = Packet;
            type Ext = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                let me = ctx.node();
                let targets: Vec<NodeId> = ctx.topology().neighbors(me).collect();
                for t in targets {
                    for _ in 0..20 {
                        ctx.send(t, Packet(500));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
        }
        let mut sim = Simulator::new(topo, vec![Chatter, Chatter, Chatter], 11);
        sim.set_node_up(NodeId(2), false);
        sim.run();
        let m = sim.metrics();
        assert_eq!(
            m.messages_sent,
            m.messages_delivered + m.messages_lost + m.messages_dropped,
            "conservation: {m:?}"
        );
    }

    #[test]
    fn into_nodes_returns_state() {
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        sim.run();
        let nodes = sim.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].received_at.len(), 1);
    }

    #[test]
    fn empty_fault_schedule_is_a_strict_noop() {
        let run = |install: bool| {
            let mut topo = Topology::new(2);
            topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1().loss(0.3));
            topo.rebuild_routes();
            let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 9);
            if install {
                sim.install_faults(&FaultSchedule::new());
            }
            sim.run();
            (
                sim.metrics().messages_sent,
                sim.metrics().messages_lost,
                sim.metrics().messages_delivered,
                sim.events_processed(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn crashed_node_drops_deliveries_and_attributes_fault() {
        // Node 0 starts a 1 s transfer at t=0; node 1 crashes at t=0.5 s,
        // so the message (arriving at 1.001 s) is dropped as a fault.
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false)], 1);
        let mut faults = FaultSchedule::new();
        faults.crash_at(SimTime::from_millis(500), NodeId(1));
        sim.install_faults(&faults);
        sim.run();
        assert_eq!(sim.node(NodeId(1)).received_at.len(), 0);
        assert_eq!(sim.metrics().messages_dropped, 1);
        assert_eq!(sim.metrics().messages_dropped_by_fault, 1);
        // Bandwidth was still consumed: the tail had already radiated.
        assert_eq!(sim.metrics().bytes_sent, 125_000);
    }

    #[test]
    fn crash_purges_queued_traffic_and_recovery_restores_processing() {
        struct Burst3;
        impl Protocol for Burst3 {
            type Msg = Packet;
            type Ext = Packet;
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                if ctx.node() == NodeId(0) {
                    // Four 1 s packets: one in flight, three queued.
                    for _ in 0..4 {
                        ctx.send(NodeId(1), Packet(125_000));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
            fn on_external(&mut self, ctx: &mut Context<'_, Packet>, ext: Packet) {
                ctx.send(NodeId(1), ext);
            }
        }
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Burst3, Burst3], 1);
        let mut faults = FaultSchedule::new();
        // Sender crashes mid-first-transmission, recovers later.
        faults.crash_at(SimTime::from_millis(500), NodeId(0));
        faults.recover_at(SimTime::from_secs(10), NodeId(0));
        sim.install_faults(&faults);
        // After recovery, an external triggers one more send — it flows.
        sim.schedule_external(SimTime::from_secs(11), NodeId(0), Packet(1000));
        sim.run();
        let m = sim.metrics();
        assert_eq!(m.messages_purged_by_fault, 3, "queued packets purged");
        // In-flight packet + post-recovery packet were sent and delivered.
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.messages_delivered, 2);
        assert_eq!(
            m.messages_sent,
            m.messages_delivered + m.messages_lost + m.messages_dropped
        );
    }

    #[test]
    fn link_down_purges_reroutes_and_drops_in_flight() {
        // Triangle: 0-1 direct plus 0-2-1 detour. Kill 0-1 mid-flight.
        let mut topo = Topology::new(3);
        topo.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
        topo.add_link(NodeId(0), NodeId(2), LinkSpec::mbps1());
        topo.add_link(NodeId(2), NodeId(1), LinkSpec::mbps1());
        topo.rebuild_routes();
        let mut sim = Simulator::new(topo, vec![echo(true), echo(false), echo(false)], 1);
        let mut faults = FaultSchedule::new();
        faults.link_down_at(SimTime::from_millis(500), NodeId(0), NodeId(1));
        sim.install_faults(&faults);
        sim.run();
        // The in-flight packet (arrival 1.001 s) died with the link.
        assert_eq!(sim.node(NodeId(1)).received_at.len(), 0);
        assert_eq!(sim.metrics().messages_dropped_by_fault, 1);
        // Routing now detours through node 2.
        assert_eq!(
            sim.topology().next_hop(NodeId(0), NodeId(1)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn link_up_restores_routes() {
        let topo = Topology::line(3, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![echo(false), echo(false), echo(false)], 1);
        let mut faults = FaultSchedule::new();
        faults.link_down_at(SimTime::from_secs(1), NodeId(1), NodeId(2));
        faults.link_up_at(SimTime::from_secs(2), NodeId(1), NodeId(2));
        sim.install_faults(&faults);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.topology().next_hop(NodeId(0), NodeId(2)), None);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            sim.topology().next_hop(NodeId(0), NodeId(2)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn recovery_invokes_protocol_hook() {
        struct Recover(u32);
        impl Protocol for Recover {
            type Msg = Packet;
            type Ext = ();
            fn on_message(&mut self, _: &mut Context<'_, Packet>, _: NodeId, _: Packet) {}
            fn on_recover(&mut self, ctx: &mut Context<'_, Packet>) {
                self.0 += 1;
                // Recovering protocols may immediately transmit.
                ctx.send(NodeId(1), Packet(10));
            }
        }
        let topo = Topology::line(2, LinkSpec::mbps1());
        let mut sim = Simulator::new(topo, vec![Recover(0), Recover(0)], 1);
        let mut faults = FaultSchedule::new();
        faults.crash_at(SimTime::from_secs(1), NodeId(0));
        faults.recover_at(SimTime::from_secs(2), NodeId(0));
        sim.install_faults(&faults);
        sim.run();
        assert_eq!(sim.node(NodeId(0)).0, 1);
        assert_eq!(sim.metrics().messages_delivered, 1);
    }
}

//! Conservative parallel discrete-event simulation over topology regions.
//!
//! [`ShardedSimulator`] partitions the topology into regions
//! ([`crate::partition`]), pins each region to a worker thread, and
//! advances the whole simulation in **barrier windows**: every window
//! `[start, end)` starts at the globally earliest pending event and ends
//! at `start + lookahead` (clamped by the next scheduled fault and the
//! caller's deadline), where the lookahead is the minimum latency over any
//! boundary link. A message crossing a region boundary departs no earlier
//! than `start` and spends at least the lookahead in flight, so it cannot
//! arrive inside the window that produced it — each region can process its
//! window independently and boundary deliveries are exchanged at the
//! barrier.
//!
//! # Why a given seed is byte-identical for any thread count
//!
//! Thread interleaving influences nothing observable:
//!
//! - **Event order.** Each region's heap orders events by
//!   `(time, `[`EventKey`]`)`, where the key is derived from simulation
//!   state only (event class, owning node/link, a per-owner occurrence
//!   counter) — never from a global insertion sequence. Restricting the
//!   global `(time, key)` order to one region's events yields the same
//!   relative order under any partitioning, and handlers only touch their
//!   own node's state and their own node's outgoing links, so cross-node
//!   order within a window is immaterial.
//! - **Trace order.** Records are tagged with a [`MergeKey`] (timestamp,
//!   event key, per-event emission index) and sorted per window by
//!   [`ShardMerger`] before reaching the caller's sink.
//! - **Loss sampling.** Instead of a shared RNG (whose draw order would
//!   depend on the partition), loss is a counter-based hash of
//!   `(seed, link, transmission index)` — stateless and
//!   partition-independent.
//! - **Faults.** The coordinator owns the master topology and applies all
//!   faults scheduled for an instant atomically at a barrier, then ships
//!   purge/recover side effects to the owning regions. (This batching is a
//!   deliberate, documented deviation from [`crate::sim::Simulator`],
//!   which interleaves same-instant faults with route rebuilds one at a
//!   time — so a sharded run is seed-stable across *its own* thread
//!   counts, not byte-identical to the classic engine.)
//! - **Metrics.** Per-region counters are pure sums, folded with
//!   [`Metrics::absorb`].

use crate::fault::{FaultEvent, FaultSchedule};
use crate::metrics::Metrics;
use crate::partition::Partition;
use crate::sim::{Command, Context, LinkState, MediumMode, Protocol, WireMessage};
use crate::topology::{NodeId, Topology};
use dde_logic::time::{SimDuration, SimTime};
use dde_obs::merge::{MergeKey, ShardMerger};
use dde_obs::{EventKind, NullSink, Sink, TraceRecord};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::mpsc;
use std::sync::Arc;

/// Event class ranks: at equal timestamps, classes dispatch in this order.
const CLASS_START: u64 = 0;
const CLASS_FAULT: u64 = 1;
const CLASS_EXTERNAL: u64 = 2;
const CLASS_TIMER: u64 = 3;
const CLASS_LINK_FREE: u64 = 4;
const CLASS_DELIVER: u64 = 5;

/// A stable, partition-independent identity for a scheduled event.
///
/// Same-timestamp events order by this key instead of a heap insertion
/// sequence, so the dispatch order is a property of the *simulation*, not
/// of which thread inserted what first. Identity components per class:
///
/// | class       | `a`          | `b`            | `c`                  |
/// |-------------|--------------|----------------|----------------------|
/// | start       | node         | 0              | 0                    |
/// | fault       | install idx  | purge from + 1 | purge to / node + 1  |
/// | external    | install idx  | 0              | 0                    |
/// | timer       | node         | per-node seq   | 0                    |
/// | link-free   | from         | to             | per-link tx seq      |
/// | deliver     | from         | to             | per-link tx seq      |
///
/// Every counter involved (timer seq, tx seq, install idx) is owned by a
/// single node, link, or the coordinator, so its values do not depend on
/// the partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Event class rank (see the table above).
    pub class: u64,
    /// First identity component.
    pub a: u64,
    /// Second identity component.
    pub b: u64,
    /// Third identity component.
    pub c: u64,
}

impl EventKey {
    fn merge_key(&self, at: SimTime, emit: u64) -> MergeKey {
        [at.as_micros(), self.class, self.a, self.b, self.c, emit]
    }

    /// Key for a node's start event.
    pub fn start(node: NodeId) -> EventKey {
        EventKey {
            class: CLASS_START,
            a: node.index() as u64,
            b: 0,
            c: 0,
        }
    }

    /// Key for a coordinator-side fault record, identified by install
    /// index alone.
    pub fn fault_global(idx: u64) -> EventKey {
        EventKey {
            class: CLASS_FAULT,
            a: idx,
            b: 0,
            c: 0,
        }
    }

    /// Key for a delegated link-purge fault action.
    pub fn fault_purge(idx: u64, from: NodeId, to: NodeId) -> EventKey {
        EventKey {
            class: CLASS_FAULT,
            a: idx,
            b: from.index() as u64 + 1,
            c: to.index() as u64 + 1,
        }
    }

    /// Key for a delegated node-recovery fault action.
    pub fn fault_recover(idx: u64, node: NodeId) -> EventKey {
        EventKey {
            class: CLASS_FAULT,
            a: idx,
            b: 0,
            c: node.index() as u64 + 1,
        }
    }

    /// Key for an external stimulus, identified by install index.
    pub fn external(idx: u64) -> EventKey {
        EventKey {
            class: CLASS_EXTERNAL,
            a: idx,
            b: 0,
            c: 0,
        }
    }

    /// Key for a node-owned timer, identified by the per-node sequence.
    pub fn timer(node: NodeId, seq: u64) -> EventKey {
        EventKey {
            class: CLASS_TIMER,
            a: node.index() as u64,
            b: seq,
            c: 0,
        }
    }

    /// Key for a link-free event, identified by the per-link
    /// transmission sequence.
    pub fn link_free(from: NodeId, to: NodeId, txn: u64) -> EventKey {
        EventKey {
            class: CLASS_LINK_FREE,
            a: from.index() as u64,
            b: to.index() as u64,
            c: txn,
        }
    }

    /// Key for a message delivery, identified by the per-link
    /// transmission sequence.
    pub fn deliver(from: NodeId, to: NodeId, txn: u64) -> EventKey {
        EventKey {
            class: CLASS_DELIVER,
            a: from.index() as u64,
            b: to.index() as u64,
            c: txn,
        }
    }
}

/// Stateless counter-based loss draw in `[0, 1)`: a splitmix64 chain over
/// `(seed, from, to, transmission index)`.
fn loss_unit(seed: u64, from: NodeId, to: NodeId, txn: u64) -> f64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut h = mix(seed);
    h = mix(h ^ from.index() as u64);
    h = mix(h ^ to.index() as u64);
    h = mix(h ^ txn);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

enum REvent<P: Protocol> {
    Start {
        node: NodeId,
    },
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: P::Msg,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    External {
        node: NodeId,
        ext: P::Ext,
    },
    LinkFree {
        from: NodeId,
        to: NodeId,
    },
}

struct RScheduled<P: Protocol> {
    at: SimTime,
    key: EventKey,
    event: REvent<P>,
}

impl<P: Protocol> PartialEq for RScheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<P: Protocol> Eq for RScheduled<P> {}
impl<P: Protocol> PartialOrd for RScheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Protocol> Ord for RScheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// A region-local sink that tags every record with the merge key of the
/// event being dispatched, buffering for the barrier merge.
#[derive(Default)]
struct KeyedSink {
    enabled: bool,
    at: SimTime,
    key: EventKey,
    emit: u64,
    out: Vec<(MergeKey, TraceRecord)>,
}

impl KeyedSink {
    fn begin(&mut self, at: SimTime, key: EventKey) {
        self.at = at;
        self.key = key;
        self.emit = 0;
    }
}

impl Sink for KeyedSink {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, rec: &TraceRecord) {
        let key = self.key.merge_key(self.at, self.emit);
        self.emit += 1;
        self.out.push((key, rec.clone()));
    }
}

/// A boundary delivery in flight between regions.
struct CrossDeliver<M> {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    txn: u64,
    msg: M,
}

/// A fault side effect the coordinator delegates to the owning region.
enum FaultAction {
    /// Clear the never-sent queues of the directed link `from → to`.
    Purge { idx: u64, from: NodeId, to: NodeId },
    /// Run [`Protocol::on_recover`] on `node`.
    Recover { idx: u64, node: NodeId },
}

/// One barrier window's worth of work for a region.
struct WindowCmd<P: Protocol> {
    start: SimTime,
    /// Exclusive upper bound on event timestamps this window.
    end: SimTime,
    topology: Arc<Topology>,
    node_up: Arc<Vec<bool>>,
    actions: Vec<FaultAction>,
    inbox: Vec<CrossDeliver<P::Msg>>,
}

/// A region's results for one window.
struct WindowOut<M> {
    region: u32,
    outbox: Vec<CrossDeliver<M>>,
    trace: Vec<(MergeKey, TraceRecord)>,
    next_at: Option<SimTime>,
    events: u64,
}

/// One topology region: the nodes it owns, their outgoing link
/// transmitters, and a stable-key event heap.
struct Region<P: Protocol> {
    id: u32,
    topology: Arc<Topology>,
    node_up: Arc<Vec<bool>>,
    region_of: Arc<Vec<u32>>,
    /// Indexed by global node id; `Some` only for nodes this region owns.
    nodes: Vec<Option<P>>,
    heap: BinaryHeap<RScheduled<P>>,
    links: BTreeMap<(NodeId, NodeId), LinkState<P::Msg>>,
    node_tx_busy: Vec<u32>,
    timer_seq: Vec<u64>,
    tx_seq: BTreeMap<(NodeId, NodeId), u64>,
    metrics: Metrics,
    sink: KeyedSink,
    outbox: Vec<CrossDeliver<P::Msg>>,
    now: SimTime,
    window_end: SimTime,
    events: u64,
    medium: MediumMode,
    seed: u64,
}

impl<P: Protocol> Region<P> {
    fn emit(&mut self, node: NodeId, kind: EventKind) {
        if self.sink.enabled {
            self.sink.record(&TraceRecord {
                at: self.now,
                node: node.index() as u32,
                kind,
            });
        }
    }

    fn run_window(&mut self, mut cmd: WindowCmd<P>) -> WindowOut<P::Msg> {
        self.topology = cmd.topology;
        self.node_up = cmd.node_up;
        self.window_end = cmd.end;
        self.events = 0;
        if self.now < cmd.start {
            self.now = cmd.start;
        }
        for action in cmd.actions {
            self.apply_action(cmd.start, action);
        }
        // Inbox batches are concatenated in region order by the
        // coordinator; re-sorting by the stable identity makes the heap's
        // input independent of that assembly order (R8). Dispatch order is
        // already fixed by the heap's `(at, key)` ordering either way.
        cmd.inbox
            .sort_by_key(|m| (m.at, m.from.index(), m.to.index(), m.txn));
        for inc in cmd.inbox {
            debug_assert!(inc.at >= cmd.start, "boundary delivery arrived late");
            self.heap.push(RScheduled {
                at: inc.at,
                key: EventKey::deliver(inc.from, inc.to, inc.txn),
                event: REvent::Deliver {
                    to: inc.to,
                    from: inc.from,
                    msg: inc.msg,
                },
            });
        }
        while self
            .heap
            .peek()
            .is_some_and(|head| head.at < self.window_end)
        {
            let scheduled = self.heap.pop().expect("peeked entry exists"); // lint: allow(panic) — peek above guarantees an entry
            self.step(scheduled);
        }
        WindowOut {
            region: self.id,
            outbox: std::mem::take(&mut self.outbox),
            trace: std::mem::take(&mut self.sink.out),
            next_at: self.heap.peek().map(|head| head.at),
            events: self.events,
        }
    }

    fn apply_action(&mut self, at: SimTime, action: FaultAction) {
        debug_assert!(at >= self.now);
        self.now = at;
        match action {
            FaultAction::Purge { idx, from, to } => {
                self.sink.begin(at, EventKey::fault_purge(idx, from, to));
                self.purge_link_queues(from, to);
            }
            FaultAction::Recover { idx, node } => {
                self.sink.begin(at, EventKey::fault_recover(idx, node));
                let mut commands = Vec::new();
                {
                    let mut ctx = Context::new(
                        self.now,
                        node,
                        &self.topology,
                        &mut commands,
                        &mut self.sink,
                    );
                    self.nodes[node.index()]
                        .as_mut()
                        .expect("recover action routed to the owning region") // lint: allow(panic) — coordinator routes by region_of
                        .on_recover(&mut ctx);
                }
                self.process_commands(node, commands);
            }
        }
    }

    fn step(&mut self, scheduled: RScheduled<P>) {
        let RScheduled { at, key, event } = scheduled;
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events += 1;
        self.sink.begin(at, key);

        if let REvent::LinkFree { from, to } = event {
            self.link_freed(from, to);
            return;
        }
        let node_id = match &event {
            REvent::Start { node } | REvent::Timer { node, .. } | REvent::External { node, .. } => {
                *node
            }
            REvent::Deliver { to, .. } => *to,
            REvent::LinkFree { .. } => unreachable!("handled above"),
        };
        if let REvent::Deliver { from, to, .. } = &event {
            // The link went down (by fault) while the message was in
            // flight: it never arrives.
            if !self.topology.is_link_enabled(*from, *to) {
                self.metrics.messages_dropped += 1;
                self.metrics.messages_dropped_by_fault += 1;
                let (from, to) = (*from, *to);
                self.emit(
                    to,
                    EventKind::Drop {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        reason: "link-down",
                    },
                );
                return;
            }
        }
        if !self.node_up[node_id.index()] {
            if let REvent::Deliver { from, to, .. } = &event {
                self.metrics.messages_dropped += 1;
                if !self.topology.is_node_enabled(node_id) {
                    self.metrics.messages_dropped_by_fault += 1;
                }
                let (from, to) = (*from, *to);
                self.emit(
                    to,
                    EventKind::Drop {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        reason: "node-down",
                    },
                );
            }
            return;
        }
        if let REvent::Deliver { from, to, msg } = &event {
            let kind = msg.kind();
            let (from, to) = (*from, *to);
            self.emit(
                to,
                EventKind::Deliver {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    msg: kind,
                    query: msg.attribution(),
                },
            );
        }

        let mut commands = Vec::new();
        {
            let mut ctx = Context::new(
                self.now,
                node_id,
                &self.topology,
                &mut commands,
                &mut self.sink,
            );
            let node = self.nodes[node_id.index()]
                .as_mut()
                .expect("event dispatched to a node this region owns"); // lint: allow(panic) — scheduling routes by region_of
            match event {
                REvent::Start { .. } => node.on_start(&mut ctx),
                REvent::Deliver { from, msg, .. } => {
                    self.metrics.messages_delivered += 1;
                    node.on_message(&mut ctx, from, msg)
                }
                REvent::Timer { tag, .. } => node.on_timer(&mut ctx, tag),
                REvent::External { ext, .. } => node.on_external(&mut ctx, ext),
                REvent::LinkFree { .. } => unreachable!("handled above"),
            }
        }
        self.process_commands(node_id, commands);
    }

    fn process_commands(&mut self, node_id: NodeId, commands: Vec<Command<P::Msg>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => self.transmit(node_id, to, msg),
                Command::Timer { at, tag } => {
                    let seq = self.timer_seq[node_id.index()];
                    self.timer_seq[node_id.index()] += 1;
                    self.heap.push(RScheduled {
                        at,
                        key: EventKey::timer(node_id, seq),
                        event: REvent::Timer { node: node_id, tag },
                    });
                }
            }
        }
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let node_blocked =
            self.medium == MediumMode::HalfDuplexTx && self.node_tx_busy[from.index()] > 0;
        let link = self.links.entry((from, to)).or_default();
        if link.busy || node_blocked {
            if msg.background() {
                link.background.push_back(msg);
            } else {
                link.foreground.push_back(msg);
            }
        } else {
            self.start_transmission(from, to, msg);
        }
    }

    fn start_transmission(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let Some(spec) = self.topology.link(from, to) else {
            // Context::try_send checks adjacency, so this is unreachable
            // from well-formed command streams; degrade to a counted drop
            // rather than a panic (same policy as the sequential engine).
            debug_assert!(false, "transmission on non-existent link {from}->{to}");
            self.metrics.messages_lost += 1;
            self.emit(
                from,
                EventKind::Drop {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    reason: "not-neighbor",
                },
            );
            return;
        };
        let bytes = msg.wire_size();
        let depart = self.now + spec.transmission_time(bytes);
        self.links.entry((from, to)).or_default().busy = true;
        self.node_tx_busy[from.index()] += 1;
        self.metrics.record_send(from, to, bytes, msg.kind());
        self.emit(
            from,
            EventKind::Transmit {
                from: from.index() as u32,
                to: to.index() as u32,
                msg: msg.kind(),
                bytes,
                background: msg.background(),
                query: msg.attribution(),
            },
        );
        let txn = {
            let counter = self.tx_seq.entry((from, to)).or_insert(0);
            let txn = *counter;
            *counter += 1;
            txn
        };
        let lost = spec.loss > 0.0 && loss_unit(self.seed, from, to, txn) < spec.loss;
        if !lost {
            let arrival = depart + spec.latency;
            if self.region_of[to.index()] == self.id {
                self.heap.push(RScheduled {
                    at: arrival,
                    key: EventKey::deliver(from, to, txn),
                    event: REvent::Deliver { to, from, msg },
                });
            } else {
                // Conservative lookahead at work: a boundary delivery can
                // never land inside the window that produced it.
                debug_assert!(arrival >= self.window_end, "lookahead violation");
                self.outbox.push(CrossDeliver {
                    at: arrival,
                    from,
                    to,
                    txn,
                    msg,
                });
            }
        } else {
            self.metrics.messages_lost += 1;
            self.emit(
                from,
                EventKind::Loss {
                    from: from.index() as u32,
                    to: to.index() as u32,
                    msg: msg.kind(),
                    bytes,
                    query: msg.attribution(),
                },
            );
        }
        self.heap.push(RScheduled {
            at: depart,
            key: EventKey::link_free(from, to, txn),
            event: REvent::LinkFree { from, to },
        });
    }

    fn link_freed(&mut self, from: NodeId, to: NodeId) {
        self.links.entry((from, to)).or_default().busy = false;
        self.node_tx_busy[from.index()] = self.node_tx_busy[from.index()].saturating_sub(1);
        match self.medium {
            MediumMode::FullDuplex => {
                let link = self.links.entry((from, to)).or_default();
                let next = link
                    .foreground
                    .pop_front()
                    .or_else(|| link.background.pop_front());
                if let Some(msg) = next {
                    self.start_transmission(from, to, msg);
                }
            }
            MediumMode::HalfDuplexTx => {
                if self.node_tx_busy[from.index()] > 0 {
                    return; // radio already claimed again
                }
                let neighbors: Vec<NodeId> = self.topology.neighbors(from).collect();
                // Foreground from any link first, then background.
                for foreground in [true, false] {
                    for &nb in &neighbors {
                        let Some(link) = self.links.get_mut(&(from, nb)) else {
                            continue;
                        };
                        if link.busy {
                            continue;
                        }
                        let next = if foreground {
                            link.foreground.pop_front()
                        } else {
                            link.background.pop_front()
                        };
                        if let Some(msg) = next {
                            self.start_transmission(from, nb, msg);
                            return;
                        }
                    }
                }
            }
        }
    }

    fn purge_link_queues(&mut self, from: NodeId, to: NodeId) {
        if let Some(link) = self.links.get_mut(&(from, to)) {
            let purged = (link.foreground.len() + link.background.len()) as u64;
            link.foreground.clear();
            link.background.clear();
            self.metrics.messages_purged_by_fault += purged;
            if purged > 0 {
                self.emit(
                    from,
                    EventKind::Purge {
                        from: from.index() as u32,
                        to: to.index() as u32,
                        count: purged,
                    },
                );
            }
        }
    }
}

/// A fault installed by the coordinator, in global install order.
struct InstalledFault {
    at: SimTime,
    idx: u64,
    event: FaultEvent,
}

/// The sharded conservative parallel simulator.
///
/// Drop-in counterpart of [`crate::sim::Simulator`] for pre-scheduled
/// workloads: construct, `set_medium`/`set_sink`, `install_faults`,
/// `schedule_external`, then [`run_until`](ShardedSimulator::run_until).
/// With `threads == 1` everything runs inline on the calling thread; with
/// more threads each region runs on its own scoped worker for the duration
/// of the run.
pub struct ShardedSimulator<P: Protocol> {
    topology: Arc<Topology>,
    node_up: Arc<Vec<bool>>,
    partition: Partition,
    regions: Vec<Region<P>>,
    inboxes: Vec<Vec<CrossDeliver<P::Msg>>>,
    faults: Vec<InstalledFault>,
    fault_cursor: usize,
    fault_seq: u64,
    ext_seq: u64,
    now: SimTime,
    events_processed: u64,
    merger: ShardMerger,
    sink: Box<dyn Sink>,
    medium: MediumMode,
}

impl<P: Protocol> std::fmt::Debug for ShardedSimulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("regions", &self.regions.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> ShardedSimulator<P> {
    /// Creates a sharded simulator over `topology` with one protocol
    /// instance per node, partitioned into (at most) `threads` regions.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topology.len()`, on an empty topology, or
    /// if a boundary link has zero latency (no conservative lookahead).
    pub fn new(mut topology: Topology, nodes: Vec<P>, seed: u64, threads: usize) -> Self {
        assert_eq!(
            nodes.len(),
            topology.len(),
            "need exactly one protocol instance per topology node"
        );
        topology.ensure_routes();
        let partition = Partition::build(&topology, threads.max(1), seed);
        let n = nodes.len();
        let topology = Arc::new(topology);
        let node_up = Arc::new(vec![true; n]);
        let region_of = Arc::new(partition.region_map().to_vec());
        let mut slots: Vec<Option<P>> = nodes.into_iter().map(Some).collect();
        let mut regions = Vec::with_capacity(partition.count());
        for r in 0..partition.count() {
            let mut owned: Vec<Option<P>> = (0..n).map(|_| None).collect();
            let mut heap = BinaryHeap::new();
            for node in partition.nodes_in(r) {
                owned[node.index()] = slots[node.index()].take();
                heap.push(RScheduled {
                    at: SimTime::ZERO,
                    key: EventKey::start(*node),
                    event: REvent::Start { node: *node },
                });
            }
            regions.push(Region {
                id: r as u32,
                topology: Arc::clone(&topology),
                node_up: Arc::clone(&node_up),
                region_of: Arc::clone(&region_of),
                nodes: owned,
                heap,
                links: BTreeMap::new(),
                node_tx_busy: vec![0; n],
                timer_seq: vec![0; n],
                tx_seq: BTreeMap::new(),
                metrics: Metrics::new(),
                sink: KeyedSink::default(),
                outbox: Vec::new(),
                now: SimTime::ZERO,
                window_end: SimTime::ZERO,
                events: 0,
                medium: MediumMode::FullDuplex,
                seed,
            });
        }
        let inboxes = (0..regions.len()).map(|_| Vec::new()).collect();
        ShardedSimulator {
            topology,
            node_up,
            partition,
            regions,
            inboxes,
            faults: Vec::new(),
            fault_cursor: 0,
            fault_seq: 0,
            ext_seq: 0,
            now: SimTime::ZERO,
            events_processed: 0,
            merger: ShardMerger::new(),
            sink: Box::new(NullSink),
            medium: MediumMode::FullDuplex,
        }
    }

    /// The partition driving this run (region layout and lookahead).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of regions (== effective worker threads).
    pub fn threads(&self) -> usize {
        self.partition.count()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far (region events plus one per
    /// installed fault transition).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Aggregated traffic counters, folded over all regions.
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::new();
        for region in &self.regions {
            total.absorb(&region.metrics);
        }
        total
    }

    /// The topology the simulation runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Selects how node transmitters share the medium. Must be called
    /// before any traffic flows.
    pub fn set_medium(&mut self, medium: MediumMode) {
        debug_assert_eq!(self.metrics().messages_sent, 0, "set_medium before traffic");
        self.medium = medium;
        for region in &mut self.regions {
            region.medium = medium;
        }
    }

    /// Installs a trace sink. Records reach it strictly ordered by merge
    /// key (timestamp first), once per barrier window.
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.sink = sink;
    }

    /// The active trace sink (e.g. to flush it after a run).
    pub fn sink_mut(&mut self) -> &mut dyn Sink {
        &mut *self.sink
    }

    /// Removes and returns the active sink, restoring the null sink.
    pub fn take_sink(&mut self) -> Box<dyn Sink> {
        std::mem::replace(&mut self.sink, Box::new(NullSink))
    }

    /// Schedules an external stimulus (e.g. a user query) for `node` at
    /// absolute time `at`. Externals dispatch in install order at equal
    /// timestamps, exactly like the classic engine's insertion rule.
    pub fn schedule_external(&mut self, at: SimTime, node: NodeId, ext: P::Ext) {
        assert!(node.index() < self.node_up.len(), "node out of range");
        let at = at.max(self.now);
        let idx = self.ext_seq;
        self.ext_seq += 1;
        let region = self.partition.region_of(node);
        self.regions[region].heap.push(RScheduled {
            at,
            key: EventKey::external(idx),
            event: REvent::External { node, ext },
        });
    }

    /// Installs every event of a [`FaultSchedule`]. All faults scheduled
    /// for one instant are applied atomically at a barrier, in install
    /// order, before any same-instant protocol events run.
    ///
    /// May be called multiple times **before** the run; schedules merge in
    /// `(time, install order)`.
    ///
    /// # Panics
    ///
    /// Panics if called after the run started, if any event is scheduled
    /// in the past, or if one names an unknown node or link.
    pub fn install_faults(&mut self, schedule: &FaultSchedule) {
        assert_eq!(
            self.fault_cursor, 0,
            "install_faults before running the sharded simulator"
        );
        for f in schedule.events() {
            assert!(f.at >= self.now, "fault scheduled in the past: {f:?}");
            let valid = |n: NodeId| n.index() < self.node_up.len();
            match f.event {
                FaultEvent::NodeCrash(n) | FaultEvent::NodeRecover(n) => {
                    assert!(valid(n), "fault names unknown node {n}");
                }
                FaultEvent::LinkDown(a, b) | FaultEvent::LinkUp(a, b) => {
                    assert!(valid(a) && valid(b), "fault names unknown link {a}-{b}");
                    assert!(
                        self.topology.has_link(a, b),
                        "fault names non-existent link {a}-{b}"
                    );
                }
            }
            let idx = self.fault_seq;
            self.fault_seq += 1;
            self.faults.push(InstalledFault {
                at: f.at,
                idx,
                event: f.event,
            });
        }
        // Stable by time; install order breaks ties (idx is append order,
        // and sort_by is stable).
        self.faults.sort_by_key(|f| f.at);
    }

    /// Emits a coordinator-side fault record into the merge buffer.
    fn emit_fault(&mut self, at: SimTime, idx: u64, node: NodeId, kind: EventKind) {
        if self.sink.enabled() {
            let key = EventKey::fault_global(idx);
            self.merger.push(
                key.merge_key(at, 0),
                TraceRecord {
                    at,
                    node: node.index() as u32,
                    kind,
                },
            );
        }
    }

    /// Applies every fault scheduled for instant `at` to the master
    /// topology/up-state, returning per-region side-effect actions.
    fn apply_fault_batch(&mut self, at: SimTime) -> Vec<Vec<FaultAction>> {
        // Size by the partition, not `self.regions`: the threaded driver
        // lends the regions out to workers, leaving `self.regions` empty.
        let mut actions: Vec<Vec<FaultAction>> =
            (0..self.partition.count()).map(|_| Vec::new()).collect();
        let mut topo = (*self.topology).clone();
        let mut up = (*self.node_up).clone();
        while self
            .faults
            .get(self.fault_cursor)
            .is_some_and(|f| f.at == at)
        {
            let InstalledFault { idx, event, .. } = self.faults[self.fault_cursor];
            self.fault_cursor += 1;
            self.events_processed += 1;
            match event {
                FaultEvent::NodeCrash(n) => {
                    if !up[n.index()] {
                        continue; // already down: idempotent
                    }
                    self.emit_fault(
                        at,
                        idx,
                        n,
                        EventKind::Fault {
                            fault: "node-crash",
                            node: n.index() as u32,
                            peer: None,
                        },
                    );
                    up[n.index()] = false;
                    topo.set_node_enabled(n, false);
                    topo.rebuild_routes();
                    let neighbors: Vec<NodeId> = topo.neighbors(n).collect();
                    let region = self.partition.region_of(n);
                    for nb in neighbors {
                        actions[region].push(FaultAction::Purge {
                            idx,
                            from: n,
                            to: nb,
                        });
                    }
                }
                FaultEvent::NodeRecover(n) => {
                    if up[n.index()] {
                        continue; // already up: idempotent
                    }
                    self.emit_fault(
                        at,
                        idx,
                        n,
                        EventKind::Fault {
                            fault: "node-recover",
                            node: n.index() as u32,
                            peer: None,
                        },
                    );
                    up[n.index()] = true;
                    topo.set_node_enabled(n, true);
                    topo.rebuild_routes();
                    actions[self.partition.region_of(n)]
                        .push(FaultAction::Recover { idx, node: n });
                }
                FaultEvent::LinkDown(a, b) => {
                    if topo.set_link_enabled(a, b, false) {
                        self.emit_fault(
                            at,
                            idx,
                            a,
                            EventKind::Fault {
                                fault: "link-down",
                                node: a.index() as u32,
                                peer: Some(b.index() as u32),
                            },
                        );
                        topo.rebuild_routes();
                        actions[self.partition.region_of(a)].push(FaultAction::Purge {
                            idx,
                            from: a,
                            to: b,
                        });
                        actions[self.partition.region_of(b)].push(FaultAction::Purge {
                            idx,
                            from: b,
                            to: a,
                        });
                    }
                }
                FaultEvent::LinkUp(a, b) => {
                    if topo.set_link_enabled(a, b, true) {
                        self.emit_fault(
                            at,
                            idx,
                            a,
                            EventKind::Fault {
                                fault: "link-up",
                                node: a.index() as u32,
                                peer: Some(b.index() as u32),
                            },
                        );
                        topo.rebuild_routes();
                    }
                }
            }
        }
        self.topology = Arc::new(topo);
        self.node_up = Arc::new(up);
        actions
    }

    /// Plans the next barrier window: picks `[start, end)`, applies any
    /// faults at `start`, and assembles one [`WindowCmd`] per region.
    /// Returns `None` when nothing remains before `deadline`.
    fn plan_window(
        &mut self,
        deadline: Option<SimTime>,
        region_next: &[Option<SimTime>],
    ) -> Option<Vec<WindowCmd<P>>> {
        let regions_min = region_next.iter().flatten().min().copied();
        let inbox_min = self.inboxes.iter().flatten().map(|c| c.at).min();
        let fault_next = self.faults.get(self.fault_cursor).map(|f| f.at);
        let start = [regions_min, inbox_min, fault_next]
            .into_iter()
            .flatten()
            .min()?;
        if deadline.is_some_and(|d| start > d) {
            return None;
        }
        debug_assert!(start >= self.now, "window start went backwards");
        self.now = start;

        let actions = if fault_next == Some(start) {
            self.apply_fault_batch(start)
        } else {
            // Partition count, not `self.regions.len()`: the threaded
            // driver lends the regions out while planning windows.
            (0..self.partition.count()).map(|_| Vec::new()).collect()
        };

        // Window end: the tightest of lookahead, the next fault barrier,
        // and the caller's deadline (inclusive, hence + 1µs).
        let mut end = SimTime::MAX;
        if self.partition.count() > 1 {
            if let Some(lookahead) = self.partition.lookahead() {
                end = end.min(start.saturating_add(lookahead));
            }
        }
        if let Some(f) = self.faults.get(self.fault_cursor) {
            end = end.min(f.at);
        }
        if let Some(d) = deadline {
            end = end.min(d.saturating_add(SimDuration::from_micros(1)));
        }
        debug_assert!(end > start, "empty barrier window");

        let mut actions = actions;
        let cmds = (0..self.partition.count())
            .map(|r| WindowCmd {
                start,
                end,
                topology: Arc::clone(&self.topology),
                node_up: Arc::clone(&self.node_up),
                actions: std::mem::take(&mut actions[r]),
                inbox: std::mem::take(&mut self.inboxes[r]),
            })
            .collect();
        Some(cmds)
    }

    /// Folds one region's window output back into coordinator state.
    fn collect_out(&mut self, mut out: WindowOut<P::Msg>, region_next: &mut [Option<SimTime>]) {
        region_next[out.region as usize] = out.next_at;
        self.events_processed += out.events;
        // One region's outbox is produced in its own deterministic event
        // order, but sorting by the stable delivery identity here means
        // the inbox contents never depend on emission order at all (R8).
        out.outbox
            .sort_by_key(|m| (m.at, m.from.index(), m.to.index(), m.txn));
        for cd in out.outbox {
            let region = self.partition.region_of(cd.to);
            self.inboxes[region].push(cd);
        }
        self.merger.absorb(out.trace);
    }
}

impl<P: Protocol + Send> ShardedSimulator<P>
where
    P::Msg: Send,
    P::Ext: Send,
{
    /// Runs until the event queue drains. Returns the number of events
    /// processed by this call.
    ///
    /// # Panics
    ///
    /// Panics after 100 million events as a runaway-protocol backstop; use
    /// [`run_until`](ShardedSimulator::run_until) for open-ended
    /// workloads.
    pub fn run(&mut self) -> u64 {
        self.run_until_opt(None)
    }

    /// Runs until simulated time would exceed `deadline` (events at
    /// exactly `deadline` are processed) or the queue drains. Returns the
    /// number of events processed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.run_until_opt(Some(deadline))
    }

    fn run_until_opt(&mut self, deadline: Option<SimTime>) -> u64 {
        let before = self.events_processed;
        let enabled = self.sink.enabled();
        for region in &mut self.regions {
            region.sink.enabled = enabled;
        }
        if self.regions.len() == 1 {
            self.run_windows_inline(deadline);
        } else {
            self.run_windows_threaded(deadline);
        }
        if let Some(d) = deadline {
            if self.now < d {
                self.now = d;
            }
        }
        self.events_processed - before
    }

    fn run_windows_inline(&mut self, deadline: Option<SimTime>) {
        loop {
            let region_next: Vec<Option<SimTime>> = self
                .regions
                .iter()
                .map(|r| r.heap.peek().map(|h| h.at))
                .collect();
            let mut region_next = region_next;
            let Some(cmds) = self.plan_window(deadline, &region_next) else {
                break;
            };
            for (r, cmd) in cmds.into_iter().enumerate() {
                let out = self.regions[r].run_window(cmd);
                self.collect_out(out, &mut region_next);
            }
            self.merger.flush_into(&mut *self.sink);
            assert!(
                self.events_processed < 100_000_000,
                "runaway simulation: 1e8 events processed"
            );
        }
    }

    fn run_windows_threaded(&mut self, deadline: Option<SimTime>) {
        let regions = std::mem::take(&mut self.regions);
        let count = regions.len();
        let mut region_next: Vec<Option<SimTime>> = regions
            .iter()
            .map(|r| r.heap.peek().map(|h| h.at))
            .collect();
        let (out_tx, out_rx) = mpsc::channel::<WindowOut<P::Msg>>();
        let mut returned = std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(count);
            let mut handles = Vec::with_capacity(count);
            for mut region in regions {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WindowCmd<P>>();
                cmd_txs.push(cmd_tx);
                let out_tx = out_tx.clone();
                handles.push(scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        let out = region.run_window(cmd);
                        if out_tx.send(out).is_err() {
                            break;
                        }
                    }
                    region
                }));
            }
            loop {
                let Some(cmds) = self.plan_window(deadline, &region_next) else {
                    break;
                };
                // One command per worker, or the recv loop below would
                // wait forever on a window nobody was asked to run.
                assert_eq!(cmds.len(), count, "window command per region");
                for (tx, cmd) in cmd_txs.iter().zip(cmds) {
                    tx.send(cmd).expect("region worker alive"); // lint: allow(panic) — workers outlive the loop by construction
                }
                for _ in 0..count {
                    let out = out_rx.recv().expect("region worker result"); // lint: allow(panic) — each worker sends exactly one result per window
                    self.collect_out(out, &mut region_next);
                }
                self.merger.flush_into(&mut *self.sink);
                assert!(
                    self.events_processed < 100_000_000,
                    "runaway simulation: 1e8 events processed"
                );
            }
            drop(cmd_txs);
            handles
                .into_iter()
                .map(|h| h.join().expect("region worker panicked")) // lint: allow(panic) — a worker panic is already fatal
                .collect::<Vec<_>>()
        });
        // Workers were spawned and joined in region order.
        debug_assert!(returned.iter().enumerate().all(|(i, r)| r.id as usize == i));
        self.regions = std::mem::take(&mut returned);
    }
}

impl<P: Protocol> ShardedSimulator<P> {
    /// Shared access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        self.regions[self.partition.region_of(id)].nodes[id.index()]
            .as_ref()
            .expect("region owns its partition's nodes") // lint: allow(panic) — construction places every node
    }

    /// Exclusive access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        let region = self.partition.region_of(id);
        self.regions[region].nodes[id.index()]
            .as_mut()
            .expect("region owns its partition's nodes") // lint: allow(panic) — construction places every node
    }

    /// Iterates over all protocol instances in global node-id order.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        (0..self.node_up.len()).map(move |i| self.node(NodeId(i)))
    }

    /// Consumes the simulator, returning the protocol instances in global
    /// node-id order.
    pub fn into_nodes(mut self) -> Vec<P> {
        let mut out = Vec::with_capacity(self.node_up.len());
        for i in 0..self.node_up.len() {
            let region = self.partition.region_of(NodeId(i));
            out.push(
                self.regions[region].nodes[i]
                    .take()
                    .expect("region owns its partition's nodes"), // lint: allow(panic) — construction places every node
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::topology::LinkSpec;

    #[derive(Debug, Clone)]
    struct Ball {
        hops: u32,
    }
    impl WireMessage for Ball {
        fn wire_size(&self) -> u64 {
            100
        }
        fn kind(&self) -> &'static str {
            "ball"
        }
    }

    /// Forwards a token around: node 0 serves, everyone echoes until the
    /// hop budget is spent.
    struct Echo {
        seen: u32,
        budget: u32,
    }
    impl Protocol for Echo {
        type Msg = Ball;
        type Ext = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
            if ctx.node() == NodeId(0) {
                let peers: Vec<NodeId> = ctx.topology().neighbors(NodeId(0)).collect();
                for p in peers {
                    ctx.send(p, Ball { hops: 0 });
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, msg: Ball) {
            self.seen += 1;
            if msg.hops < self.budget {
                ctx.send(from, Ball { hops: msg.hops + 1 });
            }
        }
        fn on_external(&mut self, ctx: &mut Context<'_, Ball>, hops: u32) {
            let node = ctx.node();
            let peers: Vec<NodeId> = ctx.topology().neighbors(node).collect();
            for p in peers {
                ctx.send(p, Ball { hops });
            }
        }
    }

    fn echo_nodes(n: usize, budget: u32) -> Vec<Echo> {
        (0..n).map(|_| Echo { seen: 0, budget }).collect()
    }

    fn ring_topology(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n {
            t.add_link(NodeId(i), NodeId((i + 1) % n), LinkSpec::mbps1());
        }
        t
    }

    /// A full observable signature of a run: trace bytes via a memory
    /// sink, plus the aggregate counters.
    fn sharded_signature(threads: usize, seed: u64) -> (Vec<TraceRecord>, Metrics, u64, Vec<u32>) {
        let topo = ring_topology(8);
        let mut sim = ShardedSimulator::new(topo, echo_nodes(8, 6), seed, threads);
        let shared = dde_obs::SharedSink::new(dde_obs::MemorySink::new());
        let handle = shared.clone();
        sim.set_sink(Box::new(shared));
        sim.schedule_external(SimTime::from_millis(5), NodeId(3), 2);
        sim.run_until(SimTime::from_secs(5));
        let events = sim.events_processed();
        let metrics = sim.metrics();
        let seen: Vec<u32> = sim.nodes().map(|n| n.seen).collect();
        (handle.with(|m| m.events().to_vec()), metrics, events, seen)
    }

    #[test]
    fn identical_across_thread_counts() {
        let (trace1, metrics1, events1, seen1) = sharded_signature(1, 7);
        assert!(!trace1.is_empty());
        for threads in [2, 3, 4, 8] {
            let (trace, metrics, events, seen) = sharded_signature(threads, 7);
            assert_eq!(trace, trace1, "trace differs at {threads} threads");
            assert_eq!(events, events1, "event count differs at {threads} threads");
            assert_eq!(seen, seen1, "node state differs at {threads} threads");
            assert_eq!(metrics.messages_sent, metrics1.messages_sent);
            assert_eq!(metrics.messages_delivered, metrics1.messages_delivered);
            assert_eq!(metrics.bytes_sent, metrics1.bytes_sent);
        }
    }

    #[test]
    fn matches_classic_on_quiescent_workload() {
        // The sharded engine is not byte-compatible with the classic one
        // (stable keys vs. insertion order), but on a workload whose final
        // state is order-insensitive the aggregate results must agree.
        let topo = ring_topology(6);
        let mut classic = Simulator::new(topo.clone(), echo_nodes(6, 4), 3);
        classic.run();
        for threads in [1, 4] {
            let mut sharded = ShardedSimulator::new(topo.clone(), echo_nodes(6, 4), 3, threads);
            sharded.run();
            assert_eq!(
                sharded.metrics().messages_delivered,
                classic.metrics().messages_delivered
            );
            assert_eq!(sharded.metrics().bytes_sent, classic.metrics().bytes_sent);
            let a: Vec<u32> = sharded.nodes().map(|n| n.seen).collect();
            let b: Vec<u32> = classic.nodes().map(|n| n.seen).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn faults_are_identical_across_thread_counts() {
        let run = |threads: usize| {
            let topo = ring_topology(8);
            let mut sim = ShardedSimulator::new(topo, echo_nodes(8, 40), 9, threads);
            let shared = dde_obs::SharedSink::new(dde_obs::MemorySink::new());
            let handle = shared.clone();
            sim.set_sink(Box::new(shared));
            let mut faults = FaultSchedule::new();
            faults.crash_at(SimTime::from_millis(20), NodeId(2));
            faults.recover_at(SimTime::from_millis(400), NodeId(2));
            faults.link_down_at(SimTime::from_millis(30), NodeId(5), NodeId(6));
            faults.link_up_at(SimTime::from_millis(500), NodeId(5), NodeId(6));
            sim.install_faults(&faults);
            sim.run_until(SimTime::from_secs(2));
            (
                handle.with(|m| m.events().to_vec()),
                sim.events_processed(),
                sim.metrics().messages_dropped_by_fault,
                sim.metrics().messages_purged_by_fault,
            )
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "fault run differs at {threads} threads");
        }
    }

    #[test]
    fn region_queue_order_is_insertion_independent() {
        // Satellite check: same-timestamp events pop in stable-key order
        // no matter the order they were pushed in — unlike a `(time, seq)`
        // heap, whose tie-break is the insertion sequence itself.
        let at = SimTime::from_millis(1);
        let keys = [
            EventKey {
                class: CLASS_DELIVER,
                a: 1,
                b: 2,
                c: 0,
            },
            EventKey {
                class: CLASS_TIMER,
                a: 4,
                b: 0,
                c: 0,
            },
            EventKey {
                class: CLASS_EXTERNAL,
                a: 0,
                b: 0,
                c: 0,
            },
            EventKey {
                class: CLASS_LINK_FREE,
                a: 1,
                b: 2,
                c: 0,
            },
        ];
        let pop_order = |insert: &[usize]| {
            let mut heap: BinaryHeap<RScheduled<Echo>> = BinaryHeap::new();
            for &i in insert {
                heap.push(RScheduled {
                    at,
                    key: keys[i],
                    event: REvent::Timer {
                        node: NodeId(0),
                        tag: i as u64,
                    },
                });
            }
            let mut order = Vec::new();
            while let Some(s) = heap.pop() {
                order.push(s.key);
            }
            order
        };
        let a = pop_order(&[0, 1, 2, 3]);
        let b = pop_order(&[3, 2, 1, 0]);
        let c = pop_order(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And the order is the key order: external < timer < link-free <
        // deliver at one instant.
        let mut sorted = keys.to_vec();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn loss_hash_is_deterministic_and_uniform_ish() {
        let a = loss_unit(7, NodeId(1), NodeId(2), 0);
        assert_eq!(a, loss_unit(7, NodeId(1), NodeId(2), 0));
        assert_ne!(a, loss_unit(7, NodeId(1), NodeId(2), 1));
        assert_ne!(a, loss_unit(8, NodeId(1), NodeId(2), 0));
        let draws: Vec<f64> = (0..1000)
            .map(|i| loss_unit(1, NodeId(0), NodeId(1), i))
            .collect();
        assert!(draws.iter().all(|d| (0.0..1.0).contains(d)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn lossy_links_are_seed_stable_across_thread_counts() {
        let run = |threads: usize| {
            let mut topo = Topology::new(4);
            for i in 0..3 {
                topo.add_link(NodeId(i), NodeId(i + 1), LinkSpec::mbps1().loss(0.3));
            }
            let mut sim = ShardedSimulator::new(topo, echo_nodes(4, 30), 11, threads);
            sim.run_until(SimTime::from_secs(2));
            (
                sim.metrics().messages_lost,
                sim.metrics().messages_delivered,
            )
        };
        let base = run(1);
        assert!(base.0 > 0, "losses should occur at 30%");
        for threads in [2, 4] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    fn half_duplex_matches_classic_counters() {
        let topo = Topology::star(5, LinkSpec::mbps1());
        let mut classic = Simulator::new(topo.clone(), echo_nodes(5, 10), 2);
        classic.set_medium(MediumMode::HalfDuplexTx);
        classic.run();
        for threads in [1, 3] {
            let mut sharded = ShardedSimulator::new(topo.clone(), echo_nodes(5, 10), 2, threads);
            sharded.set_medium(MediumMode::HalfDuplexTx);
            sharded.run();
            assert_eq!(
                sharded.metrics().messages_delivered,
                classic.metrics().messages_delivered
            );
            assert_eq!(sharded.metrics().bytes_sent, classic.metrics().bytes_sent);
        }
    }
}

//! Deterministic fault injection: node churn and link outages.
//!
//! A [`FaultSchedule`] is a seeded, replayable timeline of
//! [`FaultEvent`]s that the [`Simulator`](crate::sim::Simulator) applies
//! at exact simulated instants. Because the schedule is plain data built
//! ahead of a run (optionally from a seeded generator such as
//! [`FaultSchedule::uniform_churn`]), the same schedule plus the same
//! simulation seed reproduces the same run bit-for-bit — faults included.
//! An **empty** schedule leaves the simulator's behavior untouched.
//!
//! The paper's motivating scenarios (§I, disaster response) assume nodes
//! and links that come and go; this module is the measurement instrument
//! for how gracefully each retrieval strategy degrades under that churn.

use crate::topology::{NodeId, Topology};
use dde_logic::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A single fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEvent {
    /// The node halts: it stops processing events and all traffic queued
    /// at or addressed to it is dropped.
    NodeCrash(NodeId),
    /// The node comes back up and resumes processing.
    NodeRecover(NodeId),
    /// The (undirected) link between the two nodes stops carrying traffic.
    LinkDown(NodeId, NodeId),
    /// The link is restored.
    LinkUp(NodeId, NodeId),
}

/// A [`FaultEvent`] stamped with the instant at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimedFault {
    /// When the transition takes effect.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// A replayable timeline of fault events.
///
/// Events are kept sorted by time; events at the same instant apply in
/// insertion order. Schedules are plain data — [`Clone`], [`PartialEq`] —
/// so a run's fault plan can be stored alongside its seed and replayed.
///
/// # Examples
///
/// ```
/// use dde_netsim::fault::{FaultEvent, FaultSchedule};
/// use dde_netsim::topology::NodeId;
/// use dde_logic::time::SimTime;
///
/// let mut faults = FaultSchedule::new();
/// faults.crash_at(SimTime::from_secs(2), NodeId(3));
/// faults.recover_at(SimTime::from_secs(5), NodeId(3));
/// assert_eq!(faults.len(), 2);
/// assert_eq!(faults.events()[0].event, FaultEvent::NodeCrash(NodeId(3)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// Creates an empty schedule (a strict no-op when installed).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// `true` if the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in firing order (time-sorted, stable for ties).
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Adds an event, keeping the timeline time-sorted. Events with equal
    /// timestamps retain their insertion order.
    pub fn push(&mut self, at: SimTime, event: FaultEvent) -> &mut Self {
        let idx = self.events.partition_point(|f| f.at <= at);
        self.events.insert(idx, TimedFault { at, event });
        self
    }

    /// Schedules a node crash.
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultEvent::NodeCrash(node))
    }

    /// Schedules a node recovery.
    pub fn recover_at(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultEvent::NodeRecover(node))
    }

    /// Schedules a link outage.
    pub fn link_down_at(&mut self, at: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.push(at, FaultEvent::LinkDown(a, b))
    }

    /// Schedules a link restoration.
    pub fn link_up_at(&mut self, at: SimTime, a: NodeId, b: NodeId) -> &mut Self {
        self.push(at, FaultEvent::LinkUp(a, b))
    }

    /// Appends every event of `other`, keeping the result time-sorted.
    pub fn merge(&mut self, other: &FaultSchedule) -> &mut Self {
        for f in &other.events {
            self.push(f.at, f.event);
        }
        self
    }

    /// The instant of the last scheduled event, if any.
    pub fn last_event_at(&self) -> Option<SimTime> {
        self.events.last().map(|f| f.at)
    }

    /// Generates a seeded random churn schedule: each of `nodes` nodes
    /// independently crashes with probability `rate` at a uniform instant
    /// in `[0, horizon)` and recovers `downtime` later.
    ///
    /// One crash/recover cycle per churned node keeps the schedule easy to
    /// reason about while still exercising every recovery path; call the
    /// generator multiple times with different seeds and
    /// [`merge`](FaultSchedule::merge) the results for denser churn.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]` or `horizon` is zero while
    /// `rate > 0`.
    pub fn uniform_churn(
        nodes: usize,
        rate: f64,
        horizon: SimTime,
        downtime: SimDuration,
        seed: u64,
    ) -> FaultSchedule {
        assert!((0.0..=1.0).contains(&rate), "churn rate must be in [0,1]");
        let mut schedule = FaultSchedule::new();
        if rate == 0.0 || nodes == 0 {
            return schedule;
        }
        assert!(
            horizon > SimTime::ZERO,
            "churn horizon must be positive when rate > 0"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A5_11FE);
        for n in 0..nodes {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let at = SimTime::from_micros(rng.gen_range(0..horizon.as_micros()));
            schedule.crash_at(at, NodeId(n));
            schedule.recover_at(at.saturating_add(downtime), NodeId(n));
        }
        schedule
    }

    /// Generates a partition at `at`: every physical link with exactly one
    /// endpoint in `side` goes down, splitting the network into `side` and
    /// its complement.
    pub fn partition_at(topology: &Topology, at: SimTime, side: &[NodeId]) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for (a, b) in Self::cut_links(topology, side) {
            schedule.link_down_at(at, a, b);
        }
        schedule
    }

    /// Generates the healing counterpart of [`FaultSchedule::partition_at`]:
    /// every cut-crossing link comes back up at `at`.
    pub fn heal_partition_at(topology: &Topology, at: SimTime, side: &[NodeId]) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for (a, b) in Self::cut_links(topology, side) {
            schedule.link_up_at(at, a, b);
        }
        schedule
    }

    /// Physical links crossing the cut defined by `side`, in canonical
    /// (low, high) order.
    fn cut_links(topology: &Topology, side: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let in_side = |n: NodeId| side.contains(&n);
        let mut links = Vec::new();
        for a in 0..topology.len() {
            let a = NodeId(a);
            for b in topology.neighbors(a) {
                if a.0 < b.0 && in_side(a) != in_side(b) {
                    links.push((a, b));
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    #[test]
    fn push_keeps_time_order_and_ties_stable() {
        let mut s = FaultSchedule::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        s.crash_at(t2, NodeId(0));
        s.crash_at(t1, NodeId(1));
        s.recover_at(t2, NodeId(1)); // same instant as the first push
        let evs: Vec<_> = s.events().iter().map(|f| (f.at, f.event)).collect();
        assert_eq!(
            evs,
            vec![
                (t1, FaultEvent::NodeCrash(NodeId(1))),
                (t2, FaultEvent::NodeCrash(NodeId(0))),
                (t2, FaultEvent::NodeRecover(NodeId(1))),
            ]
        );
        assert_eq!(s.last_event_at(), Some(t2));
    }

    #[test]
    fn uniform_churn_is_reproducible_and_rate_sensitive() {
        let horizon = SimTime::from_secs(30);
        let down = SimDuration::from_secs(5);
        let a = FaultSchedule::uniform_churn(50, 0.3, horizon, down, 7);
        let b = FaultSchedule::uniform_churn(50, 0.3, horizon, down, 7);
        assert_eq!(a, b, "same seed must yield identical schedules");
        let c = FaultSchedule::uniform_churn(50, 0.3, horizon, down, 8);
        assert_ne!(a, c, "different seeds should differ");
        assert!(FaultSchedule::uniform_churn(50, 0.0, horizon, down, 7).is_empty());
        let full = FaultSchedule::uniform_churn(50, 1.0, horizon, down, 7);
        assert_eq!(full.len(), 100, "rate 1.0 churns every node once");
        // Every crash precedes its recovery and falls within the horizon.
        for f in full.events() {
            if let FaultEvent::NodeCrash(_) = f.event {
                assert!(f.at < horizon);
            }
        }
    }

    #[test]
    fn partition_covers_exactly_the_cut() {
        let topo = Topology::line(4, LinkSpec::mbps1());
        let at = SimTime::from_secs(3);
        let down = FaultSchedule::partition_at(&topo, at, &[NodeId(0), NodeId(1)]);
        assert_eq!(
            down.events(),
            &[TimedFault {
                at,
                event: FaultEvent::LinkDown(NodeId(1), NodeId(2)),
            }]
        );
        let up =
            FaultSchedule::heal_partition_at(&topo, SimTime::from_secs(6), &[NodeId(0), NodeId(1)]);
        assert_eq!(up.len(), 1);
        assert_eq!(
            up.events()[0].event,
            FaultEvent::LinkUp(NodeId(1), NodeId(2))
        );
    }
}

//! Property tests for the fault-injection subsystem: arbitrary valid
//! fault schedules must leave the simulator terminating, conserving its
//! message accounting, and never routing through a crashed node or a
//! downed link.

use dde_netsim::fault::{FaultEvent, FaultSchedule};
use dde_netsim::prelude::{SimDuration, SimTime};
use dde_netsim::sim::{Context, Protocol, Simulator, WireMessage};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use proptest::prelude::*;

const N: usize = 6;
const HORIZON_MS: u64 = 5_000;

/// A generated fault action: (time ms, kind 0..4, index).
type RawFault = (u64, usize, usize);

/// Interprets raw tuples as a valid schedule over a ring of `N` nodes:
/// node indices wrap, link faults land on real ring edges.
fn schedule_from(raw: &[RawFault]) -> FaultSchedule {
    let mut schedule = FaultSchedule::new();
    for &(ms, kind, idx) in raw {
        let at = SimTime::from_millis(ms);
        let node = NodeId(idx % N);
        let edge = (NodeId(idx % N), NodeId((idx + 1) % N));
        match kind % 4 {
            0 => schedule.push(at, FaultEvent::NodeCrash(node)),
            1 => schedule.push(at, FaultEvent::NodeRecover(node)),
            2 => schedule.push(at, FaultEvent::LinkDown(edge.0, edge.1)),
            _ => schedule.push(at, FaultEvent::LinkUp(edge.0, edge.1)),
        };
    }
    schedule
}

/// A small multi-hop traffic generator: every 100 ms each node picks a few
/// far destinations and routes a packet toward them hop by hop, using the
/// (fault-aware) routing table at every step.
struct Chatter;

#[derive(Debug, Clone)]
struct Packet {
    dst: NodeId,
}

impl WireMessage for Packet {
    fn wire_size(&self) -> u64 {
        2_000
    }
}

impl Protocol for Chatter {
    type Msg = Packet;
    type Ext = ();

    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        ctx.set_timer(SimDuration::from_millis(100), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, _tag: u64) {
        let me = ctx.node();
        for offset in [1usize, N / 2] {
            let dst = NodeId((me.index() + offset) % N);
            if dst != me {
                if let Some(hop) = ctx.next_hop_toward(dst) {
                    ctx.send(hop, Packet { dst });
                }
            }
        }
        if ctx.now() < SimTime::from_millis(HORIZON_MS) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Packet>, _from: NodeId, msg: Packet) {
        if msg.dst != ctx.node() {
            if let Some(hop) = ctx.next_hop_toward(msg.dst) {
                ctx.send(hop, msg);
            }
        }
    }
}

fn raw_faults() -> impl Strategy<Value = Vec<RawFault>> {
    prop::collection::vec((0u64..HORIZON_MS, 0usize..4, 0usize..3 * N), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid schedule terminates and conserves message accounting:
    /// every message sent is eventually delivered, lost on the medium, or
    /// dropped (at a down link/node). Purged-before-send messages are
    /// tracked separately and never counted as sent.
    #[test]
    fn schedules_terminate_and_conserve_messages(raw in raw_faults()) {
        let schedule = schedule_from(&raw);
        let nodes = (0..N).map(|_| Chatter).collect();
        let mut sim = Simulator::new(Topology::ring(N, LinkSpec::mbps1()), nodes, 42);
        sim.install_faults(&schedule);
        sim.run_until(SimTime::from_millis(HORIZON_MS * 2));
        let m = sim.metrics();
        prop_assert_eq!(
            m.messages_sent,
            m.messages_delivered + m.messages_lost + m.messages_dropped,
            "conservation broke: {:?}",
            m
        );
        prop_assert!(m.messages_dropped_by_fault <= m.messages_dropped);
        if schedule.is_empty() {
            prop_assert_eq!(m.messages_dropped_by_fault, 0);
            prop_assert_eq!(m.messages_purged_by_fault, 0);
        }
    }

    /// After every fault transition, the routing table never steers through
    /// a disabled node or link: each hop is enabled end to end.
    #[test]
    fn routes_never_cross_down_elements(raw in raw_faults()) {
        let mut topo = Topology::ring(N, LinkSpec::mbps1());
        for fault in schedule_from(&raw).events() {
            match fault.event {
                FaultEvent::NodeCrash(n) => {
                    topo.set_node_enabled(n, false);
                }
                FaultEvent::NodeRecover(n) => {
                    topo.set_node_enabled(n, true);
                }
                FaultEvent::LinkDown(a, b) => {
                    topo.set_link_enabled(a, b, false);
                }
                FaultEvent::LinkUp(a, b) => {
                    topo.set_link_enabled(a, b, true);
                }
            }
            topo.rebuild_routes();
            for a in topo.nodes() {
                for b in topo.nodes() {
                    if a == b {
                        continue; // self-routes have no hop to validate
                    }
                    let Some(hop) = topo.next_hop(a, b) else { continue };
                    prop_assert!(
                        topo.is_node_enabled(hop),
                        "route {:?}->{:?} goes through down node {:?}", a, b, hop
                    );
                    prop_assert!(
                        topo.is_link_usable(a, hop),
                        "route {:?}->{:?} uses down link {:?}->{:?}", a, b, a, hop
                    );
                    // Full path check: every intermediate hop is alive.
                    if let Some(path) = topo.path(a, b) {
                        for w in path.windows(2) {
                            prop_assert!(topo.is_link_usable(w[0], w[1]));
                        }
                    }
                }
            }
        }
    }

    /// The schedule container itself keeps events time-ordered no matter
    /// the insertion order.
    #[test]
    fn schedule_stays_time_sorted(raw in raw_faults()) {
        let schedule = schedule_from(&raw);
        for w in schedule.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at, "schedule out of order");
        }
        prop_assert_eq!(schedule.len(), raw.len());
    }
}

//! `dde-lint` — the workspace determinism & shard-safety gate.
//!
//! ```text
//! dde-lint [--root DIR] [--config FILE] [--format text|json] [--quiet] [--no-timing]
//! ```
//!
//! Exit codes: `0` clean, `1` violations or stale allows found,
//! `2` usage/IO/parse error.

// The lint CLI itself reads argv and the cwd; it is a tool, not sim code.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_lint::{config::Config, engine, report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    format: Format,
    quiet: bool,
    no_timing: bool,
}

const USAGE: &str =
    "usage: dde-lint [--root DIR] [--config FILE] [--format text|json] [--quiet] [--no-timing]

Parses every workspace source file and enforces the determinism,
panic-safety, and shard-safety rules (R1 no-hash-state,
R2 no-ambient-nondeterminism, R3 float-order, R4 no-panic,
R5 shard-shared-state, R6 attribution-key, R7 stable-event-key,
R8 merge-order). Configuration and per-rule allowlists are read from
lint.toml at the workspace root. Allowlist entries and inline markers
that no longer match any finding are reported as stale and gate the
exit code like violations. --no-timing zeroes the per-rule timing
footer so two runs over identical sources are byte-identical.

exit codes: 0 clean, 1 violations or stale allows, 2 error";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        format: Format::Text,
        quiet: false,
        no_timing: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root requires a value")?));
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a value")?));
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!("--format must be `text` or `json`, got {other:?}"))
                    }
                };
            }
            "--quiet" | "-q" => args.quiet = true,
            "--no-timing" => args.no_timing = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, String> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let p = root.join("lint.toml");
            if !p.is_file() {
                return Ok(Config::default());
            }
            p
        }
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::from_toml_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dde-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("dde-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let cfg = match load_config(&root, args.config.as_deref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dde-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut report = match engine::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dde-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.no_timing {
        report.strip_timing();
    }
    let rendered = match args.format {
        Format::Text => report::render_text(
            &report.diagnostics,
            report.files_scanned,
            &report.stale_allows,
            &report.stats,
        ),
        Format::Json => report::render_json(
            &report.diagnostics,
            report.files_scanned,
            &report.stale_allows,
            &report.stats,
        ),
    };
    if !args.quiet || !report.is_clean() {
        print!("{rendered}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! The rule passes (R1–R8) over a parsed [`SourceFile`].
//!
//! R1–R4 are pure token-pattern scans. The shard-safety passes R5–R8 also
//! consult the file's [`ItemIndex`] — `use` resolution, `impl` spans, and
//! enclosing-`fn` lookup — so they can tell a renamed `Mutex` import from an
//! innocent identifier, a key constructor inside `impl EventKey` from a raw
//! literal outside it, and a sorted merge from an unsorted one.

use crate::config::Config;
use crate::engine::{significant, SourceFile};
use crate::items::ItemIndex;
use crate::report::{AllowSource, Diagnostic, RuleId, RuleStats};
use std::collections::{BTreeMap, BTreeSet};
use syn::{Token, TokenKind};

/// Ambient-nondeterminism method paths flagged by R2, as `TYPE::method`
/// pairs; `None` matches a bare identifier (free fn or import).
const NONDET_PATHS: &[(Option<&str>, &str)] = &[
    (Some("Instant"), "now"),
    (Some("SystemTime"), "now"),
    (None, "thread_rng"),
    (None, "from_entropy"),
    (Some("env"), "var"),
    (Some("env"), "var_os"),
    (Some("env"), "vars"),
    (Some("env"), "args"),
    (Some("env"), "current_dir"),
    (Some("env"), "temp_dir"),
];

struct Finding {
    rule: RuleId,
    tok_idx: usize,
    snippet: String,
    message: String,
}

/// One file's worth of resolved diagnostics, plus which allows earned
/// their keep — the raw material for stale-allow detection.
#[derive(Debug, Default)]
pub struct FileCheck {
    /// Diagnostics in rule-pass order (the engine re-sorts globally).
    pub diagnostics: Vec<Diagnostic>,
    /// Indices into [`SourceFile::markers`] that suppressed a finding.
    pub used_markers: Vec<usize>,
    /// `(rule, entry)` pairs of `lint.toml` allows that suppressed a
    /// finding in this file.
    pub used_config: Vec<(RuleId, String)>,
}

/// Times one rule pass and accumulates its footer stats.
///
/// The wall clock feeds only the (optional) report footer, never a lint
/// decision, so this is exempt from the workspace's own R2/clippy bans.
#[allow(clippy::disallowed_methods)]
fn timed(
    rule: RuleId,
    stats: &mut BTreeMap<RuleId, RuleStats>,
    out: &mut Vec<Finding>,
    pass: impl FnOnce(&mut Vec<Finding>),
) {
    let t0 = std::time::Instant::now();
    pass(out);
    let s = stats.entry(rule).or_default();
    s.files_checked += 1;
    s.micros += t0.elapsed().as_micros() as u64;
}

/// Runs every applicable rule over `file`, resolving inline markers and
/// `lint.toml` allowlist entries into [`Diagnostic::allowed`], and
/// accumulating per-rule footer stats into `stats`.
pub fn check_file(
    file: &SourceFile,
    cfg: &Config,
    stats: &mut BTreeMap<RuleId, RuleStats>,
) -> FileCheck {
    let mut findings = Vec::new();
    if cfg.state_crates.contains(&file.crate_name) {
        timed(RuleId::HashState, stats, &mut findings, |out| {
            rule_hash_state(file, out)
        });
    }
    if !cfg.nondet_exempt_crates.contains(&file.crate_name) {
        timed(RuleId::AmbientNondeterminism, stats, &mut findings, |out| {
            rule_ambient_nondeterminism(file, out)
        });
    }
    timed(RuleId::FloatOrder, stats, &mut findings, |out| {
        rule_float_order(file, out)
    });
    if cfg.library_crates.contains(&file.crate_name) {
        timed(RuleId::Panic, stats, &mut findings, |out| {
            rule_panic(file, out)
        });
    }
    let structural = [
        cfg.shard_state_crates.contains(&file.crate_name),
        cfg.emit_crates.contains(&file.crate_name),
        cfg.event_key_crates.contains(&file.crate_name),
        cfg.merge_crates.contains(&file.crate_name),
    ];
    if structural.iter().any(|&b| b) {
        let index = ItemIndex::build(file.tokens());
        if structural[0] {
            timed(RuleId::ShardSharedState, stats, &mut findings, |out| {
                rule_shard_shared_state(file, &index, out)
            });
        }
        if structural[1] {
            timed(RuleId::AttributionKey, stats, &mut findings, |out| {
                rule_attribution_key(file, &index, out)
            });
        }
        if structural[2] {
            timed(RuleId::StableEventKey, stats, &mut findings, |out| {
                rule_stable_event_key(file, cfg, &index, out)
            });
        }
        if structural[3] {
            timed(RuleId::MergeOrder, stats, &mut findings, |out| {
                rule_merge_order(file, cfg, &index, out)
            });
        }
    }
    let mut check = FileCheck::default();
    check.diagnostics = findings
        .into_iter()
        .map(|f| {
            let tok = &file.tokens()[f.tok_idx];
            let allowed = match file.marker_lookup(f.rule, tok.line) {
                Some((idx, reason)) => {
                    check.used_markers.push(idx);
                    Some(AllowSource::Marker {
                        reason: reason.to_string(),
                    })
                }
                None => cfg.allows(f.rule, &file.path, tok.line).map(|entry| {
                    check.used_config.push((f.rule, entry.to_string()));
                    AllowSource::Config {
                        entry: entry.to_string(),
                    }
                }),
            };
            Diagnostic {
                rule: f.rule,
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                snippet: f.snippet,
                message: f.message,
                allowed,
            }
        })
        .collect();
    check
}

/// R1: any `HashMap`/`HashSet` mention in non-test code of a state crate.
/// Flagging the *type name* (imports included) rather than iteration sites
/// is deliberate: hash-ordered state is a replay hazard the moment it
/// exists, not only once someone iterates it.
fn rule_hash_state(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in file.tokens().iter().enumerate() {
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !file.in_test(i)
        {
            out.push(Finding {
                rule: RuleId::HashState,
                tok_idx: i,
                snippet: t.text.clone(),
                message: format!(
                    "{} iteration order is seeded per instance and breaks \
                     bit-identical replay; simulator state must use \
                     BTreeMap/BTreeSet or an explicitly ordered wrapper",
                    t.text
                ),
            });
        }
    }
}

/// R2: `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`,
/// `env::*` reads in non-test code outside the bench harness.
fn rule_ambient_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        for (qualifier, method) in NONDET_PATHS {
            let hit = match qualifier {
                None => t.text == *method,
                Some(q) => {
                    t.text == *q
                        && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct(":"))
                        && sig.get(s + 2).is_some_and(|&j| toks[j].is_punct(":"))
                        && sig.get(s + 3).is_some_and(|&j| toks[j].is_ident(method))
                }
            };
            if hit {
                let snippet = match qualifier {
                    None => t.text.clone(),
                    Some(q) => format!("{q}::{method}"),
                };
                out.push(Finding {
                    rule: RuleId::AmbientNondeterminism,
                    tok_idx: i,
                    snippet: snippet.clone(),
                    message: format!(
                        "`{snippet}` injects wall-clock/entropy/environment \
                         state into a simulation that must be a pure function \
                         of its seed; thread time through SimTime and \
                         randomness through the seeded SmallRng"
                    ),
                });
                break;
            }
        }
    }
}

/// R3: `.partial_cmp(..)` method calls in non-test code. The common
/// `sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal))` idiom silently maps
/// NaN to `Equal`, so the resulting order depends on input positions —
/// a replay hazard for float-keyed scheduling decisions.
fn rule_float_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
            && s > 0
            && toks[sig[s - 1]].is_punct(".")
            && !file.in_test(i)
        {
            out.push(Finding {
                rule: RuleId::FloatOrder,
                tok_idx: i,
                snippet: ".partial_cmp(..)".to_string(),
                message: "partial_cmp is not a total order over floats (NaN \
                          collapses to Equal, making the result \
                          input-order-dependent); use f64::total_cmp or \
                          dde_lint::total_cmp_f64"
                    .to_string(),
            });
        }
    }
}

/// R4: `.unwrap()` / `.expect(..)` in library non-test code without a
/// `// lint: allow(panic) — <reason>` marker.
fn rule_panic(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || (t.text != "unwrap" && t.text != "expect")
            || file.in_test(i)
        {
            continue;
        }
        let is_method_call = s > 0
            && toks[sig[s - 1]].is_punct(".")
            && sig
                .get(s + 1)
                .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "(");
        if is_method_call {
            out.push(Finding {
                rule: RuleId::Panic,
                tok_idx: i,
                snippet: format!(".{}(..)", t.text),
                message: format!(
                    "`.{}()` can panic in library code; return a typed error, \
                     restructure to make the invariant explicit, or annotate \
                     with `// lint: allow(panic) — <reason>`",
                    t.text
                ),
            });
        }
    }
}

/// Whether a type name is one of R5's shared-mutable-state primitives.
fn is_shared_state_name(name: &str) -> bool {
    matches!(name, "Mutex" | "RwLock" | "Rc" | "RefCell") || name.starts_with("Atomic")
}

/// R5: shared-mutable-state primitives (`Mutex`/`RwLock`/`Atomic*`/`Rc`/
/// `RefCell`/`static mut`/`thread_local!`) in region-pinned shard-state
/// crates. Like R1, the *name* is flagged (imports included) — and the
/// item index unmasks renamed imports (`use std::sync::Mutex as Lock`).
/// Coordinator-owned exchange state goes in `coordinator_allow`.
fn rule_shard_shared_state(file: &SourceFile, index: &ItemIndex, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        if t.text == "thread_local" && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct("!")) {
            out.push(Finding {
                rule: RuleId::ShardSharedState,
                tok_idx: i,
                snippet: "thread_local!".to_string(),
                message: "per-thread state in a region-pinned crate varies with \
                          the worker a shard lands on; keep state inside the \
                          shard struct so placement cannot leak into results"
                    .to_string(),
            });
            continue;
        }
        if t.text == "static" && sig.get(s + 1).is_some_and(|&j| toks[j].is_ident("mut")) {
            out.push(Finding {
                rule: RuleId::ShardSharedState,
                tok_idx: i,
                snippet: "static mut".to_string(),
                message: "`static mut` is process-global mutable state; shard \
                          crates must confine mutation to per-shard structs or \
                          coordinator fault batches"
                    .to_string(),
            });
            continue;
        }
        let resolved = if is_shared_state_name(&t.text) {
            Some(t.text.as_str())
        } else {
            index
                .resolve(&t.text)
                .and_then(|p| p.rsplit("::").next())
                .filter(|last| is_shared_state_name(last))
        };
        if let Some(underlying) = resolved {
            let snippet = if underlying == t.text {
                t.text.clone()
            } else {
                format!("{} (= {})", t.text, underlying)
            };
            out.push(Finding {
                rule: RuleId::ShardSharedState,
                tok_idx: i,
                snippet,
                message: format!(
                    "{underlying} is a shared-mutable-state primitive; \
                     region-pinned shard code must route cross-shard mutation \
                     through the coordinator's fault batches (coordinator-owned \
                     sites go in rules.shard-shared-state.coordinator_allow)"
                ),
            });
        }
    }
}

/// The wire-level record variants whose constructions R6 audits.
const WIRE_VARIANTS: &[&str] = &["Transmit", "Deliver", "Loss"];

/// Whether the depth-1 field list opening at significant-index `open`
/// contains a `..` rest (two adjacent `.` puncts), marking a match
/// *pattern* (or struct-update) rather than a plain construction.
fn brace_body_has_rest(toks: &[Token], sig: &[usize], open: usize) -> bool {
    let mut depth = 0i32;
    let mut k = open;
    while let Some(&i) = sig.get(k) {
        match toks[i].kind {
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokenKind::Punct
                if depth == 1
                    && toks[i].text == "."
                    && sig.get(k + 1).is_some_and(|&j| toks[j].is_punct(".")) =>
            {
                return true;
            }
            _ => {}
        }
        k += 1;
    }
    false
}

/// R6: every construction of a wire-level `EventKind::{Transmit, Deliver,
/// Loss}` record must thread an attribution key — a `query` field whose
/// value is not the literal `None`. `WireMessage::attribution()` may
/// *evaluate* to `None` for untagged traffic; writing `query: None` at the
/// emit site severs the ledger-conservation chain unconditionally, so that
/// is what gets flagged. Match patterns (`{ .., }` rests) are skipped.
fn rule_attribution_key(file: &SourceFile, index: &ItemIndex, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || !WIRE_VARIANTS.contains(&t.text.as_str())
            || file.in_test(i)
        {
            continue;
        }
        let open = s + 1;
        if !sig
            .get(open)
            .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "{")
        {
            continue;
        }
        // Only *wire-record* variants count: `EventKind::Transmit { .. }`
        // qualified in place, or the variant imported via `use ..EventKind::*`
        // paths. Other enums' same-named variants stay out of scope.
        let qualified = s >= 3
            && toks[sig[s - 1]].is_punct(":")
            && toks[sig[s - 2]].is_punct(":")
            && toks[sig[s - 3]].is_ident("EventKind");
        let imported = !qualified
            && (s == 0 || !toks[sig[s - 1]].is_punct(":"))
            && index
                .resolve(&t.text)
                .is_some_and(|p| p.contains("EventKind"));
        if !(qualified || imported) {
            continue;
        }
        if brace_body_has_rest(toks, &sig, open) {
            continue; // destructuring pattern, not an emit site
        }
        // Inspect the depth-1 field list for `query`.
        let mut depth = 0i32;
        let mut k = open;
        let mut query: Option<Option<usize>> = None; // Some(Some(v)) = value at sig[v]
        while let Some(&j) = sig.get(k) {
            match toks[j].kind {
                TokenKind::OpenDelim => depth += 1,
                TokenKind::CloseDelim => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if depth == 1 && toks[j].text == "query" => {
                    let value = sig
                        .get(k + 1)
                        .filter(|&&c| toks[c].is_punct(":"))
                        .map(|_| k + 2);
                    query = Some(value);
                }
                _ => {}
            }
            k += 1;
        }
        match query {
            None => out.push(Finding {
                rule: RuleId::AttributionKey,
                tok_idx: i,
                snippet: format!("EventKind::{} {{ .. }}", t.text),
                message: format!(
                    "wire-level {} record constructed without a `query` \
                     attribution key; thread `WireMessage::attribution()` \
                     through this emit site so per-decision ledger \
                     conservation holds",
                    t.text
                ),
            }),
            Some(Some(v))
                if sig.get(v).is_some_and(|&j| toks[j].is_ident("None"))
                    && sig
                        .get(v + 1)
                        .is_some_and(|&j| toks[j].is_punct(",") || toks[j].text == "}") =>
            {
                out.push(Finding {
                    rule: RuleId::AttributionKey,
                    tok_idx: i,
                    snippet: format!("EventKind::{} {{ query: None }}", t.text),
                    message: format!(
                        "wire-level {} record hard-codes `query: None`, \
                         unconditionally dropping attribution; pass \
                         `msg.attribution()` (which is `None` only for \
                         genuinely untagged traffic)",
                        t.text
                    ),
                })
            }
            _ => {} // shorthand `query` or a real value: attributed
        }
    }
}

/// R7: in sharded code, event identity must come from the stable `EventKey`
/// constructors. Flags (a) raw `EventKey { .. }` struct literals outside
/// `impl EventKey` (the constructors' home — declarations and `..`-rest
/// patterns are skipped), and (b) raw tuple pushes into an event heap,
/// which reintroduce partition-dependent ordering.
fn rule_stable_event_key(
    file: &SourceFile,
    cfg: &Config,
    index: &ItemIndex,
    out: &mut Vec<Finding>,
) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        if cfg.event_key_types.iter().any(|k| k == &t.text) {
            let open = s + 1;
            let is_literal = sig
                .get(open)
                .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "{");
            let declared = s >= 1
                && (toks[sig[s - 1]].is_ident("struct") || toks[sig[s - 1]].is_ident("enum"));
            if is_literal
                && !declared
                && !index.in_impl_of(&t.text, i)
                && !brace_body_has_rest(toks, &sig, open)
            {
                out.push(Finding {
                    rule: RuleId::StableEventKey,
                    tok_idx: i,
                    snippet: format!("{} {{ .. }}", t.text),
                    message: format!(
                        "raw `{} {{ .. }}` literal outside `impl {}`; use the \
                         stable constructors so event identity stays \
                         partition-independent (a hand-rolled key is one typo \
                         away from a thread-count-dependent trace)",
                        t.text, t.text
                    ),
                });
            }
        }
        let is_heap_tuple_push = t.text.to_ascii_lowercase().contains("heap")
            && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct("."))
            && sig.get(s + 2).is_some_and(|&j| toks[j].is_ident("push"))
            && sig
                .get(s + 3)
                .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "(")
            && sig
                .get(s + 4)
                .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "(");
        if is_heap_tuple_push {
            out.push(Finding {
                rule: RuleId::StableEventKey,
                tok_idx: i,
                snippet: format!("{}.push((..))", t.text),
                message: "raw timestamp-tuple push into an event heap orders \
                          ties by tuple position, which is partition-dependent; \
                          push an entry keyed by a stable `EventKey`"
                    .to_string(),
            });
        }
    }
}

/// R8: iteration over a cross-shard result collection (`pending`,
/// `outbox`, `inbox`, `results` by default) with no preceding `.sort*` on
/// the same collection in the same function. Shard batches arrive in
/// thread-completion order; draining them unsorted bakes that order into
/// the merged output.
fn rule_merge_order(file: &SourceFile, cfg: &Config, index: &ItemIndex, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    let is_collection = |j: usize| {
        toks[j].kind == TokenKind::Ident && cfg.merge_collections.iter().any(|c| c == &toks[j].text)
    };
    // All `X.sort*` call sites, by collection name.
    let mut sorts: Vec<(usize, &str)> = Vec::new();
    for (s, &i) in sig.iter().enumerate() {
        if is_collection(i)
            && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct("."))
            && sig.get(s + 2).is_some_and(|&j| {
                toks[j].kind == TokenKind::Ident && toks[j].text.starts_with("sort")
            })
        {
            sorts.push((i, toks[i].text.as_str()));
        }
    }
    // Candidate iteration sites (token indices of the collection ident).
    let mut sites: BTreeSet<usize> = BTreeSet::new();
    for (s, &i) in sig.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        // Method form: X.iter() / X.into_iter() / X.iter_mut() / X.drain(..)
        if is_collection(i)
            && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct("."))
            && sig.get(s + 2).is_some_and(|&j| {
                matches!(
                    toks[j].text.as_str(),
                    "iter" | "into_iter" | "iter_mut" | "drain"
                )
            })
        {
            sites.insert(i);
        }
        // For-loop form: any collection ident between `in` and the body `{`.
        if toks[i].is_ident("for") {
            // Find `in` at delimiter depth 0 (the pattern may nest tuples).
            let mut depth = 0i32;
            let mut k = s + 1;
            while let Some(&j) = sig.get(k) {
                match toks[j].kind {
                    TokenKind::OpenDelim => depth += 1,
                    TokenKind::CloseDelim => depth -= 1,
                    TokenKind::Ident if depth == 0 && toks[j].text == "in" => break,
                    _ => {}
                }
                k += 1;
            }
            // Scan the iterated expression up to the body's `{` at depth 0.
            let mut depth = 0i32;
            let mut e = k + 1;
            while let Some(&j) = sig.get(e) {
                match toks[j].kind {
                    TokenKind::OpenDelim if toks[j].text == "{" && depth == 0 => break,
                    TokenKind::OpenDelim => depth += 1,
                    TokenKind::CloseDelim => depth -= 1,
                    TokenKind::Ident if is_collection(j) && !file.in_test(j) => {
                        sites.insert(j);
                    }
                    _ => {}
                }
                e += 1;
            }
        }
    }
    for i in sites {
        let name = toks[i].text.as_str();
        let span = index.enclosing_fn(i);
        let sorted_before = sorts.iter().any(|&(si, sn)| {
            sn == name && si < i && span.is_some_and(|f| si >= f.start && si < f.end)
        });
        if !sorted_before {
            out.push(Finding {
                rule: RuleId::MergeOrder,
                tok_idx: i,
                snippet: format!("{name} iterated unsorted"),
                message: format!(
                    "cross-shard collection `{name}` is iterated without a \
                     preceding deterministic sort in {}; shard batches arrive \
                     in thread-completion order, so sort by a stable key (or \
                     mark the site if order is provably position-deterministic)",
                    index
                        .enclosing_fn(i)
                        .map(|f| format!("`fn {}`", f.name))
                        .unwrap_or_else(|| "this scope".to_string())
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::default();
        let sf = SourceFile::parse("crates/x/src/lib.rs", crate_name, false, src).unwrap();
        let mut stats = BTreeMap::new();
        check_file(&sf, &cfg, &mut stats).diagnostics
    }

    fn violations(diags: &[Diagnostic], rule: RuleId) -> usize {
        diags
            .iter()
            .filter(|d| d.rule == rule && d.is_violation())
            .count()
    }

    // R1 ---------------------------------------------------------------

    #[test]
    fn r1_fires_on_hashmap_state_in_sim_crate() {
        let diags = check(
            "dde-netsim",
            "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 2);
        assert!(diags[0].message.contains("BTreeMap"));
    }

    #[test]
    fn r1_silent_on_btreemap_and_non_state_crates() {
        let diags = check(
            "dde-netsim",
            "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        // dde-logic is not a simulator-state crate.
        let diags = check("dde-logic", "use std::collections::HashMap;\n");
        assert_eq!(violations(&diags, RuleId::HashState), 0);
    }

    #[test]
    fn r1_exempts_test_modules_and_honors_markers() {
        let diags = check(
            "dde-core",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        let diags = check(
            "dde-core",
            "// lint: allow(hash-state) — ordered wrapper below\nuse std::collections::HashMap;\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == RuleId::HashState && !d.is_violation())
                .count(),
            1
        );
    }

    // R2 ---------------------------------------------------------------

    #[test]
    fn r2_fires_on_wall_clock_and_entropy() {
        let diags = check(
            "dde-core",
            "fn f() { let t = Instant::now(); let r = rand::thread_rng(); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 2);
        let diags = check("dde-logic", "fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 1);
    }

    #[test]
    fn r2_exempts_bench_and_simulated_time() {
        let diags = check("dde-bench", "fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 0);
        // SimTime::now-like names don't match the TYPE::method patterns.
        let diags = check("dde-core", "fn f(c: &Ctx) { let t = c.now(); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 0);
    }

    // R3 ---------------------------------------------------------------

    #[test]
    fn r3_fires_on_partial_cmp_calls_only() {
        let diags = check(
            "dde-sched",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal)); }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 1);
        // A PartialOrd *impl* defines partial_cmp; it must not fire.
        let diags = check(
            "dde-netsim",
            "impl PartialOrd for S { fn partial_cmp(&self, o: &S) -> Option<Ordering> { Some(self.cmp(o)) } }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
    }

    #[test]
    fn r3_total_cmp_is_clean_and_marker_allows() {
        let diags = check(
            "dde-sched",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
        let diags = check(
            "dde-sched",
            "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); } // lint: allow(float-order) — ordering unused\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
    }

    // R4 ---------------------------------------------------------------

    #[test]
    fn r4_fires_on_unwrap_and_expect_in_library_code() {
        let diags = check("dde-core", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 1);
        let diags = check(
            "dde-naming",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 1);
    }

    #[test]
    fn r4_negative_cases() {
        // unwrap_or & friends are fine; so is test code; so is a marker.
        let diags = check("dde-core", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let diags = check(
            "dde-core",
            "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let diags = check(
            "dde-core",
            "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic) — caller guarantees Some\n    x.unwrap()\n}\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let allowed: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Panic && !d.is_violation())
            .collect();
        assert_eq!(allowed.len(), 1);
        // The reason survives into the machine-readable report.
        assert!(matches!(
            &allowed[0].allowed,
            Some(AllowSource::Marker { reason }) if reason == "caller guarantees Some"
        ));
        // Strings mentioning unwrap don't fire.
        let diags = check("dde-core", "fn f() { let s = \"x.unwrap()\"; }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        // Non-library crates (bench, examples) are out of scope.
        let diags = check("dde-bench", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
    }

    // R5 ---------------------------------------------------------------

    #[test]
    fn r5_fires_on_shared_state_primitives_in_shard_crates() {
        let diags = check(
            "dde-netsim",
            "use std::sync::Mutex;\nstruct S { m: Mutex<u32>, c: AtomicU64 }\n",
        );
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 3);
        let diags = check("dde-core", "static mut COUNTER: u64 = 0;\n");
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 1);
        let diags = check("dde-sched", "thread_local! { static CACHE: u32 = 0; }\n");
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 1);
    }

    #[test]
    fn r5_sees_through_renamed_imports() {
        let diags = check(
            "dde-netsim",
            "use std::sync::Mutex as Lock;\nstruct S { m: Lock<u32> }\n",
        );
        // The import's `Mutex` ident plus both `Lock` occurrences.
        let v: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::ShardSharedState && d.is_violation())
            .collect();
        assert_eq!(v.len(), 3);
        assert!(v.iter().any(|d| d.snippet == "Lock (= Mutex)"));
    }

    #[test]
    fn r5_negative_cases() {
        // Arc and mpsc are coordinator exchange, not shared mutation.
        let diags = check(
            "dde-netsim",
            "use std::sync::{mpsc, Arc};\nstruct S { t: Arc<u32> }\n",
        );
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 0);
        // Out-of-scope crates (obs owns SharedSink deliberately).
        let diags = check("dde-obs", "use std::sync::Mutex;\n");
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 0);
        // `static` without `mut` is fine; test code is exempt.
        let diags = check("dde-core", "static N: u64 = 0;\n");
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 0);
        let diags = check(
            "dde-netsim",
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; }\n",
        );
        assert_eq!(violations(&diags, RuleId::ShardSharedState), 0);
    }

    // R6 ---------------------------------------------------------------

    #[test]
    fn r6_fires_on_missing_or_dropped_attribution() {
        let diags = check(
            "dde-netsim",
            "fn f(c: &mut Ctx) { c.emit(EventKind::Transmit { from: 0, to: 1, bytes: 8 }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 1);
        let diags = check(
            "dde-netsim",
            "fn f(c: &mut Ctx) { c.emit(EventKind::Loss { from: 0, to: 1, query: None }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 1);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("hard-codes `query: None`")));
        // Imported variants resolve through the use table.
        let diags = check(
            "dde-core",
            "use dde_obs::EventKind::Deliver;\nfn f(c: &mut Ctx) { c.emit(Deliver { from: 0, to: 1 }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 1);
    }

    #[test]
    fn r6_negative_cases() {
        // Threaded attribution passes, shorthand passes, patterns skipped.
        let diags = check(
            "dde-netsim",
            "fn f(c: &mut Ctx, m: &Msg) { c.emit(EventKind::Deliver { from: 0, to: 1, query: m.attribution() }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 0);
        let diags = check(
            "dde-netsim",
            "fn f(c: &mut Ctx, query: Option<u64>) { c.emit(EventKind::Loss { from: 0, to: 1, query }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 0);
        let diags = check(
            "dde-netsim",
            "fn g(k: &EventKind) { if let EventKind::Transmit { from, .. } = k { let _ = from; } }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 0);
        // Same-named variants of other enums are out of scope.
        let diags = check(
            "dde-netsim",
            "fn f() { let e = REvent::Deliver { to: 1, from: 0, msg: () }; }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 0);
        // obs constructs its own view records freely (not an emit crate).
        let diags = check(
            "dde-obs",
            "fn f() { let e = EventKind::Loss { from: 0, to: 1 }; }\n",
        );
        assert_eq!(violations(&diags, RuleId::AttributionKey), 0);
    }

    // R7 ---------------------------------------------------------------

    #[test]
    fn r7_fires_on_raw_key_literals_and_tuple_pushes() {
        let diags = check(
            "dde-netsim",
            "fn f(h: &mut Heap) { h.push(EventKey { class: 5, a: 0, b: 1, c: 2 }); }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 1);
        let diags = check(
            "dde-netsim",
            "fn f(heap: &mut BinaryHeap<(u64, u64)>, at: u64) { heap.push((at, 7)); }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 1);
    }

    #[test]
    fn r7_negative_cases() {
        // Constructors live inside `impl EventKey` — exempt.
        let diags = check(
            "dde-netsim",
            "impl EventKey { fn start(n: u64) -> EventKey { EventKey { class: 0, a: n, b: 0, c: 0 } } }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 0);
        // The declaration, destructuring patterns, and keyed pushes pass.
        let diags = check(
            "dde-netsim",
            "pub struct EventKey { class: u64 }\nfn g(k: &EventKey) { let EventKey { class, .. } = k; let _ = class; }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 0);
        let diags = check(
            "dde-netsim",
            "fn f(heap: &mut Heap, e: Entry) { heap.push(e); }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 0);
        // Other crates are out of R7's scope.
        let diags = check(
            "dde-core",
            "fn f() { let k = EventKey { class: 0, a: 0, b: 0, c: 0 }; }\n",
        );
        assert_eq!(violations(&diags, RuleId::StableEventKey), 0);
    }

    // R8 ---------------------------------------------------------------

    #[test]
    fn r8_fires_on_unsorted_iteration_of_merge_collections() {
        let diags = check(
            "dde-obs",
            "fn f(pending: Vec<u32>, s: &mut Sink) { for p in pending { s.put(p); } }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 1);
        let diags = check(
            "dde-netsim",
            "fn f(&mut self) { for cd in self.outbox.drain(..) { route(cd); } }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 1);
        let diags = check(
            "dde-bench",
            "fn f(results: Vec<R>) -> Vec<R> { results.into_iter().collect() }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 1);
    }

    #[test]
    fn r8_sorted_iteration_passes() {
        let diags = check(
            "dde-obs",
            "fn f(&mut self, s: &mut Sink) {\n    self.pending.sort_unstable_by_key(|e| e.0);\n    for (_, r) in self.pending.drain(..) { s.record(r); }\n}\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 0);
        // A sort in a *different* fn does not cover the iteration.
        let diags = check(
            "dde-obs",
            "fn a(&mut self) { self.pending.sort(); }\nfn b(&mut self) { for p in self.pending.iter() { use_(p); } }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 1);
        // Unrelated collection names and out-of-scope crates pass.
        let diags = check(
            "dde-obs",
            "fn f(items: Vec<u32>) { for i in items { use_(i); } }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 0);
        let diags = check(
            "dde-sched",
            "fn f(results: Vec<u32>) { for r in results { use_(r); } }\n",
        );
        assert_eq!(violations(&diags, RuleId::MergeOrder), 0);
    }

    #[test]
    fn structural_rules_report_stats_and_marker_use() {
        let cfg = Config::default();
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "dde-netsim",
            false,
            "// lint: allow(shared-state) — coordinator-owned exchange cell\nuse std::sync::Mutex;\n",
        )
        .unwrap();
        let mut stats = BTreeMap::new();
        let checked = check_file(&sf, &cfg, &mut stats);
        assert_eq!(checked.used_markers, vec![0]);
        assert!(checked
            .diagnostics
            .iter()
            .all(|d| d.rule != RuleId::ShardSharedState || !d.is_violation()));
        assert_eq!(stats[&RuleId::ShardSharedState].files_checked, 1);
        assert_eq!(stats[&RuleId::MergeOrder].files_checked, 1);
    }

    #[test]
    fn config_allowlist_suppresses() {
        let mut cfg = Config::default();
        cfg.allow
            .insert(RuleId::Panic, vec!["src/lib.rs:1".to_string()]);
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "dde-core",
            false,
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let mut stats = BTreeMap::new();
        let checked = check_file(&sf, &cfg, &mut stats);
        let diags = checked.diagnostics;
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        assert_eq!(
            checked.used_config,
            vec![(RuleId::Panic, "src/lib.rs:1".to_string())]
        );
        assert!(matches!(
            &diags.iter().find(|d| d.rule == RuleId::Panic).unwrap().allowed,
            Some(AllowSource::Config { entry }) if entry == "src/lib.rs:1"
        ));
    }
}

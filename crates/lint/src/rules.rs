//! The four rule passes (R1–R4) over a parsed [`SourceFile`].

use crate::config::Config;
use crate::engine::{significant, SourceFile};
use crate::report::{AllowSource, Diagnostic, RuleId};
use syn::TokenKind;

/// Ambient-nondeterminism method paths flagged by R2, as `TYPE::method`
/// pairs; `None` matches a bare identifier (free fn or import).
const NONDET_PATHS: &[(Option<&str>, &str)] = &[
    (Some("Instant"), "now"),
    (Some("SystemTime"), "now"),
    (None, "thread_rng"),
    (None, "from_entropy"),
    (Some("env"), "var"),
    (Some("env"), "var_os"),
    (Some("env"), "vars"),
    (Some("env"), "args"),
    (Some("env"), "current_dir"),
    (Some("env"), "temp_dir"),
];

struct Finding {
    rule: RuleId,
    tok_idx: usize,
    snippet: String,
    message: String,
}

/// Runs every applicable rule over `file`, resolving inline markers and
/// `lint.toml` allowlist entries into [`Diagnostic::allowed`].
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    if cfg.state_crates.contains(&file.crate_name) {
        rule_hash_state(file, &mut findings);
    }
    if !cfg.nondet_exempt_crates.contains(&file.crate_name) {
        rule_ambient_nondeterminism(file, &mut findings);
    }
    rule_float_order(file, &mut findings);
    if cfg.library_crates.contains(&file.crate_name) {
        rule_panic(file, &mut findings);
    }
    findings
        .into_iter()
        .map(|f| {
            let tok = &file.tokens()[f.tok_idx];
            let allowed = file
                .marker_for(f.rule, tok.line)
                .map(|reason| AllowSource::Marker {
                    reason: reason.to_string(),
                })
                .or_else(|| {
                    cfg.allows(f.rule, &file.path, tok.line)
                        .map(|entry| AllowSource::Config {
                            entry: entry.to_string(),
                        })
                });
            Diagnostic {
                rule: f.rule,
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                snippet: f.snippet,
                message: f.message,
                allowed,
            }
        })
        .collect()
}

/// R1: any `HashMap`/`HashSet` mention in non-test code of a state crate.
/// Flagging the *type name* (imports included) rather than iteration sites
/// is deliberate: hash-ordered state is a replay hazard the moment it
/// exists, not only once someone iterates it.
fn rule_hash_state(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in file.tokens().iter().enumerate() {
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !file.in_test(i)
        {
            out.push(Finding {
                rule: RuleId::HashState,
                tok_idx: i,
                snippet: t.text.clone(),
                message: format!(
                    "{} iteration order is seeded per instance and breaks \
                     bit-identical replay; simulator state must use \
                     BTreeMap/BTreeSet or an explicitly ordered wrapper",
                    t.text
                ),
            });
        }
    }
}

/// R2: `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`,
/// `env::*` reads in non-test code outside the bench harness.
fn rule_ambient_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(i) {
            continue;
        }
        for (qualifier, method) in NONDET_PATHS {
            let hit = match qualifier {
                None => t.text == *method,
                Some(q) => {
                    t.text == *q
                        && sig.get(s + 1).is_some_and(|&j| toks[j].is_punct(":"))
                        && sig.get(s + 2).is_some_and(|&j| toks[j].is_punct(":"))
                        && sig.get(s + 3).is_some_and(|&j| toks[j].is_ident(method))
                }
            };
            if hit {
                let snippet = match qualifier {
                    None => t.text.clone(),
                    Some(q) => format!("{q}::{method}"),
                };
                out.push(Finding {
                    rule: RuleId::AmbientNondeterminism,
                    tok_idx: i,
                    snippet: snippet.clone(),
                    message: format!(
                        "`{snippet}` injects wall-clock/entropy/environment \
                         state into a simulation that must be a pure function \
                         of its seed; thread time through SimTime and \
                         randomness through the seeded SmallRng"
                    ),
                });
                break;
            }
        }
    }
}

/// R3: `.partial_cmp(..)` method calls in non-test code. The common
/// `sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal))` idiom silently maps
/// NaN to `Equal`, so the resulting order depends on input positions —
/// a replay hazard for float-keyed scheduling decisions.
fn rule_float_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
            && s > 0
            && toks[sig[s - 1]].is_punct(".")
            && !file.in_test(i)
        {
            out.push(Finding {
                rule: RuleId::FloatOrder,
                tok_idx: i,
                snippet: ".partial_cmp(..)".to_string(),
                message: "partial_cmp is not a total order over floats (NaN \
                          collapses to Equal, making the result \
                          input-order-dependent); use f64::total_cmp or \
                          dde_lint::total_cmp_f64"
                    .to_string(),
            });
        }
    }
}

/// R4: `.unwrap()` / `.expect(..)` in library non-test code without a
/// `// lint: allow(panic) — <reason>` marker.
fn rule_panic(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = file.tokens();
    let sig = significant(toks);
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident
            || (t.text != "unwrap" && t.text != "expect")
            || file.in_test(i)
        {
            continue;
        }
        let is_method_call = s > 0
            && toks[sig[s - 1]].is_punct(".")
            && sig
                .get(s + 1)
                .is_some_and(|&j| toks[j].kind == TokenKind::OpenDelim && toks[j].text == "(");
        if is_method_call {
            out.push(Finding {
                rule: RuleId::Panic,
                tok_idx: i,
                snippet: format!(".{}(..)", t.text),
                message: format!(
                    "`.{}()` can panic in library code; return a typed error, \
                     restructure to make the invariant explicit, or annotate \
                     with `// lint: allow(panic) — <reason>`",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let cfg = Config::default();
        let sf = SourceFile::parse("crates/x/src/lib.rs", crate_name, false, src).unwrap();
        check_file(&sf, &cfg)
    }

    fn violations(diags: &[Diagnostic], rule: RuleId) -> usize {
        diags
            .iter()
            .filter(|d| d.rule == rule && d.is_violation())
            .count()
    }

    // R1 ---------------------------------------------------------------

    #[test]
    fn r1_fires_on_hashmap_state_in_sim_crate() {
        let diags = check(
            "dde-netsim",
            "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 2);
        assert!(diags[0].message.contains("BTreeMap"));
    }

    #[test]
    fn r1_silent_on_btreemap_and_non_state_crates() {
        let diags = check(
            "dde-netsim",
            "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        // dde-logic is not a simulator-state crate.
        let diags = check("dde-logic", "use std::collections::HashMap;\n");
        assert_eq!(violations(&diags, RuleId::HashState), 0);
    }

    #[test]
    fn r1_exempts_test_modules_and_honors_markers() {
        let diags = check(
            "dde-core",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        let diags = check(
            "dde-core",
            "// lint: allow(hash-state) — ordered wrapper below\nuse std::collections::HashMap;\n",
        );
        assert_eq!(violations(&diags, RuleId::HashState), 0);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == RuleId::HashState && !d.is_violation())
                .count(),
            1
        );
    }

    // R2 ---------------------------------------------------------------

    #[test]
    fn r2_fires_on_wall_clock_and_entropy() {
        let diags = check(
            "dde-core",
            "fn f() { let t = Instant::now(); let r = rand::thread_rng(); }\n",
        );
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 2);
        let diags = check("dde-logic", "fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 1);
    }

    #[test]
    fn r2_exempts_bench_and_simulated_time() {
        let diags = check("dde-bench", "fn f() { let v = std::env::var(\"X\"); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 0);
        // SimTime::now-like names don't match the TYPE::method patterns.
        let diags = check("dde-core", "fn f(c: &Ctx) { let t = c.now(); }\n");
        assert_eq!(violations(&diags, RuleId::AmbientNondeterminism), 0);
    }

    // R3 ---------------------------------------------------------------

    #[test]
    fn r3_fires_on_partial_cmp_calls_only() {
        let diags = check(
            "dde-sched",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal)); }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 1);
        // A PartialOrd *impl* defines partial_cmp; it must not fire.
        let diags = check(
            "dde-netsim",
            "impl PartialOrd for S { fn partial_cmp(&self, o: &S) -> Option<Ordering> { Some(self.cmp(o)) } }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
    }

    #[test]
    fn r3_total_cmp_is_clean_and_marker_allows() {
        let diags = check(
            "dde-sched",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
        let diags = check(
            "dde-sched",
            "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); } // lint: allow(float-order) — ordering unused\n",
        );
        assert_eq!(violations(&diags, RuleId::FloatOrder), 0);
    }

    // R4 ---------------------------------------------------------------

    #[test]
    fn r4_fires_on_unwrap_and_expect_in_library_code() {
        let diags = check("dde-core", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 1);
        let diags = check(
            "dde-naming",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 1);
    }

    #[test]
    fn r4_negative_cases() {
        // unwrap_or & friends are fine; so is test code; so is a marker.
        let diags = check("dde-core", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let diags = check(
            "dde-core",
            "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let diags = check(
            "dde-core",
            "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(panic) — caller guarantees Some\n    x.unwrap()\n}\n",
        );
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        let allowed: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Panic && !d.is_violation())
            .collect();
        assert_eq!(allowed.len(), 1);
        // The reason survives into the machine-readable report.
        assert!(matches!(
            &allowed[0].allowed,
            Some(AllowSource::Marker { reason }) if reason == "caller guarantees Some"
        ));
        // Strings mentioning unwrap don't fire.
        let diags = check("dde-core", "fn f() { let s = \"x.unwrap()\"; }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        // Non-library crates (bench, examples) are out of scope.
        let diags = check("dde-bench", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(violations(&diags, RuleId::Panic), 0);
    }

    #[test]
    fn config_allowlist_suppresses() {
        let mut cfg = Config::default();
        cfg.allow
            .insert(RuleId::Panic, vec!["src/lib.rs:1".to_string()]);
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "dde-core",
            false,
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        let diags = check_file(&sf, &cfg);
        assert_eq!(violations(&diags, RuleId::Panic), 0);
        assert!(matches!(
            &diags.iter().find(|d| d.rule == RuleId::Panic).unwrap().allowed,
            Some(AllowSource::Config { entry }) if entry == "src/lib.rs:1"
        ));
    }
}

//! Workspace scanning: file discovery, token-level test-region detection,
//! inline `// lint: allow(..)` markers, and the top-level [`run`] entry.

use crate::config::{Config, Toml};
use crate::report::{Diagnostic, RuleId, RuleStats, StaleAllow};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use syn::{Token, TokenKind};

/// A fatal analysis error (exit code 2 territory, unlike rule violations).
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem error while walking or reading.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A source file failed to lex/parse.
    Parse {
        /// The file that failed.
        path: PathBuf,
        /// The parse error with position.
        err: syn::Error,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            EngineError::Parse { path, err } => write!(f, "{}:{err}", path.display()),
        }
    }
}

impl std::error::Error for EngineError {}

/// One inline `// lint: allow(<token>) — <reason>` marker.
///
/// A standalone marker (the comment is the first token on its line) covers
/// the following line; a trailing marker covers only its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether the comment is the first token on its line.
    pub standalone: bool,
    /// The token inside `allow(..)` (a rule marker token, or a typo).
    pub token: String,
    /// The free-text reason after the closing paren.
    pub reason: String,
    /// Token index of the comment, used to decide whether the marker sits
    /// in test code (where rules never fire, so staleness is meaningless).
    pub tok_idx: usize,
}

/// A parsed source file with everything the rules need: tokens, test-region
/// spans, and the inline-marker index.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (stable across platforms).
    pub path: String,
    /// Name of the Cargo package the file belongs to.
    pub crate_name: String,
    /// Whether the whole file is test/bench context (under `tests/` or
    /// `benches/`, or part of a test-only package).
    pub file_test_context: bool,
    tokens: Vec<Token>,
    /// Half-open `[start, end)` token-index ranges of `#[cfg(test)]` /
    /// `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    markers: Vec<Marker>,
}

impl SourceFile {
    /// Parses `src` and precomputes test regions and markers.
    pub fn parse(
        path: impl Into<String>,
        crate_name: impl Into<String>,
        file_test_context: bool,
        src: &str,
    ) -> syn::Result<SourceFile> {
        let file = syn::parse_file(src)?;
        let tokens = file.tokens().to_vec();
        let test_regions = find_test_regions(&tokens);
        let markers = find_markers(&tokens);
        Ok(SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            file_test_context,
            tokens,
            test_regions,
            markers,
        })
    }

    /// All tokens (comments included), in source order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Whether the token at `idx` sits inside test code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.file_test_context || self.test_regions.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The reason string of an inline `// lint: allow(<rule>)` marker
    /// covering `line` (trailing on the same line, or on the line above).
    pub fn marker_for(&self, rule: RuleId, line: u32) -> Option<&str> {
        self.marker_lookup(rule, line).map(|(_, reason)| reason)
    }

    /// Like [`SourceFile::marker_for`], but also returns the marker's index
    /// into [`SourceFile::markers`], so callers can record which markers
    /// actually suppressed a finding (stale-allow detection).
    pub fn marker_lookup(&self, rule: RuleId, line: u32) -> Option<(usize, &str)> {
        self.markers
            .iter()
            .enumerate()
            .find(|(_, m)| {
                (m.line == line || (m.standalone && m.line + 1 == line))
                    && m.token == rule.marker_token()
            })
            .map(|(i, m)| (i, m.reason.as_str()))
    }

    /// All inline markers, in source order.
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }
}

/// Indices of non-comment tokens, for pattern scans that must not be fooled
/// by interleaved comments.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
        .collect()
}

/// Whether an attribute body (the tokens between `[` and `]`) marks test
/// code: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`, `#[tokio::test]`.
fn attr_is_test(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| t.is_ident("test"))
}

/// Scans the token stream for `#[test]`-ish attributes and returns the
/// half-open token ranges of the items they annotate. An inner
/// `#![cfg(test)]` marks the whole file.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig = significant(tokens);
    let mut regions = Vec::new();
    let mut s = 0usize; // index into `sig`
    while s < sig.len() {
        if !tokens[sig[s]].is_punct("#") {
            s += 1;
            continue;
        }
        let mut a = s + 1;
        let inner = a < sig.len() && tokens[sig[a]].is_punct("!");
        if inner {
            a += 1;
        }
        if a >= sig.len()
            || tokens[sig[a]].kind != TokenKind::OpenDelim
            || tokens[sig[a]].text != "["
        {
            s += 1;
            continue;
        }
        // Collect this attribute group plus any directly stacked ones.
        let mut is_test = false;
        let mut cursor = s;
        loop {
            let open = cursor + if inner { 2 } else { 1 };
            let mut depth = 0i32;
            let mut end = open;
            for (k, &ti) in sig.iter().enumerate().skip(open) {
                match tokens[ti].kind {
                    TokenKind::OpenDelim => depth += 1,
                    TokenKind::CloseDelim => {
                        depth -= 1;
                        if depth == 0 {
                            end = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let body: Vec<Token> = sig[open..=end].iter().map(|&i| tokens[i].clone()).collect();
            if attr_is_test(&body) {
                is_test = true;
            }
            cursor = end + 1;
            // Outer attributes stack (`#[test] #[ignore] fn ..`); an inner
            // attribute stands alone.
            if inner
                || cursor >= sig.len()
                || !tokens[sig[cursor]].is_punct("#")
                || cursor + 1 >= sig.len()
                || tokens[sig[cursor + 1]].kind != TokenKind::OpenDelim
            {
                break;
            }
        }
        if is_test {
            if inner {
                // `#![cfg(test)]`: everything from here on is test code.
                regions.push((sig[s], tokens.len()));
                return regions;
            }
            // Find the annotated item's extent: first `{..}` block at
            // delimiter depth 0, or a `;` before one (use decls, consts).
            let mut depth = 0i32;
            let mut end_tok = tokens.len();
            let mut k = cursor;
            while k < sig.len() {
                let t = &tokens[sig[k]];
                match t.kind {
                    TokenKind::OpenDelim => depth += 1,
                    TokenKind::CloseDelim => {
                        depth -= 1;
                        if depth == 0 && t.text == "}" {
                            end_tok = sig[k] + 1;
                            break;
                        }
                    }
                    TokenKind::Punct if t.text == ";" && depth == 0 => {
                        end_tok = sig[k] + 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            regions.push((sig[s], end_tok));
            s = k.max(s + 1);
        } else {
            s = cursor;
        }
    }
    regions
}

/// Extracts `// lint: allow(<token>) — <reason>` markers from comments.
///
/// Doc comments (`///`, `//!`, `/** .. */`, `/*! .. */`) are skipped: they
/// *describe* the marker syntax (rustdoc for the lint itself, rule
/// messages) rather than apply it, and treating them as markers would make
/// every such mention a stale allow.
fn find_markers(tokens: &[Token]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let is_doc = ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| t.text.starts_with(p));
        if is_doc && !t.text.starts_with("/**/") {
            continue;
        }
        let standalone = !tokens[..i].iter().any(|p| p.line == t.line);
        let Some(at) = t.text.find("lint:") else {
            continue;
        };
        let rest = &t.text[at + "lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let token = after[..close].trim().to_string();
        let reason = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        out.push(Marker {
            line: t.line,
            standalone,
            token,
            reason,
            tok_idx: i,
        });
    }
    out
}

/// The result of scanning a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// All findings (violations and allowed), ordered by path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were parsed.
    pub files_scanned: usize,
    /// Allows (inline markers and `lint.toml` entries) that matched no
    /// finding, in sorted order. Gated on like violations.
    pub stale_allows: Vec<StaleAllow>,
    /// Per-rule footer stats, in R1..R8 order.
    pub stats: Vec<(RuleId, RuleStats)>,
}

impl LintReport {
    /// Findings not covered by a marker or allowlist entry.
    pub fn violations(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_violation())
    }

    /// Whether the report should gate (violations or stale allows).
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none() && self.stale_allows.is_empty()
    }

    /// Zeroes the per-rule timing figures so two runs over identical
    /// sources render byte-identical reports (`--no-timing`).
    pub fn strip_timing(&mut self) {
        for (_, s) in &mut self.stats {
            s.micros = 0;
        }
    }
}

fn read_to_string(path: &Path) -> Result<String, EngineError> {
    std::fs::read_to_string(path).map_err(|err| EngineError::Io {
        path: path.to_path_buf(),
        err,
    })
}

/// Recursively collects `.rs` files under `dir`, sorted by path.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    let rd = std::fs::read_dir(dir).map_err(|err| EngineError::Io {
        path: dir.to_path_buf(),
        err,
    })?;
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Finds package directories (containing a `Cargo.toml` with `[package]`)
/// directly under the workspace root and one level below (`crates/*`),
/// honoring `skip_dirs`.
fn find_packages(root: &Path, cfg: &Config) -> Result<Vec<(String, PathBuf)>, EngineError> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let rd = std::fs::read_dir(&dir).map_err(|err| EngineError::Io {
            path: dir.clone(),
            err,
        })?;
        for entry in rd.filter_map(|e| e.ok()) {
            let p = entry.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !p.is_dir() || name.starts_with('.') || cfg.skip_dirs.iter().any(|s| s == name) {
                continue;
            }
            let manifest = p.join("Cargo.toml");
            if manifest.is_file() {
                let text = read_to_string(&manifest)?;
                if let Ok(doc) = Toml::parse(&text) {
                    if let Some(pkg) = doc.str_value("package", "name") {
                        found.push((pkg.to_string(), p.clone()));
                        continue; // don't descend into a package for more
                    }
                }
            }
            stack.push(p);
        }
    }
    found.sort();
    Ok(found)
}

/// Scans the workspace at `root` under configuration `cfg` and returns all
/// diagnostics. Fails (rather than reporting) on unreadable or unparsable
/// files — a file the analyzer cannot see is not a clean file.
pub fn run(root: &Path, cfg: &Config) -> Result<LintReport, EngineError> {
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut stale_allows = Vec::new();
    let mut used_config: BTreeSet<(RuleId, String)> = BTreeSet::new();
    let mut stats: BTreeMap<RuleId, RuleStats> = BTreeMap::new();
    for (pkg, dir) in find_packages(root, cfg)? {
        let mut files = Vec::new();
        collect_rs(&dir, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let in_test_dir = {
                let rel_pkg = path.strip_prefix(&dir).unwrap_or(&path);
                rel_pkg
                    .components()
                    .any(|c| matches!(c.as_os_str().to_str(), Some("tests" | "benches")))
            };
            let file_test_context = in_test_dir || cfg.test_crates.contains(&pkg);
            let src = read_to_string(&path)?;
            let sf =
                SourceFile::parse(rel, pkg.clone(), file_test_context, &src).map_err(|err| {
                    EngineError::Parse {
                        path: path.clone(),
                        err,
                    }
                })?;
            files_scanned += 1;
            let checked = crate::rules::check_file(&sf, cfg, &mut stats);
            for (rule, entry) in checked.used_config {
                used_config.insert((rule, entry));
            }
            // A marker in test code can never match a finding (rules skip
            // test regions), so staleness only applies outside them.
            for (i, m) in sf.markers().iter().enumerate() {
                if !checked.used_markers.contains(&i) && !sf.in_test(m.tok_idx) {
                    stale_allows.push(StaleAllow::Marker {
                        path: sf.path.clone(),
                        line: m.line,
                        token: m.token.clone(),
                    });
                }
            }
            diagnostics.extend(checked.diagnostics);
        }
    }
    for (rule, entries) in &cfg.allow {
        for entry in entries {
            if !used_config.contains(&(*rule, entry.clone())) {
                stale_allows.push(StaleAllow::Config {
                    rule: *rule,
                    entry: entry.clone(),
                });
            }
        }
    }
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    stale_allows.sort();
    stale_allows.dedup();
    let stats = RuleId::ALL
        .iter()
        .map(|r| (*r, stats.get(r).copied().unwrap_or_default()))
        .collect();
    Ok(LintReport {
        diagnostics,
        files_scanned,
        stale_allows,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_region() {
        let sf = SourceFile::parse(
            "x.rs",
            "dde-core",
            false,
            r#"
fn prod() { let _ = 1; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = 2; }
}
fn also_prod() {}
"#,
        )
        .unwrap();
        let toks = sf.tokens();
        let in_test: Vec<bool> = (0..toks.len()).map(|i| sf.in_test(i)).collect();
        // `prod` tokens are outside, module-body tokens inside, trailing fn
        // outside again.
        let prod_idx = toks.iter().position(|t| t.is_ident("prod")).unwrap();
        let t_idx = toks.iter().position(|t| t.is_ident("t")).unwrap();
        let after_idx = toks.iter().position(|t| t.is_ident("also_prod")).unwrap();
        assert!(!in_test[prod_idx]);
        assert!(in_test[t_idx]);
        assert!(!in_test[after_idx]);
    }

    #[test]
    fn stacked_and_inner_attributes() {
        let sf = SourceFile::parse(
            "x.rs",
            "c",
            false,
            "#[test]\n#[ignore]\nfn t() { body(); }\nfn prod() {}\n",
        )
        .unwrap();
        let toks = sf.tokens();
        let body = toks.iter().position(|t| t.is_ident("body")).unwrap();
        let prod = toks.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(sf.in_test(body));
        assert!(!sf.in_test(prod));

        let sf =
            SourceFile::parse("x.rs", "c", false, "#![cfg(test)]\nfn anything() {}\n").unwrap();
        let any = sf
            .tokens()
            .iter()
            .position(|t| t.is_ident("anything"))
            .unwrap();
        assert!(sf.in_test(any));
    }

    #[test]
    fn attr_on_use_ends_at_semicolon() {
        let sf = SourceFile::parse(
            "x.rs",
            "c",
            false,
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}\n",
        )
        .unwrap();
        let toks = sf.tokens();
        let hm = toks.iter().position(|t| t.is_ident("HashMap")).unwrap();
        let prod = toks.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(sf.in_test(hm));
        assert!(!sf.in_test(prod));
    }

    #[test]
    fn markers_cover_same_and_next_line() {
        let sf = SourceFile::parse(
            "x.rs",
            "c",
            false,
            "// lint: allow(panic) — invariant: heap non-empty\nlet a = x.unwrap();\nlet b = y.unwrap(); // lint: allow(panic) — checked above\nlet c = z.unwrap();\n",
        )
        .unwrap();
        assert_eq!(
            sf.marker_for(RuleId::Panic, 2),
            Some("invariant: heap non-empty")
        );
        assert_eq!(sf.marker_for(RuleId::Panic, 3), Some("checked above"));
        assert_eq!(sf.marker_for(RuleId::Panic, 4), None);
        assert_eq!(sf.marker_for(RuleId::FloatOrder, 2), None);
    }
}

//! # dde-lint — workspace determinism & panic-safety analyzer
//!
//! The whole evaluation story of this reproduction rests on bit-identical
//! replay: the same seed must produce a byte-identical `RunReport`, or the
//! resilience and scheduling comparisons (LVF vs. hierarchical vs. hybrid)
//! are noise. This crate parses every workspace source file with `syn` and
//! enforces the determinism/panic-safety rules that protect that invariant:
//!
//! - **R1 `no-hash-state`** — no `std::collections::HashMap`/`HashSet` in
//!   simulator-state crates (`netsim`, `core`, `sched`, `naming`,
//!   `workload`). Hash iteration order is seeded per-instance, so any state
//!   that reaches a report through it breaks replay. Use
//!   `BTreeMap`/`BTreeSet` or an explicitly ordered wrapper.
//! - **R2 `no-ambient-nondeterminism`** — no `Instant::now`,
//!   `SystemTime::now`, `thread_rng`, `from_entropy`, or env-dependent
//!   lookups (`env::var` & friends) outside the `bench` harness. All
//!   randomness flows from the run seed; all time is [`SimTime`]-simulated.
//! - **R3 `float-order`** — no `.partial_cmp(..)` comparisons (the usual
//!   `sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal))` idiom): NaN maps
//!   to `Equal`, making the order input-dependent. Use [`total_cmp_f64`] or
//!   `f64::total_cmp`.
//! - **R4 `no-panic`** — no `.unwrap()`/`.expect(..)` in library crates'
//!   non-test code, unless annotated `// lint: allow(panic) — <reason>`.
//!   Annotated sites surface in the machine-readable allowlist report.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` fns, `tests/`, `benches/`)
//! is exempt. Per-rule path allowlists live in `lint.toml` at the workspace
//! root; `--format json` emits a report CI can archive and gate on.
//!
//! [`SimTime`]: https://docs.rs/dde-logic

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod report;
pub mod rules;

pub use config::Config;
pub use engine::{run, LintReport, SourceFile};
pub use report::{AllowSource, Diagnostic, RuleId};

/// Total-order comparison for `f64`, for use in `sort_by`/`max_by` keys.
///
/// This is the remediation `dde-lint` suggests for rule **R3**: unlike
/// `partial_cmp(..).unwrap_or(Equal)`, the IEEE 754 `totalOrder` predicate
/// gives every float — including NaNs and signed zeros — one fixed place,
/// so a sort key of unknown provenance can never collapse into an
/// input-order-dependent tie.
///
/// ```
/// let mut v = vec![2.0_f64, f64::NAN, 1.0];
/// v.sort_by(|a, b| dde_lint::total_cmp_f64(*a, *b));
/// assert_eq!(v[0], 1.0);
/// assert_eq!(v[1], 2.0);
/// assert!(v[2].is_nan());
/// ```
pub fn total_cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

#[cfg(test)]
mod tests {
    use std::cmp::Ordering;

    #[test]
    fn total_cmp_orders_nan_last_among_positives() {
        assert_eq!(super::total_cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(super::total_cmp_f64(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(super::total_cmp_f64(f64::NAN, f64::NAN), Ordering::Equal);
    }
}

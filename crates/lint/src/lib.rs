//! # dde-lint — workspace determinism & shard-safety analyzer
//!
//! The whole evaluation story of this reproduction rests on bit-identical
//! replay: the same seed must produce a byte-identical `RunReport`, or the
//! resilience and scheduling comparisons (LVF vs. hierarchical vs. hybrid)
//! are noise. This crate parses every workspace source file with `syn` and
//! enforces the determinism/panic-safety rules that protect that invariant:
//!
//! - **R1 `no-hash-state`** — no `std::collections::HashMap`/`HashSet` in
//!   simulator-state crates (`netsim`, `core`, `sched`, `naming`,
//!   `workload`). Hash iteration order is seeded per-instance, so any state
//!   that reaches a report through it breaks replay. Use
//!   `BTreeMap`/`BTreeSet` or an explicitly ordered wrapper.
//! - **R2 `no-ambient-nondeterminism`** — no `Instant::now`,
//!   `SystemTime::now`, `thread_rng`, `from_entropy`, or env-dependent
//!   lookups (`env::var` & friends) outside the `bench` harness. All
//!   randomness flows from the run seed; all time is [`SimTime`]-simulated.
//! - **R3 `float-order`** — no `.partial_cmp(..)` comparisons (the usual
//!   `sort_by(|a, b| a.partial_cmp(b).unwrap_or(Equal))` idiom): NaN maps
//!   to `Equal`, making the order input-dependent. Use [`total_cmp_f64`] or
//!   `f64::total_cmp`.
//! - **R4 `no-panic`** — no `.unwrap()`/`.expect(..)` in library crates'
//!   non-test code, unless annotated `// lint: allow(panic) — <reason>`.
//!   Annotated sites surface in the machine-readable allowlist report.
//!
//! The shard-safety passes (R5–R8) guard the parallel simulator's
//! byte-identical-at-any-thread-count contract. They run over the
//! [`items`] structural index (module tree, `use` resolution, `fn`/`impl`
//! spans) built on the same token stream:
//!
//! - **R5 `shard-shared-state`** — no `Mutex`/`RwLock`/`Atomic*`/`Rc`/
//!   `RefCell`/`static mut`/`thread_local!` in region-pinned shard-state
//!   crates (`netsim`, `core`, `sched`, `workload`); cross-shard mutation
//!   flows through coordinator fault batches. Coordinator-owned exchange
//!   state is allowlisted explicitly (`coordinator_allow`).
//! - **R6 `attribution-key`** — every constructed wire-level
//!   `EventKind::{Transmit, Deliver, Loss}` record must thread a `query`
//!   attribution key (`WireMessage::attribution()`), so no new emit site
//!   can bypass the per-decision ledger-conservation invariant.
//! - **R7 `stable-event-key`** — event enqueues in sharded code go through
//!   the stable `EventKey` constructors; raw key literals outside
//!   `impl EventKey` and raw timestamp-tuple heap pushes are flagged.
//! - **R8 `merge-order`** — iterating a cross-shard result collection
//!   (`pending`, `outbox`, `inbox`, `results`) without a preceding
//!   deterministic sort in the same function is flagged.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` fns, `tests/`, `benches/`)
//! is exempt. Per-rule path allowlists live in `lint.toml` at the workspace
//! root; `--format json` emits a report CI can archive and gate on. Allows
//! that no longer match any finding are reported as **stale** and gate the
//! exit code exactly like violations.
//!
//! [`SimTime`]: https://docs.rs/dde-logic

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod items;
pub mod report;
pub mod rules;

pub use config::Config;
pub use engine::{run, LintReport, SourceFile};
pub use items::ItemIndex;
pub use report::{AllowSource, Diagnostic, RuleId, RuleStats, StaleAllow};

/// Total-order comparison for `f64`, for use in `sort_by`/`max_by` keys.
///
/// This is the remediation `dde-lint` suggests for rule **R3**: unlike
/// `partial_cmp(..).unwrap_or(Equal)`, the IEEE 754 `totalOrder` predicate
/// gives every float — including NaNs and signed zeros — one fixed place,
/// so a sort key of unknown provenance can never collapse into an
/// input-order-dependent tie.
///
/// ```
/// let mut v = vec![2.0_f64, f64::NAN, 1.0];
/// v.sort_by(|a, b| dde_lint::total_cmp_f64(*a, *b));
/// assert_eq!(v[0], 1.0);
/// assert_eq!(v[1], 2.0);
/// assert!(v[2].is_nan());
/// ```
pub fn total_cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

#[cfg(test)]
mod tests {
    use std::cmp::Ordering;

    #[test]
    fn total_cmp_orders_nan_last_among_positives() {
        assert_eq!(super::total_cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(super::total_cmp_f64(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(super::total_cmp_f64(f64::NAN, f64::NAN), Ordering::Equal);
    }
}

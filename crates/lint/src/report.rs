//! Diagnostics and report rendering (`--format text|json`).

use std::fmt;

/// One of the eight enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no `HashMap`/`HashSet` state in simulator-state crates.
    HashState,
    /// R2: no ambient nondeterminism outside the bench harness.
    AmbientNondeterminism,
    /// R3: no `partial_cmp`-based float ordering.
    FloatOrder,
    /// R4: no `unwrap`/`expect` in library non-test code without a marker.
    Panic,
    /// R5: no shared-mutable-state primitives in region-pinned shard code.
    ShardSharedState,
    /// R6: `Transmit`/`Deliver`/`Loss` records must thread an attribution
    /// key.
    AttributionKey,
    /// R7: event enqueues in sharded code go through the stable `EventKey`
    /// constructors.
    StableEventKey,
    /// R8: no iteration over cross-shard result collections without a
    /// preceding deterministic sort.
    MergeOrder,
}

impl RuleId {
    /// All rules, in R1..R8 order.
    pub const ALL: [RuleId; 8] = [
        RuleId::HashState,
        RuleId::AmbientNondeterminism,
        RuleId::FloatOrder,
        RuleId::Panic,
        RuleId::ShardSharedState,
        RuleId::AttributionKey,
        RuleId::StableEventKey,
        RuleId::MergeOrder,
    ];

    /// Short code, `R1`..`R8`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashState => "R1",
            RuleId::AmbientNondeterminism => "R2",
            RuleId::FloatOrder => "R3",
            RuleId::Panic => "R4",
            RuleId::ShardSharedState => "R5",
            RuleId::AttributionKey => "R6",
            RuleId::StableEventKey => "R7",
            RuleId::MergeOrder => "R8",
        }
    }

    /// Stable slug used in `lint.toml` tables and `// lint: allow(..)`
    /// markers.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::HashState => "no-hash-state",
            RuleId::AmbientNondeterminism => "no-ambient-nondeterminism",
            RuleId::FloatOrder => "float-order",
            RuleId::Panic => "no-panic",
            RuleId::ShardSharedState => "shard-shared-state",
            RuleId::AttributionKey => "attribution-key",
            RuleId::StableEventKey => "stable-event-key",
            RuleId::MergeOrder => "merge-order",
        }
    }

    /// The token accepted inside an inline `// lint: allow(<token>)` marker.
    pub fn marker_token(self) -> &'static str {
        match self {
            RuleId::HashState => "hash-state",
            RuleId::AmbientNondeterminism => "nondeterminism",
            RuleId::FloatOrder => "float-order",
            RuleId::Panic => "panic",
            RuleId::ShardSharedState => "shared-state",
            RuleId::AttributionKey => "attribution",
            RuleId::StableEventKey => "event-key",
            RuleId::MergeOrder => "merge-order",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.code(), self.slug())
    }
}

/// Why a finding is tolerated rather than counted as a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowSource {
    /// An inline `// lint: allow(<rule>) — <reason>` marker.
    Marker {
        /// The reason text after the marker, if any.
        reason: String,
    },
    /// A `lint.toml` allowlist entry.
    Config {
        /// The matching allowlist entry.
        entry: String,
    },
}

/// One finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token or pattern, e.g. `.unwrap()`.
    pub snippet: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// `Some(..)` when the finding is tolerated (marker or allowlist);
    /// `None` when it is a violation.
    pub allowed: Option<AllowSource>,
}

impl Diagnostic {
    /// Whether this finding counts against the exit code.
    pub fn is_violation(&self) -> bool {
        self.allowed.is_none()
    }
}

/// An allow that no longer matches any finding. Stale allows are gated on
/// exactly like violations: a suppression without a matching finding is a
/// hole waiting for the next refactor to widen.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StaleAllow {
    /// An inline `// lint: allow(<token>)` marker that covered nothing.
    Marker {
        /// Workspace-relative path of the file holding the marker.
        path: String,
        /// 1-based line of the marker comment.
        line: u32,
        /// The token inside `allow(..)` — possibly an unknown rule name.
        token: String,
    },
    /// A `lint.toml` allowlist entry that matched no finding.
    Config {
        /// The rule whose table held the entry.
        rule: RuleId,
        /// The entry text (`path-suffix` or `path-suffix:line`).
        entry: String,
    },
}

impl fmt::Display for StaleAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaleAllow::Marker { path, line, token } => write!(
                f,
                "{path}:{line}: stale inline marker `lint: allow({token})` — no finding matches"
            ),
            StaleAllow::Config { rule, entry } => write!(
                f,
                "lint.toml: stale allow entry `{entry}` under rules.{} — no finding matches",
                rule.slug()
            ),
        }
    }
}

/// Per-rule execution statistics for the report footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Files the rule actually ran on (scope-filtered, so R1's count is
    /// the state-crate file count, not the workspace's).
    pub files_checked: usize,
    /// Wall-clock time spent in the rule pass, in microseconds. Zeroed by
    /// `--no-timing` so the report bytes are reproducible.
    pub micros: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn diag_json(d: &Diagnostic) -> String {
    let mut fields = vec![
        format!("\"rule\":\"{}\"", d.rule.code()),
        format!("\"name\":\"{}\"", d.rule.slug()),
        format!("\"path\":\"{}\"", json_escape(&d.path)),
        format!("\"line\":{}", d.line),
        format!("\"col\":{}", d.col),
        format!("\"snippet\":\"{}\"", json_escape(&d.snippet)),
        format!("\"message\":\"{}\"", json_escape(&d.message)),
    ];
    match &d.allowed {
        None => {}
        Some(AllowSource::Marker { reason }) => {
            fields.push("\"allowed_by\":\"marker\"".to_string());
            fields.push(format!("\"reason\":\"{}\"", json_escape(reason)));
        }
        Some(AllowSource::Config { entry }) => {
            fields.push("\"allowed_by\":\"config\"".to_string());
            fields.push(format!("\"entry\":\"{}\"", json_escape(entry)));
        }
    }
    format!("{{{}}}", fields.join(","))
}

fn stale_json(s: &StaleAllow) -> String {
    match s {
        StaleAllow::Marker { path, line, token } => format!(
            "{{\"kind\":\"marker\",\"path\":\"{}\",\"line\":{},\"token\":\"{}\"}}",
            json_escape(path),
            line,
            json_escape(token)
        ),
        StaleAllow::Config { rule, entry } => format!(
            "{{\"kind\":\"config\",\"rule\":\"{}\",\"entry\":\"{}\"}}",
            rule.code(),
            json_escape(entry)
        ),
    }
}

fn push_json_array(out: &mut String, key: &str, items: &[String], last: bool) {
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, item) in items.iter().enumerate() {
        let sep = if i + 1 < items.len() { "," } else { "" };
        out.push_str(&format!("    {item}{sep}\n"));
    }
    out.push_str(if last { "  ]\n" } else { "  ],\n" });
}

/// Renders the full report as deterministic, line-oriented JSON:
/// violations, the allowlist inventory (the machine-readable allow report
/// with per-site reasons), stale allows, per-rule summary counts, and the
/// per-rule timing/file-count footer. Everything except the `timing`
/// micros values is a pure function of the scanned sources, and those are
/// zeroed when the caller disables timing — so CI can byte-compare two
/// `--no-timing` reports.
pub fn render_json(
    diags: &[Diagnostic],
    files_scanned: usize,
    stale: &[StaleAllow],
    stats: &[(RuleId, RuleStats)],
) -> String {
    let violations: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_violation()).collect();
    let allowed: Vec<&Diagnostic> = diags.iter().filter(|d| !d.is_violation()).collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    let summary: Vec<String> = RuleId::ALL
        .iter()
        .map(|r| {
            let v = violations.iter().filter(|d| d.rule == *r).count();
            let a = allowed.iter().filter(|d| d.rule == *r).count();
            format!(
                "\"{}\":{{\"violations\":{},\"allowed\":{}}}",
                r.code(),
                v,
                a
            )
        })
        .collect();
    out.push_str(&format!("  \"summary\": {{{}}},\n", summary.join(",")));
    let timing: Vec<String> = stats
        .iter()
        .map(|(r, s)| {
            format!(
                "\"{}\":{{\"files_checked\":{},\"micros\":{}}}",
                r.code(),
                s.files_checked,
                s.micros
            )
        })
        .collect();
    out.push_str(&format!("  \"timing\": {{{}}},\n", timing.join(",")));
    let vio: Vec<String> = violations.iter().map(|d| diag_json(d)).collect();
    push_json_array(&mut out, "violations", &vio, false);
    let alw: Vec<String> = allowed.iter().map(|d| diag_json(d)).collect();
    push_json_array(&mut out, "allowed", &alw, false);
    let stl: Vec<String> = stale.iter().map(stale_json).collect();
    push_json_array(&mut out, "stale_allows", &stl, true);
    out.push_str("}\n");
    out
}

/// Renders the report as human-oriented text, ending with the per-rule
/// footer and the summary line.
pub fn render_text(
    diags: &[Diagnostic],
    files_scanned: usize,
    stale: &[StaleAllow],
    stats: &[(RuleId, RuleStats)],
) -> String {
    let mut out = String::new();
    let mut violations = 0usize;
    let mut allowed = 0usize;
    for d in diags {
        match &d.allowed {
            None => {
                violations += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: {} [{}]\n",
                    d.path, d.line, d.col, d.rule, d.message, d.snippet
                ));
            }
            Some(AllowSource::Marker { reason }) => {
                allowed += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: allowed by marker — {}\n",
                    d.path,
                    d.line,
                    d.col,
                    d.rule,
                    if reason.is_empty() {
                        "(no reason)"
                    } else {
                        reason
                    }
                ));
            }
            Some(AllowSource::Config { entry }) => {
                allowed += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: allowed by lint.toml entry `{}`\n",
                    d.path, d.line, d.col, d.rule, entry
                ));
            }
        }
    }
    for s in stale {
        out.push_str(&format!("{s}\n"));
    }
    for (rule, s) in stats {
        out.push_str(&format!(
            "per-rule: {rule}: {} file(s) checked, {} µs\n",
            s.files_checked, s.micros
        ));
    }
    out.push_str(&format!(
        "dde-lint: {files_scanned} files scanned, {violations} violation(s), {allowed} allowed, {} stale allow(s)\n",
        stale.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, allowed: Option<AllowSource>) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            snippet: ".unwrap()".into(),
            message: "no panics \"here\"".into(),
            allowed,
        }
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let diags = vec![
            diag(RuleId::Panic, None),
            diag(
                RuleId::Panic,
                Some(AllowSource::Marker {
                    reason: "checked above".into(),
                }),
            ),
        ];
        let stale = vec![StaleAllow::Config {
            rule: RuleId::Panic,
            entry: "src/gone.rs:9".into(),
        }];
        let stats = vec![(
            RuleId::Panic,
            RuleStats {
                files_checked: 2,
                micros: 0,
            },
        )];
        let json = render_json(&diags, 2, &stale, &stats);
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("no panics \\\"here\\\""));
        assert!(json.contains("\"allowed_by\":\"marker\""));
        assert!(json.contains("\"R4\":{\"violations\":1,\"allowed\":1}"));
        assert!(json.contains("\"kind\":\"config\""));
        assert!(json.contains("\"R4\":{\"files_checked\":2,\"micros\":0}"));
    }

    #[test]
    fn text_report_counts_and_footer() {
        let diags = vec![diag(RuleId::FloatOrder, None)];
        let stale = vec![StaleAllow::Marker {
            path: "crates/x/src/lib.rs".into(),
            line: 40,
            token: "panic".into(),
        }];
        let stats = vec![(
            RuleId::FloatOrder,
            RuleStats {
                files_checked: 1,
                micros: 7,
            },
        )];
        let text = render_text(&diags, 1, &stale, &stats);
        assert!(text.contains("R3/float-order"));
        assert!(text.contains("1 violation(s), 0 allowed, 1 stale allow(s)"));
        assert!(text.contains("stale inline marker `lint: allow(panic)`"));
        assert!(text.contains("per-rule: R3/float-order: 1 file(s) checked, 7 µs"));
    }
}

//! Diagnostics and report rendering (`--format text|json`).

use std::fmt;

/// One of the four enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no `HashMap`/`HashSet` state in simulator-state crates.
    HashState,
    /// R2: no ambient nondeterminism outside the bench harness.
    AmbientNondeterminism,
    /// R3: no `partial_cmp`-based float ordering.
    FloatOrder,
    /// R4: no `unwrap`/`expect` in library non-test code without a marker.
    Panic,
}

impl RuleId {
    /// All rules, in R1..R4 order.
    pub const ALL: [RuleId; 4] = [
        RuleId::HashState,
        RuleId::AmbientNondeterminism,
        RuleId::FloatOrder,
        RuleId::Panic,
    ];

    /// Short code, `R1`..`R4`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::HashState => "R1",
            RuleId::AmbientNondeterminism => "R2",
            RuleId::FloatOrder => "R3",
            RuleId::Panic => "R4",
        }
    }

    /// Stable slug used in `lint.toml` tables and `// lint: allow(..)`
    /// markers.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::HashState => "no-hash-state",
            RuleId::AmbientNondeterminism => "no-ambient-nondeterminism",
            RuleId::FloatOrder => "float-order",
            RuleId::Panic => "no-panic",
        }
    }

    /// The token accepted inside an inline `// lint: allow(<token>)` marker.
    pub fn marker_token(self) -> &'static str {
        match self {
            RuleId::HashState => "hash-state",
            RuleId::AmbientNondeterminism => "nondeterminism",
            RuleId::FloatOrder => "float-order",
            RuleId::Panic => "panic",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.code(), self.slug())
    }
}

/// Why a finding is tolerated rather than counted as a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowSource {
    /// An inline `// lint: allow(<rule>) — <reason>` marker.
    Marker {
        /// The reason text after the marker, if any.
        reason: String,
    },
    /// A `lint.toml` allowlist entry.
    Config {
        /// The matching allowlist entry.
        entry: String,
    },
}

/// One finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token or pattern, e.g. `.unwrap()`.
    pub snippet: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// `Some(..)` when the finding is tolerated (marker or allowlist);
    /// `None` when it is a violation.
    pub allowed: Option<AllowSource>,
}

impl Diagnostic {
    /// Whether this finding counts against the exit code.
    pub fn is_violation(&self) -> bool {
        self.allowed.is_none()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn diag_json(d: &Diagnostic) -> String {
    let mut fields = vec![
        format!("\"rule\":\"{}\"", d.rule.code()),
        format!("\"name\":\"{}\"", d.rule.slug()),
        format!("\"path\":\"{}\"", json_escape(&d.path)),
        format!("\"line\":{}", d.line),
        format!("\"col\":{}", d.col),
        format!("\"snippet\":\"{}\"", json_escape(&d.snippet)),
        format!("\"message\":\"{}\"", json_escape(&d.message)),
    ];
    match &d.allowed {
        None => {}
        Some(AllowSource::Marker { reason }) => {
            fields.push("\"allowed_by\":\"marker\"".to_string());
            fields.push(format!("\"reason\":\"{}\"", json_escape(reason)));
        }
        Some(AllowSource::Config { entry }) => {
            fields.push("\"allowed_by\":\"config\"".to_string());
            fields.push(format!("\"entry\":\"{}\"", json_escape(entry)));
        }
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders the full report as deterministic, line-oriented JSON: violations,
/// the allowlist inventory (R4's machine-readable allow report), and
/// per-rule summary counts.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let violations: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_violation()).collect();
    let allowed: Vec<&Diagnostic> = diags.iter().filter(|d| !d.is_violation()).collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    let summary: Vec<String> = RuleId::ALL
        .iter()
        .map(|r| {
            let v = violations.iter().filter(|d| d.rule == *r).count();
            let a = allowed.iter().filter(|d| d.rule == *r).count();
            format!(
                "\"{}\":{{\"violations\":{},\"allowed\":{}}}",
                r.code(),
                v,
                a
            )
        })
        .collect();
    out.push_str(&format!("  \"summary\": {{{}}},\n", summary.join(",")));
    out.push_str("  \"violations\": [\n");
    for (i, d) in violations.iter().enumerate() {
        let sep = if i + 1 < violations.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", diag_json(d), sep));
    }
    out.push_str("  ],\n");
    out.push_str("  \"allowed\": [\n");
    for (i, d) in allowed.iter().enumerate() {
        let sep = if i + 1 < allowed.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", diag_json(d), sep));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as human-oriented text.
pub fn render_text(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    let mut violations = 0usize;
    let mut allowed = 0usize;
    for d in diags {
        match &d.allowed {
            None => {
                violations += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: {} [{}]\n",
                    d.path, d.line, d.col, d.rule, d.message, d.snippet
                ));
            }
            Some(AllowSource::Marker { reason }) => {
                allowed += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: allowed by marker — {}\n",
                    d.path,
                    d.line,
                    d.col,
                    d.rule,
                    if reason.is_empty() {
                        "(no reason)"
                    } else {
                        reason
                    }
                ));
            }
            Some(AllowSource::Config { entry }) => {
                allowed += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {}: allowed by lint.toml entry `{}`\n",
                    d.path, d.line, d.col, d.rule, entry
                ));
            }
        }
    }
    out.push_str(&format!(
        "dde-lint: {files_scanned} files scanned, {violations} violation(s), {allowed} allowed\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, allowed: Option<AllowSource>) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            snippet: ".unwrap()".into(),
            message: "no panics \"here\"".into(),
            allowed,
        }
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let diags = vec![
            diag(RuleId::Panic, None),
            diag(
                RuleId::Panic,
                Some(AllowSource::Marker {
                    reason: "checked above".into(),
                }),
            ),
        ];
        let json = render_json(&diags, 2);
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("no panics \\\"here\\\""));
        assert!(json.contains("\"allowed_by\":\"marker\""));
        assert!(json.contains("\"R4\":{\"violations\":1,\"allowed\":1}"));
    }

    #[test]
    fn text_report_counts() {
        let diags = vec![diag(RuleId::FloatOrder, None)];
        let text = render_text(&diags, 1);
        assert!(text.contains("R3/float-order"));
        assert!(text.contains("1 violation(s), 0 allowed"));
    }
}

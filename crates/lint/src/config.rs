//! `lint.toml` configuration: rule scoping and per-rule path allowlists.
//!
//! The workspace is offline (no registry), so this module includes a
//! hand-rolled parser for the small TOML subset the configuration (and
//! `Cargo.toml` package-name extraction) actually uses: `[dotted.tables]`,
//! string / integer / boolean scalars, and (possibly multi-line) arrays of
//! strings.

use crate::report::RuleId;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed scalar or string-array value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of quoted strings.
    List(Vec<String>),
    /// Any other scalar (inline tables, floats, …), kept verbatim. The
    /// parser is also pointed at `Cargo.toml`s to read package names, so it
    /// must tolerate value forms it does not model.
    Other(String),
}

/// A parsed TOML-subset document: `table name → key → value`.
///
/// Top-level keys live under the empty table name `""`.
#[derive(Debug, Clone, Default)]
pub struct Toml {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A configuration or TOML syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the source document (0 for semantic errors).
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, msg: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        msg: msg.into(),
    }
}

/// Strips a trailing `# comment` from a line, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_scalar(raw: &str, line_no: u32) -> Result<Value, ConfigError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line_no, "unterminated string"));
        };
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    Ok(raw
        .replace('_', "")
        .parse::<i64>()
        .map(Value::Int)
        .unwrap_or_else(|_| Value::Other(raw.to_string())))
}

fn parse_list(raw: &str, line_no: u32) -> Result<Value, ConfigError> {
    let inner = raw
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line_no, "malformed array"))?;
    let mut items = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let Some(tail) = rest.strip_prefix('"') else {
            return Err(err(line_no, "arrays may contain only strings"));
        };
        let Some(end) = tail.find('"') else {
            return Err(err(line_no, "unterminated string in array"));
        };
        items.push(tail[..end].to_string());
        rest = tail[end + 1..].trim().trim_start_matches(',').trim_start();
    }
    Ok(Value::List(items))
}

impl Toml {
    /// Parses a TOML-subset document.
    pub fn parse(src: &str) -> Result<Toml, ConfigError> {
        let mut doc = Toml::default();
        let mut table = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw_line)) = lines.next() {
            let line_no = idx as u32 + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(line_no, "malformed table header"))?;
                table = name.trim().trim_matches('"').to_string();
                doc.tables.entry(table.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(line_no, format!("expected `key = value`: `{line}`")));
            };
            let key = key.trim().trim_matches('"').to_string();
            let mut value = value.trim().to_string();
            if value.starts_with('[') {
                // Accumulate a multi-line array until brackets balance.
                while value.matches('[').count() > value.matches(']').count() {
                    let Some((_, next)) = lines.next() else {
                        return Err(err(line_no, "unterminated array"));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
                let parsed = parse_list(&value, line_no)?;
                doc.tables
                    .entry(table.clone())
                    .or_default()
                    .insert(key, parsed);
            } else {
                let parsed = parse_scalar(&value, line_no)?;
                doc.tables
                    .entry(table.clone())
                    .or_default()
                    .insert(key, parsed);
            }
        }
        Ok(doc)
    }

    /// The string value at `table` / `key`, if present.
    pub fn str_value(&self, table: &str, key: &str) -> Option<&str> {
        match self.tables.get(table)?.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The string-array value at `table` / `key`, if present.
    pub fn list_value(&self, table: &str, key: &str) -> Option<&[String]> {
        match self.tables.get(table)?.get(key)? {
            Value::List(v) => Some(v),
            _ => None,
        }
    }
}

/// Per-rule scoping and allowlists, loaded from `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory names (relative to the workspace root) never scanned.
    /// `vendor` holds offline stand-ins for *external* crates — third-party
    /// code by construction — and `target` is build output.
    pub skip_dirs: Vec<String>,
    /// Crates whose simulator state must use ordered collections (R1).
    pub state_crates: Vec<String>,
    /// Crates allowed ambient nondeterminism (R2) — the bench harness.
    pub nondet_exempt_crates: Vec<String>,
    /// Packages that are test code in their entirety (the workspace-level
    /// integration-test member), exempt from every rule.
    pub test_crates: Vec<String>,
    /// Crates whose non-test code must be panic-free (R4).
    pub library_crates: Vec<String>,
    /// Region-pinned shard-state crates: no shared-mutable-state
    /// primitives outside the coordinator allowlist (R5).
    pub shard_state_crates: Vec<String>,
    /// Crates whose `Transmit`/`Deliver`/`Loss` constructions must thread
    /// an attribution key (R6).
    pub emit_crates: Vec<String>,
    /// Crates whose event enqueues must use stable key constructors (R7).
    pub event_key_crates: Vec<String>,
    /// The stable-key type names R7 protects (struct literals outside the
    /// type's own `impl` are flagged).
    pub event_key_types: Vec<String>,
    /// Crates whose cross-shard result collections must be sorted before
    /// iteration (R8).
    pub merge_crates: Vec<String>,
    /// Field/binding names treated as cross-shard result collections (R8).
    pub merge_collections: Vec<String>,
    /// Per-rule path allowlists: `path-suffix` or `path-suffix:line`.
    pub allow: BTreeMap<RuleId, Vec<String>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            skip_dirs: vec!["vendor".into(), "target".into()],
            state_crates: [
                "dde-netsim",
                "dde-core",
                "dde-sched",
                "dde-naming",
                "dde-workload",
            ]
            .map(String::from)
            .to_vec(),
            nondet_exempt_crates: vec!["dde-bench".into()],
            test_crates: vec!["dde-integration-tests".into()],
            library_crates: [
                "dde-logic",
                "dde-coverage",
                "dde-naming",
                "dde-netsim",
                "dde-sched",
                "dde-workload",
                "dde-core",
            ]
            .map(String::from)
            .to_vec(),
            shard_state_crates: ["dde-netsim", "dde-core", "dde-sched", "dde-workload"]
                .map(String::from)
                .to_vec(),
            emit_crates: ["dde-netsim", "dde-core"].map(String::from).to_vec(),
            event_key_crates: vec!["dde-netsim".into()],
            event_key_types: vec!["EventKey".into()],
            merge_crates: ["dde-netsim", "dde-obs", "dde-bench"]
                .map(String::from)
                .to_vec(),
            merge_collections: ["pending", "outbox", "inbox", "results"]
                .map(String::from)
                .to_vec(),
            allow: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Loads configuration from `lint.toml` text. Missing keys keep their
    /// defaults, so an empty file is a valid configuration.
    pub fn from_toml_str(src: &str) -> Result<Config, ConfigError> {
        let doc = Toml::parse(src)?;
        let mut cfg = Config::default();
        if let Some(v) = doc.list_value("workspace", "skip_dirs") {
            cfg.skip_dirs = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.no-hash-state", "state_crates") {
            cfg.state_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.no-ambient-nondeterminism", "exempt_crates") {
            cfg.nondet_exempt_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("workspace", "test_crates") {
            cfg.test_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.no-panic", "library_crates") {
            cfg.library_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.shard-shared-state", "crates") {
            cfg.shard_state_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.attribution-key", "emit_crates") {
            cfg.emit_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.stable-event-key", "crates") {
            cfg.event_key_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.stable-event-key", "key_types") {
            cfg.event_key_types = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.merge-order", "crates") {
            cfg.merge_crates = v.to_vec();
        }
        if let Some(v) = doc.list_value("rules.merge-order", "collections") {
            cfg.merge_collections = v.to_vec();
        }
        for rule in RuleId::ALL {
            let table = format!("rules.{}", rule.slug());
            if let Some(v) = doc.list_value(&table, "allow") {
                cfg.allow.insert(rule, v.to_vec());
            }
        }
        // The coordinator allowlist is R5's named escape hatch: entries are
        // ordinary `path-suffix[:line]` allows, kept in their own key so the
        // config reads as "coordinator-owned shared state", not "ignore".
        if let Some(v) = doc.list_value("rules.shard-shared-state", "coordinator_allow") {
            cfg.allow
                .entry(RuleId::ShardSharedState)
                .or_default()
                .extend(v.to_vec());
        }
        Ok(cfg)
    }

    /// Whether a config allowlist entry covers `path` (suffix match) at
    /// `line`. Entries are `path-suffix` or `path-suffix:line`.
    pub fn allows(&self, rule: RuleId, path: &str, line: u32) -> Option<&str> {
        let entries = self.allow.get(&rule)?;
        entries
            .iter()
            .find(|e| {
                let (p, l) = match e.rsplit_once(':') {
                    Some((p, l)) if l.chars().all(|c| c.is_ascii_digit()) => {
                        (p, l.parse::<u32>().ok())
                    }
                    _ => (e.as_str(), None),
                };
                path.ends_with(p) && l.is_none_or(|l| l == line)
            })
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_scalars_and_arrays() {
        let doc = Toml::parse(
            r#"
top = "level"
[package]
name = "dde-core" # trailing comment
count = 1_000
flag = true
[rules.no-panic]
allow = [
    "crates/core/src/node.rs:12", # why
    "crates/sched",
]
"#,
        )
        .unwrap();
        assert_eq!(doc.str_value("", "top"), Some("level"));
        assert_eq!(doc.str_value("package", "name"), Some("dde-core"));
        assert_eq!(doc.list_value("rules.no-panic", "allow").unwrap().len(), 2);
    }

    #[test]
    fn empty_config_keeps_defaults() {
        let cfg = Config::from_toml_str("").unwrap();
        assert!(cfg.state_crates.contains(&"dde-netsim".to_string()));
        assert!(cfg.nondet_exempt_crates.contains(&"dde-bench".to_string()));
        assert_eq!(cfg.skip_dirs, vec!["vendor", "target"]);
    }

    #[test]
    fn allowlist_matches_suffix_and_line() {
        let cfg = Config::from_toml_str(
            "[rules.no-panic]\nallow = [\"src/node.rs:7\", \"src/engine.rs\"]\n",
        )
        .unwrap();
        assert!(cfg
            .allows(RuleId::Panic, "crates/core/src/node.rs", 7)
            .is_some());
        assert!(cfg
            .allows(RuleId::Panic, "crates/core/src/node.rs", 8)
            .is_none());
        assert!(cfg
            .allows(RuleId::Panic, "crates/core/src/engine.rs", 99)
            .is_some());
        assert!(cfg
            .allows(RuleId::FloatOrder, "crates/core/src/engine.rs", 99)
            .is_none());
    }

    #[test]
    fn shard_rule_keys_and_coordinator_allow() {
        let cfg = Config::from_toml_str(
            "[rules.shard-shared-state]\ncrates = [\"dde-netsim\"]\n\
             coordinator_allow = [\"src/shard.rs:10\"]\nallow = [\"src/other.rs\"]\n\
             [rules.merge-order]\ncollections = [\"outbox\"]\n\
             [rules.stable-event-key]\nkey_types = [\"EventKey\", \"MergeKey\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.shard_state_crates, vec!["dde-netsim"]);
        assert_eq!(cfg.merge_collections, vec!["outbox"]);
        assert_eq!(cfg.event_key_types, vec!["EventKey", "MergeKey"]);
        // `coordinator_allow` entries merge after plain `allow` entries.
        assert!(cfg
            .allows(RuleId::ShardSharedState, "crates/netsim/src/shard.rs", 10)
            .is_some());
        assert!(cfg
            .allows(RuleId::ShardSharedState, "crates/netsim/src/other.rs", 3)
            .is_some());
        assert!(cfg
            .allows(RuleId::ShardSharedState, "crates/netsim/src/shard.rs", 11)
            .is_none());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Toml::parse("[unclosed").is_err());
        assert!(Toml::parse("key value").is_err());
        assert!(Toml::parse("k = [1, 2]").is_err());
    }

    #[test]
    fn tolerates_cargo_toml_value_forms() {
        let doc = Toml::parse(
            "[package]\nname = \"x\"\nversion.workspace = true\n[dependencies]\nsyn = { workspace = true }\n",
        )
        .unwrap();
        assert_eq!(doc.str_value("package", "name"), Some("x"));
    }
}

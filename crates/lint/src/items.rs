//! Item-level structure over the token stream: module tree, `use`
//! resolution, `fn`/`impl` spans, and a per-file symbol table.
//!
//! The vendored `syn` stand-in lexes faithfully but stops at tokens; the
//! R1–R4 passes only ever needed pattern scans. The shard-safety passes
//! (R5–R8) need more: *"is this `EventKey { .. }` literal inside
//! `impl EventKey`?"*, *"does `Lock` here actually name
//! `std::sync::Mutex`?"*, *"is there a `.sort*` on this collection earlier
//! in the same function?"*. This module reconstructs exactly that much
//! structure — item spans and name bindings — without attempting a full
//! expression AST.
//!
//! # Soundness caveats (see DESIGN.md §5f)
//!
//! This is a *lint-grade* parser, deliberately approximate:
//!
//! - Items are recognized by keyword (`use`, `fn`, `impl`, `mod`, `static`)
//!   at any brace depth, so nested fns and impl methods are indexed, but
//!   macro-generated items are invisible (the macro body is just tokens).
//! - `use` resolution handles paths, `as` renames, nested `{..}` groups and
//!   records glob imports; it does not chase cross-file re-exports.
//! - Spans are half-open token-index ranges delimited by balanced braces;
//!   a `fn` signature that never opens a body (trait method declarations)
//!   spans to its `;`.

use syn::{Token, TokenKind};

/// A single `use` binding: the local name a path is visible under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// The name the item is bound to in this file (`Lock` for
    /// `use std::sync::Mutex as Lock`).
    pub local: String,
    /// The full `::`-joined path as written (`std::sync::Mutex`).
    pub path: String,
    /// Token index of the local name, for diagnostics.
    pub tok_idx: usize,
}

/// A named item span: half-open token range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemSpan {
    /// Item name (`fn` name, or the self-type name of an `impl`).
    pub name: String,
    /// For impls, the trait being implemented, if any.
    pub trait_name: Option<String>,
    /// Token index of the introducing keyword.
    pub start: usize,
    /// One past the closing token of the item.
    pub end: usize,
    /// Module path the item lives under (inline `mod` nesting), joined
    /// with `::`; empty at file top level.
    pub module: String,
}

/// The structural index of one source file.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every `use` binding, in source order.
    pub uses: Vec<UseBinding>,
    /// Glob imports (`use foo::bar::*`), as the `::`-joined prefix path.
    pub globs: Vec<String>,
    /// Every `fn` item (free fns, impl methods, nested fns), in source
    /// order. Ranges of nested fns overlap their parents'.
    pub fns: Vec<ItemSpan>,
    /// Every `impl` block, with its self-type name.
    pub impls: Vec<ItemSpan>,
    /// Inline `mod` blocks, named with their full `::` path.
    pub modules: Vec<ItemSpan>,
}

impl ItemIndex {
    /// Builds the index from a full token stream (comments included).
    pub fn build(tokens: &[Token]) -> ItemIndex {
        Indexer::new(tokens).run()
    }

    /// Resolves a local identifier through the file's `use` bindings to
    /// its full path, if it was imported. `Lock` resolves to
    /// `std::sync::Mutex` after `use std::sync::Mutex as Lock;`.
    pub fn resolve(&self, local: &str) -> Option<&str> {
        self.uses
            .iter()
            .find(|u| u.local == local)
            .map(|u| u.path.as_str())
    }

    /// Whether token index `idx` falls inside an `impl` block for
    /// `self_ty` (e.g. inside `impl EventKey { .. }`).
    pub fn in_impl_of(&self, self_ty: &str, idx: usize) -> bool {
        self.impls
            .iter()
            .any(|i| i.name == self_ty && idx >= i.start && idx < i.end)
    }

    /// The innermost `fn` span containing token index `idx`, if any.
    /// "Innermost" = the latest-starting fn whose range covers `idx`, so a
    /// nested fn shadows its parent.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&ItemSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.start && idx < f.end)
            .max_by_key(|f| f.start)
    }
}

struct Indexer<'a> {
    tokens: &'a [Token],
    /// Indices of significant (non-comment) tokens.
    sig: Vec<usize>,
}

impl<'a> Indexer<'a> {
    fn new(tokens: &'a [Token]) -> Indexer<'a> {
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        Indexer { tokens, sig }
    }

    fn tok(&self, s: usize) -> Option<&Token> {
        self.sig.get(s).map(|&i| &self.tokens[i])
    }

    /// Position (in `sig`) one past the matching close delimiter for the
    /// open delimiter at `s`. Falls back to the end of input (the lexer
    /// already guarantees balance, so this is defensive only).
    fn skip_group(&self, s: usize) -> usize {
        let mut depth = 0i32;
        let mut k = s;
        while let Some(t) = self.tok(k) {
            match t.kind {
                TokenKind::OpenDelim => depth += 1,
                TokenKind::CloseDelim => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.sig.len()
    }

    /// One past the end of the item starting at `s`: the first `{..}`
    /// group at relative depth 0 (consumed whole), or the `;` before one.
    fn item_end(&self, mut s: usize) -> usize {
        while let Some(t) = self.tok(s) {
            match t.kind {
                TokenKind::OpenDelim if t.text == "{" => return self.skip_group(s),
                TokenKind::OpenDelim => s = self.skip_group(s),
                TokenKind::Punct if t.text == ";" => return s + 1,
                _ => s += 1,
            }
        }
        self.sig.len()
    }

    /// Collects one `use` declaration starting at the `use` keyword,
    /// expanding nested `{..}` groups and `as` renames into flat bindings.
    fn collect_use(&self, s: usize, out: &mut ItemIndex) -> usize {
        fn walk(ix: &Indexer<'_>, mut s: usize, prefix: &str, out: &mut ItemIndex) -> usize {
            let mut path = prefix.to_string();
            let mut last: Option<(String, usize)> = None;
            while let Some(t) = ix.tok(s) {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Ident, "as") => {
                        // `path as Alias`
                        if let Some(alias) = ix.tok(s + 1) {
                            if alias.kind == TokenKind::Ident {
                                out.uses.push(UseBinding {
                                    local: alias.text.clone(),
                                    path: path.clone(),
                                    tok_idx: ix.sig[s + 1],
                                });
                                last = None;
                                s += 2;
                                continue;
                            }
                        }
                        s += 1;
                    }
                    (TokenKind::Ident, _) => {
                        if !path.is_empty() {
                            path.push_str("::");
                        }
                        path.push_str(&t.text);
                        last = Some((t.text.clone(), ix.sig[s]));
                        s += 1;
                    }
                    (TokenKind::Punct, ":") => s += 1,
                    (TokenKind::Punct, "*") => {
                        // Glob: record the prefix (drop the trailing `::*`).
                        out.globs.push(path.clone());
                        last = None;
                        s += 1;
                    }
                    (TokenKind::OpenDelim, "{") => {
                        // Group: each comma-separated element extends the
                        // current path independently.
                        let end = ix.skip_group(s);
                        let mut k = s + 1;
                        while k < end - 1 {
                            k = walk(ix, k, &path, out);
                            // walk stops at `,` or the closing brace.
                            if ix.tok(k).is_some_and(|t| t.is_punct(",")) {
                                k += 1;
                            } else {
                                break;
                            }
                        }
                        return end;
                    }
                    (TokenKind::Punct, ",") | (TokenKind::CloseDelim, _) => break,
                    (TokenKind::Punct, ";") => break,
                    _ => s += 1,
                }
            }
            if let Some((local, tok_idx)) = last {
                if local != "self" {
                    out.uses.push(UseBinding {
                        local,
                        path: path.clone(),
                        tok_idx,
                    });
                } else {
                    // `use foo::bar::{self}`: binds `bar` to the prefix
                    // path (which already ends in `bar::self` — strip it).
                    let trimmed = path.trim_end_matches("::self");
                    if let Some(seg) = trimmed.rsplit("::").next() {
                        out.uses.push(UseBinding {
                            local: seg.to_string(),
                            path: trimmed.to_string(),
                            tok_idx,
                        });
                    }
                }
            }
            s
        }
        // Skip `use` itself; tolerate a leading `::`.
        let mut k = s + 1;
        while self.tok(k).is_some_and(|t| t.is_punct(":")) {
            k += 1;
        }
        let stop = walk(self, k, "", out);
        // Advance to one past the terminating `;`.
        let mut e = stop;
        while let Some(t) = self.tok(e) {
            let done = t.is_punct(";");
            e += 1;
            if done {
                break;
            }
        }
        e
    }

    /// The name of an `impl` block's self type: the last path-segment
    /// identifier before the opening `{` (skipping generics and a
    /// `Trait for` prefix), plus the trait name if present.
    fn impl_names(&self, s: usize) -> (Option<String>, Option<String>) {
        let mut names: Vec<String> = Vec::new();
        let mut for_at: Option<usize> = None;
        let mut k = s + 1;
        let mut angle = 0i32;
        while let Some(t) = self.tok(k) {
            match (t.kind, t.text.as_str()) {
                (TokenKind::OpenDelim, "{") => break,
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, ">") => angle = (angle - 1).max(0),
                (TokenKind::Ident, "for") if angle == 0 => for_at = Some(names.len()),
                (TokenKind::Ident, "where") if angle == 0 => break,
                (TokenKind::Ident, _) if angle == 0 => names.push(t.text.clone()),
                _ => {}
            }
            k += 1;
        }
        match for_at {
            // `impl Trait for Type`: trait is the last name before `for`,
            // type the last after.
            Some(split) => {
                let trait_name = names.get(split.wrapping_sub(1)).cloned();
                let type_name = names.last().filter(|_| names.len() > split).cloned();
                (type_name, trait_name)
            }
            None => (names.last().cloned(), None),
        }
    }

    fn run(self) -> ItemIndex {
        let mut out = ItemIndex::default();
        // Stack of (module name, sig-end) for inline mods.
        let mut mods: Vec<(String, usize)> = Vec::new();
        let mut s = 0usize;
        while let Some(t) = self.tok(s) {
            while mods.last().is_some_and(|&(_, end)| s >= end) {
                mods.pop();
            }
            let module = || {
                mods.iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>()
                    .join("::")
            };
            if t.kind != TokenKind::Ident {
                s += 1;
                continue;
            }
            match t.text.as_str() {
                "use" => {
                    s = self.collect_use(s, &mut out);
                }
                "fn" => {
                    let name = self
                        .tok(s + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    let end = self.item_end(s + 1);
                    out.fns.push(ItemSpan {
                        name,
                        trait_name: None,
                        start: self.sig[s],
                        end: self.sig.get(end - 1).map(|&i| i + 1).unwrap_or(usize::MAX),
                        module: module(),
                    });
                    s += 1; // descend into the body: nested fns get spans too
                }
                "impl" => {
                    let (self_ty, trait_name) = self.impl_names(s);
                    let end = self.item_end(s + 1);
                    out.impls.push(ItemSpan {
                        name: self_ty.unwrap_or_default(),
                        trait_name,
                        start: self.sig[s],
                        end: self.sig.get(end - 1).map(|&i| i + 1).unwrap_or(usize::MAX),
                        module: module(),
                    });
                    s += 1; // descend: methods are indexed as fns
                }
                "mod" => {
                    let name = self
                        .tok(s + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    let end = self.item_end(s + 1);
                    // Only inline mods (`mod x { .. }`) scope names;
                    // `mod x;` is another file.
                    if self
                        .tok(end.saturating_sub(1))
                        .is_some_and(|t| t.kind == TokenKind::CloseDelim)
                    {
                        let full = if mods.is_empty() {
                            name.clone()
                        } else {
                            format!("{}::{}", module(), name)
                        };
                        out.modules.push(ItemSpan {
                            name: full.clone(),
                            trait_name: None,
                            start: self.sig[s],
                            end: self.sig.get(end - 1).map(|&i| i + 1).unwrap_or(usize::MAX),
                            module: module(),
                        });
                        mods.push((name, end));
                        s += 2; // past `mod name`, into the block
                    } else {
                        s = end;
                    }
                }
                _ => s += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> ItemIndex {
        ItemIndex::build(syn::parse_file(src).unwrap().tokens())
    }

    #[test]
    fn use_paths_renames_and_groups() {
        let ix = index(
            "use std::sync::Mutex as Lock;\n\
             use std::collections::{BTreeMap, BTreeSet as Set};\n\
             use std::sync::atomic::*;\n\
             use crate::shard::EventKey;\n",
        );
        assert_eq!(ix.resolve("Lock"), Some("std::sync::Mutex"));
        assert_eq!(ix.resolve("BTreeMap"), Some("std::collections::BTreeMap"));
        assert_eq!(ix.resolve("Set"), Some("std::collections::BTreeSet"));
        assert_eq!(ix.resolve("EventKey"), Some("crate::shard::EventKey"));
        assert_eq!(ix.resolve("Mutex"), None, "renamed import hides the name");
        assert_eq!(ix.globs, vec!["std::sync::atomic"]);
    }

    #[test]
    fn fn_and_impl_spans() {
        let src = "struct K { a: u64 }\n\
                   impl K {\n    fn make() -> K { K { a: 0 } }\n}\n\
                   fn outside() { let k = K { a: 1 }; }\n";
        let ix = index(src);
        assert_eq!(ix.impls.len(), 1);
        assert_eq!(ix.impls[0].name, "K");
        let names: Vec<&str> = ix.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["make", "outside"]);

        // The literal inside `make` is inside `impl K`; the one in
        // `outside` is not.
        let toks = syn::parse_file(src).unwrap();
        let lits: Vec<usize> = toks
            .tokens()
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.is_ident("K") && toks.tokens().get(i + 1).is_some_and(|n| n.text == "{")
            })
            .map(|(i, _)| i)
            .collect();
        // struct decl, literal in make, literal in outside (the `impl K {`
        // head is followed by `{` too — that one is index 0 of impls).
        assert!(lits.len() >= 3);
        let in_impl: Vec<bool> = lits.iter().map(|&i| ix.in_impl_of("K", i)).collect();
        assert!(in_impl.iter().any(|b| *b));
        assert!(!in_impl.last().unwrap(), "literal in `outside` is free");
    }

    #[test]
    fn trait_impls_record_both_names() {
        let ix = index("impl PartialOrd for EventKey { fn partial_cmp(&self) {} }\n");
        assert_eq!(ix.impls[0].name, "EventKey");
        assert_eq!(ix.impls[0].trait_name.as_deref(), Some("PartialOrd"));
    }

    #[test]
    fn generic_impls_resolve_self_type() {
        let ix = index("impl<P: Protocol> Region<P> { fn step(&mut self) {} }\n");
        assert_eq!(ix.impls[0].name, "Region");
        assert_eq!(ix.fns[0].name, "step");
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { mark(); } inner(); }\n";
        let ix = index(src);
        let toks = syn::parse_file(src).unwrap();
        let mark = toks
            .tokens()
            .iter()
            .position(|t| t.is_ident("mark"))
            .unwrap();
        assert_eq!(ix.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn inline_mods_scope_items() {
        let ix = index("mod a { mod b { fn deep() {} } }\nmod c;\nfn top() {}\n");
        let deep = ix.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module, "a::b");
        let top = ix.fns.iter().find(|f| f.name == "top").unwrap();
        assert_eq!(top.module, "");
        let mods: Vec<&str> = ix.modules.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(mods, vec!["a", "a::b"]);
    }

    #[test]
    fn trait_method_decl_spans_to_semicolon() {
        let ix = index("trait T { fn decl(&self) -> u8; fn with_body(&self) {} }\n");
        let names: Vec<&str> = ix.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["decl", "with_body"]);
    }
}

//! Workspace self-check: the shipped `lint.toml` applied to this repository
//! must report **zero unallowed violations**. This is the same gate CI runs
//! via `cargo run -p dde-lint`; keeping it as a test means `cargo test`
//! alone catches regressions (a new `HashMap` in a state crate, a stray
//! `unwrap()` in a library) without a separate tool invocation.

use dde_lint::{Config, LintReport};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unallowed_violations() {
    let root = workspace_root();
    let cfg_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&cfg_path).expect("lint.toml exists at workspace root");
    let cfg = Config::from_toml_str(&text).expect("lint.toml parses");

    let report: LintReport = dde_lint::run(&root, &cfg).expect("lint run succeeds");

    assert!(
        report.files_scanned > 50,
        "sanity: expected to scan the whole workspace, got {} files",
        report.files_scanned
    );

    let violations: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.is_violation())
        .map(|d| format!("{}:{}:{}: {}", d.path, d.line, d.col, d.message))
        .collect();
    assert!(
        violations.is_empty(),
        "workspace must be lint-clean under the shipped lint.toml:\n{}",
        violations.join("\n")
    );

    // The allowlist must also be live: every `lint.toml` entry and every
    // inline marker still suppresses at least one finding. Stale allows
    // are how suppressions outlive the code they excused.
    let stale: Vec<String> = report.stale_allows.iter().map(|s| s.to_string()).collect();
    assert!(
        stale.is_empty(),
        "stale allow entries must be pruned:\n{}",
        stale.join("\n")
    );
    assert!(report.is_clean(), "report must be clean end to end");

    // Structural passes R5-R8 actually ran over their scoped crates.
    for (rule, stats) in &report.stats {
        use dde_lint::RuleId::*;
        if matches!(
            rule,
            ShardSharedState | AttributionKey | StableEventKey | MergeOrder
        ) {
            assert!(
                stats.files_checked > 0,
                "{rule:?} checked no files; structural scoping is broken"
            );
        }
    }
}

#[test]
fn allowlist_report_carries_reasons() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml"))
        .expect("lint.toml exists at workspace root");
    let cfg = Config::from_toml_str(&text).expect("lint.toml parses");
    let report = dde_lint::run(&root, &cfg).expect("lint run succeeds");

    // Every allowed diagnostic must say *why* it is allowed — either an
    // inline marker reason or the config entry that matched.
    let allowed: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| !d.is_violation())
        .collect();
    assert!(
        !allowed.is_empty(),
        "the workspace documents its invariant-backed panics via allow markers"
    );
    for d in &allowed {
        let reason = match &d.allowed {
            Some(dde_lint::AllowSource::Marker { reason }) => reason.clone(),
            Some(dde_lint::AllowSource::Config { entry }) => entry.clone(),
            None => unreachable!("filtered to allowed"),
        };
        assert!(
            !reason.trim().is_empty(),
            "{}:{} allowed without a reason",
            d.path,
            d.line
        );
    }
}

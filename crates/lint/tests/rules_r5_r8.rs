//! Fixture-based coverage for the structural passes R5–R8.
//!
//! Each rule is exercised with one failing and one passing fixture under
//! `tests/fixtures/`. The fixtures are real Rust source (they must lex
//! cleanly) but are never compiled; they are parsed with the vendored
//! lexer and checked exactly as the engine would check a workspace file.

use std::collections::BTreeMap;
use std::path::Path;

use dde_lint::rules::check_file;
use dde_lint::{Config, RuleId, SourceFile};

fn check_fixture(name: &str, crate_name: &str) -> Vec<dde_lint::Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let file = SourceFile::parse(name, crate_name, false, &src)
        .unwrap_or_else(|e| panic!("lex fixture {name}: {e}"));
    let mut stats = BTreeMap::new();
    check_file(&file, &Config::default(), &mut stats).diagnostics
}

fn lines_for(diags: &[dde_lint::Diagnostic], rule: RuleId) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

fn assert_only_rule(diags: &[dde_lint::Diagnostic], rule: RuleId, fixture: &str) {
    let strays: Vec<_> = diags.iter().filter(|d| d.rule != rule).collect();
    assert!(
        strays.is_empty(),
        "{fixture}: expected only {rule:?} findings, got {strays:?}"
    );
}

#[test]
fn r5_fail_fixture_flags_every_primitive() {
    let diags = check_fixture("r5_fail.rs", "dde-netsim");
    assert_only_rule(&diags, RuleId::ShardSharedState, "r5_fail.rs");
    let lines = lines_for(&diags, RuleId::ShardSharedState);
    // static mut, thread_local!, Rc, RefCell, AtomicU64, plus both the
    // use-decl and use-site idents for the renamed Mutex and for RwLock
    // (import lines count: banning the import is the point).
    assert_eq!(lines.len(), 10, "r5_fail.rs findings: {diags:?}");
    let rendered = format!("{diags:?}");
    for needle in [
        "static mut",
        "thread_local!",
        "Lock (= Mutex)",
        "RwLock",
        "Rc",
        "RefCell",
        "AtomicU64",
    ] {
        assert!(
            rendered.contains(needle),
            "missing `{needle}` in {rendered}"
        );
    }
}

#[test]
fn r5_pass_fixture_is_clean() {
    let diags = check_fixture("r5_pass.rs", "dde-netsim");
    assert!(diags.is_empty(), "r5_pass.rs should be clean: {diags:?}");
}

#[test]
fn r6_fail_fixture_flags_unattributed_emits() {
    let diags = check_fixture("r6_fail.rs", "dde-netsim");
    assert_only_rule(&diags, RuleId::AttributionKey, "r6_fail.rs");
    let lines = lines_for(&diags, RuleId::AttributionKey);
    // Missing `query` on Transmit, literal `query: None` on Deliver, and
    // the use-imported bare `Loss` with no `query`.
    assert_eq!(lines.len(), 3, "r6_fail.rs findings: {diags:?}");
}

#[test]
fn r6_pass_fixture_is_clean() {
    let diags = check_fixture("r6_pass.rs", "dde-netsim");
    assert!(diags.is_empty(), "r6_pass.rs should be clean: {diags:?}");
}

#[test]
fn r7_fail_fixture_flags_raw_keys_and_tuple_push() {
    let diags = check_fixture("r7_fail.rs", "dde-netsim");
    assert_only_rule(&diags, RuleId::StableEventKey, "r7_fail.rs");
    let lines = lines_for(&diags, RuleId::StableEventKey);
    // Raw `EventKey { .. }` literal plus the `(at, node)` heap push.
    assert_eq!(lines.len(), 2, "r7_fail.rs findings: {diags:?}");
}

#[test]
fn r7_pass_fixture_is_clean() {
    let diags = check_fixture("r7_pass.rs", "dde-netsim");
    assert!(diags.is_empty(), "r7_pass.rs should be clean: {diags:?}");
}

#[test]
fn r8_fail_fixture_flags_unsorted_merge_points() {
    let diags = check_fixture("r8_fail.rs", "dde-netsim");
    assert_only_rule(&diags, RuleId::MergeOrder, "r8_fail.rs");
    let lines = lines_for(&diags, RuleId::MergeOrder);
    // `pending.drain`, `self.outbox.iter`, `results.into_iter`.
    assert_eq!(lines.len(), 3, "r8_fail.rs findings: {diags:?}");
}

#[test]
fn r8_pass_fixture_is_clean() {
    let diags = check_fixture("r8_pass.rs", "dde-netsim");
    assert!(diags.is_empty(), "r8_pass.rs should be clean: {diags:?}");
}

#[test]
fn structural_rules_respect_crate_scoping() {
    // The same sources checked under a crate outside every structural
    // scope must produce nothing at all.
    for fixture in ["r5_fail.rs", "r6_fail.rs", "r7_fail.rs", "r8_fail.rs"] {
        let diags = check_fixture(fixture, "dde-cli");
        assert!(
            diags.is_empty(),
            "{fixture} under out-of-scope crate: {diags:?}"
        );
    }
}

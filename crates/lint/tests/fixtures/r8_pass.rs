//! R8 negative fixture: the same merge points with a deterministic sort
//! before iteration, plus an unrelated collection name.

pub fn flush(pending: &mut Vec<(u64, Record)>, sink: &mut Sink) {
    pending.sort_unstable_by_key(|entry| entry.0);
    for (_, rec) in pending.drain(..) {
        sink.record(&rec);
    }
}

pub struct Coordinator {
    outbox: Vec<Delivery>,
}

impl Coordinator {
    pub fn route(&mut self) {
        self.outbox.sort_by_key(|cd| (cd.at, cd.from, cd.to));
        for cd in self.outbox.iter() {
            deliver(cd);
        }
    }
}

pub fn consume(items: Vec<u64>) -> u64 {
    let mut total = 0;
    for i in items.into_iter() {
        total += i;
    }
    total
}

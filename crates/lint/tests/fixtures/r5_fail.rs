//! R5 positive fixture: every shared-mutable-state primitive the rule
//! must flag, checked as non-test code of a shard-state crate.

use std::sync::Mutex as Lock;
use std::sync::RwLock;

static mut EVENT_COUNT: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u8> = Vec::new();
}

pub struct ShardState {
    lock: Lock<u64>,
    table: RwLock<Vec<u8>>,
    refs: std::rc::Rc<u8>,
    cell: std::cell::RefCell<u8>,
    counter: std::sync::atomic::AtomicU64,
}

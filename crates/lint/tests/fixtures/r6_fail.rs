//! R6 positive fixture: wire-level records that fail to thread an
//! attribution key — one missing `query`, one hard-coded `None`, one
//! reached through an imported variant name.

use dde_obs::EventKind;
use dde_obs::EventKind::Loss;

pub fn emit_transmit(ctx: &mut Ctx, from: u32, to: u32) {
    ctx.emit(EventKind::Transmit {
        from,
        to,
        bytes: 64,
    });
}

pub fn emit_deliver(ctx: &mut Ctx, from: u32, to: u32) {
    ctx.emit(EventKind::Deliver {
        from,
        to,
        query: None,
    });
}

pub fn emit_loss(ctx: &mut Ctx, from: u32, to: u32) {
    ctx.emit(Loss { from, to });
}

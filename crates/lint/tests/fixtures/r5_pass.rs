//! R5 negative fixture: shard-local owned state and coordinator exchange
//! channels, none of which the rule may flag.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;

static WINDOW_LIMIT: u64 = 1_000;

pub struct ShardState {
    topology: Arc<Vec<u32>>,
    queues: BTreeMap<u64, Vec<u8>>,
    tx: mpsc::Sender<u64>,
}

#[cfg(test)]
mod tests {
    // Test code may use whatever synchronization it likes.
    use std::sync::Mutex;

    static HARNESS: Mutex<u32> = Mutex::new(0);
}

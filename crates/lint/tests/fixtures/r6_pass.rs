//! R6 negative fixture: attributed emits, shorthand fields, match
//! patterns, and same-named variants of unrelated enums.

use dde_obs::EventKind;

pub fn emit_attributed(ctx: &mut Ctx, msg: &WireMsg, from: u32, to: u32) {
    ctx.emit(EventKind::Transmit {
        from,
        to,
        bytes: msg.size_bytes(),
        query: msg.attribution(),
    });
}

pub fn emit_shorthand(ctx: &mut Ctx, from: u32, to: u32, query: Option<u64>) {
    ctx.emit(EventKind::Loss { from, to, query });
}

pub fn classify(kind: &EventKind) -> bool {
    // Destructuring patterns are reads, not emit sites.
    matches!(kind, EventKind::Deliver { query: Some(_), .. })
}

pub fn internal_event(to: u32, from: u32) -> REvent {
    // `REvent::Deliver` is the shard-internal event enum, not a trace
    // record; it carries no attribution by design.
    REvent::Deliver { to, from, msg: () }
}

//! R8 positive fixture: cross-shard collections drained or iterated with
//! no preceding sort in the same function.

pub fn flush(pending: &mut Vec<(u64, Record)>, sink: &mut Sink) {
    for (_, rec) in pending.drain(..) {
        sink.record(&rec);
    }
}

pub struct Coordinator {
    outbox: Vec<Delivery>,
}

impl Coordinator {
    pub fn route(&mut self) {
        for cd in self.outbox.iter() {
            deliver(cd);
        }
    }
}

pub fn reassemble(results: Vec<Report>) -> Vec<Report> {
    results.into_iter().collect()
}

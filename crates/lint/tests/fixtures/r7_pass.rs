//! R7 negative fixture: the key type's declaration and constructors, a
//! constructor call site, and a destructuring read.

pub struct EventKey {
    pub class: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

impl EventKey {
    pub fn deliver(from: u64, to: u64, txn: u64) -> EventKey {
        EventKey {
            class: 5,
            a: from,
            b: to,
            c: txn,
        }
    }
}

pub fn schedule_deliver(heap: &mut BinaryHeap<RScheduled>, at: u64, from: u64, to: u64) {
    heap.push(RScheduled {
        at,
        key: EventKey::deliver(from, to, 0),
    });
}

pub fn class_of(key: &EventKey) -> u64 {
    let EventKey { class, .. } = key;
    *class
}

//! R7 positive fixture: a raw `EventKey` literal outside `impl EventKey`
//! and a raw timestamp-tuple heap push.

pub fn schedule_deliver(heap: &mut BinaryHeap<RScheduled>, at: u64, from: u64, to: u64) {
    heap.push(RScheduled {
        at,
        key: EventKey {
            class: 5,
            a: from,
            b: to,
            c: 0,
        },
    });
}

pub fn schedule_raw(event_heap: &mut BinaryHeap<(u64, u64)>, at: u64, node: u64) {
    event_heap.push((at, node));
}

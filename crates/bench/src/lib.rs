//! # dde-bench — figure regeneration and ablation harnesses
//!
//! One binary per paper figure (`fig2`, `fig3`), an `ablations` binary for
//! the design-choice sweeps called out in DESIGN.md, and Criterion
//! micro-benches for the core algorithms.
//!
//! The experiment runner lives here so binaries and integration tests share
//! one implementation.

#![warn(missing_docs)]
// The bench harness runs outside the replayed simulation: it reads env
// knobs and may time wall-clock (see clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_core::engine::{run_scenario_observed, RunOptions, RunReport};
use dde_core::strategy::Strategy;
use dde_obs::{Histogram, JsonValue, NullSink, PathBreakdown};
use dde_workload::scenario::{Scenario, ScenarioConfig};

/// Shared command-line-ish knobs for the figure binaries, read from
/// environment variables so `cargo run --bin fig2` works with no plumbing:
///
/// - `DDE_REPS` — repetitions per data point (default 10, the paper's count);
/// - `DDE_SCALE` — `paper` (default) or `small` (quick smoke run);
/// - `DDE_SEED` — base seed (default 1).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Repetitions per data point.
    pub reps: u64,
    /// Base scenario configuration.
    pub base: ScenarioConfig,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Human-readable scale label (`"paper"` or `"small"`), recorded in the
    /// machine-readable `BENCH_*.json` companions.
    pub scale: &'static str,
}

impl HarnessConfig {
    /// Reads the harness configuration from the environment.
    pub fn from_env() -> HarnessConfig {
        let reps = std::env::var("DDE_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let (base, scale) = match std::env::var("DDE_SCALE").as_deref() {
            Ok("small") => (ScenarioConfig::small(), "small"),
            _ => (ScenarioConfig::default(), "paper"),
        };
        let seed = std::env::var("DDE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        HarnessConfig {
            reps,
            base,
            seed,
            scale,
        }
    }
}

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub stddev: f64,
}

/// Computes mean and standard deviation.
pub fn stat(samples: &[f64]) -> Stat {
    if samples.is_empty() {
        return Stat {
            mean: 0.0,
            stddev: 0.0,
        };
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let stddev = if samples.len() < 2 {
        0.0
    } else {
        (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    Stat { mean, stddev }
}

/// Runs `strategy` on the scenario derived from `base` with `fast_ratio`
/// and `seed`, returning the report. Runs observed (with a null trace
/// sink) so the report carries the per-decision cost ledger; the trace
/// sink changes no simulation outcome, only the bookkeeping.
pub fn run_point(
    base: &ScenarioConfig,
    fast_ratio: f64,
    strategy: Strategy,
    seed: u64,
) -> RunReport {
    let cfg = base.clone().with_seed(seed).with_fast_ratio(fast_ratio);
    let scenario = Scenario::build(cfg);
    let mut options = RunOptions::new(strategy);
    options.seed = seed ^ 0x5eed;
    let report = run_scenario_observed(&scenario, options, Box::new(NullSink));
    debug_assert!(
        report.ledger.as_ref().is_none_or(|l| l.conserves()),
        "ledger conservation violated"
    );
    report
}

/// One figure row: per-strategy statistics at one x-value.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// The x-axis value (fast-changing-object ratio).
    pub fast_ratio: f64,
    /// Per strategy (paper order), the metric's mean and stddev.
    pub per_strategy: Vec<(Strategy, Stat)>,
}

/// Sweeps `fast_ratios` × strategies × reps and keeps the full
/// [`RunReport`] of every run, indexed `[ratio][strategy][rep]` in the
/// paper's strategy order. Runs are independent and deterministic per seed,
/// so they execute on a `std::thread::scope` worker pool sized to the
/// available parallelism; the output is identical to the sequential order.
pub fn sweep_reports(cfg: &HarnessConfig, fast_ratios: &[f64]) -> Vec<Vec<Vec<RunReport>>> {
    // Flatten the full (ratio, strategy, rep) grid into one work list.
    let grid: Vec<(usize, usize, u64)> = fast_ratios
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| {
            Strategy::ALL
                .iter()
                .enumerate()
                .flat_map(move |(si, _)| (0..cfg.reps).map(move |r| (ri, si, r)))
        })
        .collect();
    let results: Vec<std::sync::Mutex<Option<RunReport>>> =
        grid.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(grid.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= grid.len() {
                    break;
                }
                let (ri, si, r) = grid[k];
                let report = run_point(&cfg.base, fast_ratios[ri], Strategy::ALL[si], cfg.seed + r);
                *results[k].lock().expect("sweep cell poisoned") = Some(report);
            });
        }
    });

    // Reassemble in the sequential order.
    // lint: allow(merge-order) — slots are grid-index-keyed; positional drain is the deterministic order
    let mut it = results.into_iter();
    fast_ratios
        .iter()
        .map(|_| {
            Strategy::ALL
                .iter()
                .map(|_| {
                    (0..cfg.reps)
                        .map(|_| {
                            it.next()
                                .expect("grid-sized")
                                .into_inner()
                                .expect("sweep cell poisoned")
                                .expect("worker filled cell")
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Distills `[ratio][strategy][rep]` reports into figure rows under `metric`.
pub fn rows_from_reports(
    fast_ratios: &[f64],
    all: &[Vec<Vec<RunReport>>],
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<FigureRow> {
    fast_ratios
        .iter()
        .zip(all)
        .map(|(&fr, row)| {
            let per_strategy = Strategy::ALL
                .iter()
                .zip(row)
                .map(|(&s, reports)| {
                    let samples: Vec<f64> = reports.iter().map(&metric).collect();
                    (s, stat(&samples))
                })
                .collect();
            FigureRow {
                fast_ratio: fr,
                per_strategy,
            }
        })
        .collect()
}

/// Sweeps `fast_ratios` × strategies × reps, extracting `metric` from each
/// run. Convenience wrapper over [`sweep_reports`] + [`rows_from_reports`].
pub fn sweep(
    cfg: &HarnessConfig,
    fast_ratios: &[f64],
    metric: impl Fn(&RunReport) -> f64 + Sync,
) -> Vec<FigureRow> {
    rows_from_reports(fast_ratios, &sweep_reports(cfg, fast_ratios), metric)
}

/// Prints rows as an aligned table with `header` naming the metric.
pub fn print_table(rows: &[FigureRow], header: &str) {
    print!("{:>10}", "fast_ratio");
    for s in Strategy::ALL {
        print!("  {:>16}", s.code());
    }
    println!("    ({header}, mean ± stddev)");
    for row in rows {
        print!("{:>10.2}", row.fast_ratio);
        for (_, st) in &row.per_strategy {
            print!("  {:>9.3} ±{:>5.3}", st.mean, st.stddev);
        }
        println!();
    }
}

/// Mean/stddev pair as a JSON object.
fn stat_json(st: Stat) -> JsonValue {
    JsonValue::Object(vec![
        ("mean".into(), JsonValue::Float(st.mean)),
        ("stddev".into(), JsonValue::Float(st.stddev)),
    ])
}

/// One scheme's summary at one x-value: headline metrics plus latency
/// percentiles from the reps' merged fixed-bucket histograms, plus the
/// cost-ledger attribution (mean bytes per decision, predicted expected
/// bytes, and the critical-path segment split over resolved queries).
fn scheme_json(reports: &[RunReport]) -> JsonValue {
    let metric = |f: fn(&RunReport) -> f64| {
        let samples: Vec<f64> = reports.iter().map(f).collect();
        stat_json(stat(&samples))
    };
    // Ledger-derived samples: one value per rep that produced one.
    let ledger_stat = |f: &dyn Fn(&RunReport) -> Option<f64>| {
        let samples: Vec<f64> = reports.iter().filter_map(f).collect();
        stat_json(stat(&samples))
    };
    let mut hist = Histogram::new();
    for r in reports {
        hist.merge(&r.latency_hist);
    }
    let pct = |p: f64| match hist.percentile(p) {
        Some(d) => JsonValue::Int(d.as_micros() as i64),
        None => JsonValue::Null,
    };
    // Critical-path fractions, averaged over reps whose ledgers saw at
    // least one resolved query.
    let fractions: Vec<[f64; 4]> = reports
        .iter()
        .filter_map(|r| r.ledger.as_ref())
        .filter_map(|l| l.path_total().fractions())
        .collect();
    let path_stat = |i: usize| {
        let samples: Vec<f64> = fractions.iter().map(|f| f[i]).collect();
        stat_json(stat(&samples))
    };
    JsonValue::Object(vec![
        (
            "resolution_ratio".into(),
            metric(RunReport::resolution_ratio),
        ),
        ("accuracy".into(), metric(RunReport::accuracy)),
        ("megabytes".into(), metric(RunReport::total_megabytes)),
        (
            "cost_per_decision".into(),
            ledger_stat(&|r: &RunReport| r.cost_per_decision()),
        ),
        (
            "predicted_bytes_per_decision".into(),
            ledger_stat(&|r: &RunReport| {
                r.ledger
                    .as_ref()
                    .and_then(|l| l.predicted_vs_actual())
                    .map(|(predicted, _)| predicted)
            }),
        ),
        (
            "critical_path_breakdown".into(),
            JsonValue::Object(
                PathBreakdown::SEGMENT_NAMES
                    .iter()
                    .enumerate()
                    .map(|(i, name)| ((*name).to_string(), path_stat(i)))
                    .collect(),
            ),
        ),
        (
            "latency_us".into(),
            JsonValue::Object(vec![
                ("p50".into(), pct(50.0)),
                ("p95".into(), pct(95.0)),
                ("p99".into(), pct(99.0)),
            ]),
        ),
        ("latency_count".into(), JsonValue::Int(hist.count() as i64)),
    ])
}

/// Builds the machine-readable companion of a figure table: scheme →
/// resolution ratio / accuracy / bandwidth / latency percentiles at each
/// x-value. `x_name` names the swept axis (`"fast_ratio"`, `"churn"`).
pub fn bench_json(
    figure: &str,
    cfg: &HarnessConfig,
    x_name: &str,
    xs: &[f64],
    all: &[Vec<Vec<RunReport>>],
) -> JsonValue {
    let points = xs
        .iter()
        .zip(all)
        .map(|(&x, row)| {
            let schemes = Strategy::ALL
                .iter()
                .zip(row)
                .map(|(&s, reports)| (s.code().to_string(), scheme_json(reports)))
                .collect();
            JsonValue::Object(vec![
                ("x".into(), JsonValue::Float(x)),
                ("schemes".into(), JsonValue::Object(schemes)),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("figure".into(), JsonValue::Str(figure.into())),
        ("scale".into(), JsonValue::Str(cfg.scale.into())),
        ("reps".into(), JsonValue::Int(cfg.reps as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed as i64)),
        ("x".into(), JsonValue::Str(x_name.into())),
        ("points".into(), JsonValue::Array(points)),
    ])
}

/// Writes `value` pretty-printed to `path`, reporting on stderr.
pub fn write_bench_json(path: &str, value: &JsonValue) {
    match std::fs::write(path, value.to_pretty_string()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_basics() {
        let s = stat(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(stat(&[]).mean, 0.0);
        assert_eq!(stat(&[5.0]).stddev, 0.0);
    }

    #[test]
    fn run_point_small_scale() {
        let base = ScenarioConfig::small();
        let r = run_point(&base, 0.2, Strategy::Lvf, 3);
        assert!(r.total_queries > 0);
    }
}

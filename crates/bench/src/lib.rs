//! # dde-bench — figure regeneration and ablation harnesses
//!
//! One binary per paper figure (`fig2`, `fig3`), an `ablations` binary for
//! the design-choice sweeps called out in DESIGN.md, and Criterion
//! micro-benches for the core algorithms.
//!
//! The experiment runner lives here so binaries and integration tests share
//! one implementation.

#![warn(missing_docs)]
// The bench harness runs outside the replayed simulation: it reads env
// knobs and may time wall-clock (see clippy.toml).
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_core::engine::{run_scenario, RunOptions, RunReport};
use dde_core::strategy::Strategy;
use dde_workload::scenario::{Scenario, ScenarioConfig};

/// Shared command-line-ish knobs for the figure binaries, read from
/// environment variables so `cargo run --bin fig2` works with no plumbing:
///
/// - `DDE_REPS` — repetitions per data point (default 10, the paper's count);
/// - `DDE_SCALE` — `paper` (default) or `small` (quick smoke run);
/// - `DDE_SEED` — base seed (default 1).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Repetitions per data point.
    pub reps: u64,
    /// Base scenario configuration.
    pub base: ScenarioConfig,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads the harness configuration from the environment.
    pub fn from_env() -> HarnessConfig {
        let reps = std::env::var("DDE_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let base = match std::env::var("DDE_SCALE").as_deref() {
            Ok("small") => ScenarioConfig::small(),
            _ => ScenarioConfig::default(),
        };
        let seed = std::env::var("DDE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        HarnessConfig { reps, base, seed }
    }
}

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub stddev: f64,
}

/// Computes mean and standard deviation.
pub fn stat(samples: &[f64]) -> Stat {
    if samples.is_empty() {
        return Stat {
            mean: 0.0,
            stddev: 0.0,
        };
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let stddev = if samples.len() < 2 {
        0.0
    } else {
        (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    Stat { mean, stddev }
}

/// Runs `strategy` on the scenario derived from `base` with `fast_ratio`
/// and `seed`, returning the report.
pub fn run_point(
    base: &ScenarioConfig,
    fast_ratio: f64,
    strategy: Strategy,
    seed: u64,
) -> RunReport {
    let cfg = base.clone().with_seed(seed).with_fast_ratio(fast_ratio);
    let scenario = Scenario::build(cfg);
    let mut options = RunOptions::new(strategy);
    options.seed = seed ^ 0x5eed;
    run_scenario(&scenario, options)
}

/// One figure row: per-strategy statistics at one x-value.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// The x-axis value (fast-changing-object ratio).
    pub fast_ratio: f64,
    /// Per strategy (paper order), the metric's mean and stddev.
    pub per_strategy: Vec<(Strategy, Stat)>,
}

/// Sweeps `fast_ratios` × strategies × reps, extracting `metric` from each
/// run. Runs are independent and deterministic per seed, so they execute on
/// a `std::thread::scope` worker pool sized to the available parallelism;
/// the output is identical to the sequential order.
pub fn sweep(
    cfg: &HarnessConfig,
    fast_ratios: &[f64],
    metric: impl Fn(&RunReport) -> f64 + Sync,
) -> Vec<FigureRow> {
    // Flatten the full (ratio, strategy, rep) grid into one work list.
    let grid: Vec<(usize, usize, u64)> = fast_ratios
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| {
            Strategy::ALL
                .iter()
                .enumerate()
                .flat_map(move |(si, _)| (0..cfg.reps).map(move |r| (ri, si, r)))
        })
        .collect();
    let results: Vec<std::sync::Mutex<f64>> = grid
        .iter()
        .map(|_| std::sync::Mutex::new(f64::NAN))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(grid.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= grid.len() {
                    break;
                }
                let (ri, si, r) = grid[k];
                let report = run_point(&cfg.base, fast_ratios[ri], Strategy::ALL[si], cfg.seed + r);
                *results[k].lock().expect("sweep cell poisoned") = metric(&report);
            });
        }
    });

    // Reassemble rows in the sequential order.
    let mut it = results.iter();
    fast_ratios
        .iter()
        .map(|&fr| {
            let per_strategy = Strategy::ALL
                .iter()
                .map(|&s| {
                    let samples: Vec<f64> = (0..cfg.reps)
                        .map(|_| {
                            *it.next()
                                .expect("grid-sized")
                                .lock()
                                .expect("sweep cell poisoned")
                        })
                        .collect();
                    (s, stat(&samples))
                })
                .collect();
            FigureRow {
                fast_ratio: fr,
                per_strategy,
            }
        })
        .collect()
}

/// Prints rows as an aligned table with `header` naming the metric.
pub fn print_table(rows: &[FigureRow], header: &str) {
    print!("{:>10}", "fast_ratio");
    for s in Strategy::ALL {
        print!("  {:>16}", s.code());
    }
    println!("    ({header}, mean ± stddev)");
    for row in rows {
        print!("{:>10.2}", row.fast_ratio);
        for (_, st) in &row.per_strategy {
            print!("  {:>9.3} ±{:>5.3}", st.mean, st.stddev);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_basics() {
        let s = stat(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(stat(&[]).mean, 0.0);
        assert_eq!(stat(&[5.0]).stddev, 0.0);
    }

    #[test]
    fn run_point_small_scale() {
        let base = ScenarioConfig::small();
        let r = run_point(&base, 0.2, Strategy::Lvf, 3);
        assert!(r.total_queries > 0);
    }
}

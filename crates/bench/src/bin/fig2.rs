//! Regenerates **Fig. 2**: query resolution ratio vs. environment dynamics
//! (ratio of fast-changing objects) for all five retrieval schemes.
//!
//! Usage: `cargo run -p dde-bench --bin fig2 --release`
//! Knobs: `DDE_REPS` (default 10), `DDE_SCALE` (`paper`/`small`), `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::HarnessConfig;
use dde_bench::{bench_json, print_table, rows_from_reports, sweep_reports, write_bench_json};

fn main() {
    let cfg = HarnessConfig::from_env();
    let ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    eprintln!(
        "fig2: {} reps per point, grid {}x{}, {} nodes, {} queries",
        cfg.reps,
        cfg.base.grid_rows,
        cfg.base.grid_cols,
        cfg.base.node_count,
        cfg.base.node_count * cfg.base.queries_per_node,
    );
    let all = sweep_reports(&cfg, &ratios);
    let rows = rows_from_reports(&ratios, &all, |r| r.resolution_ratio());
    print_table(&rows, "query resolution ratio");
    write_bench_json(
        "BENCH_fig2.json",
        &bench_json("fig2", &cfg, "fast_ratio", &ratios, &all),
    );
}

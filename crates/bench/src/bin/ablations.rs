//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Prefetch** on/off (§VI-A) — readiness vs. bandwidth.
//! 2. **Trust policy** for label sharing (§III-B / §VI-D).
//! 3. **Panorama objects** on/off — the value of multi-label coverage to
//!    source selection.
//! 4. **Cache capacity** sweep — how much store the hop-by-hop caches need.
//! 5. **Band policy** EDF vs. the paper's `min(expiry, deadline)` key for
//!    hierarchical multi-query scheduling (§IV-A).
//! 6. **Aggregation price** — set-aware vs. aggregate-count source
//!    selection (ref \[10]).
//! 7. **Approximate name substitution** (§V-A) — serving same-segment
//!    sibling views instead of the exact object.
//! 8. **Corroboration** (§IV-B) — recovering decision accuracy under
//!    compromised sources by majority over independent evidence.
//! 9. **Anticipatory announcements** (§VIII) — staging evidence ahead of
//!    issue time.
//! 10. **Utility triage** (§V-B) — dropping redundant background pushes.
//! 11. **Medium model** — wired links vs a half-duplex radio per node.
//! 12. **Deployment density** — node count on the same grid.
//! 13. **Adaptive planning** — static priors vs online estimators, and the
//!     admission gate on the overload band (`BENCH_adaptive.json` has the
//!     full convergence study; this row is the headline comparison).
//!
//! Usage: `cargo run -p dde-bench --bin ablations --release`
//! Knobs: `DDE_REPS` (default 5), `DDE_SCALE`, `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::{stat, HarnessConfig};
use dde_core::annotate::TrustPolicy;
use dde_core::engine::{run_scenario, RunOptions, RunReport};
use dde_core::strategy::Strategy;
use dde_coverage::aggregation::aggregation_price;
use dde_coverage::setcover::Source;
use dde_logic::meta::{Cost, Probability};
use dde_logic::time::{SimDuration, SimTime};
use dde_sched::hierarchical::{hierarchical_schedule_with, BandPolicy, QuerySpec};
use dde_sched::item::{Channel, RetrievalItem};
use dde_workload::scenario::{Scenario, ScenarioConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cfg = HarnessConfig::from_env();
    if std::env::var("DDE_REPS").is_err() {
        cfg.reps = 5;
    }
    prefetch_ablation(&cfg);
    trust_ablation(&cfg);
    panorama_ablation(&cfg);
    cache_capacity_ablation(&cfg);
    band_policy_ablation();
    aggregation_ablation(&cfg);
    approx_ablation(&cfg);
    corroboration_ablation(&cfg);
    anticipation_ablation(&cfg);
    triage_ablation(&cfg);
    medium_ablation(&cfg);
    density_ablation(&cfg);
    adaptive_ablation(&cfg);
}

fn runs_with(
    cfg: &HarnessConfig,
    strategy: Strategy,
    mutate_scenario: impl Fn(ScenarioConfig) -> ScenarioConfig,
    mutate_options: impl Fn(RunOptions) -> RunOptions,
) -> Vec<RunReport> {
    (0..cfg.reps)
        .map(|r| {
            let seed = cfg.seed + r;
            let scen_cfg = mutate_scenario(cfg.base.clone().with_seed(seed).with_fast_ratio(0.4));
            let scenario = Scenario::build(scen_cfg);
            let mut options = mutate_options(RunOptions::new(strategy));
            options.seed = seed ^ 0xab1a;
            run_scenario(&scenario, options)
        })
        .collect()
}

fn runs(
    cfg: &HarnessConfig,
    mutate_scenario: impl Fn(ScenarioConfig) -> ScenarioConfig,
    mutate_options: impl Fn(RunOptions) -> RunOptions,
) -> Vec<RunReport> {
    runs_with(
        cfg,
        Strategy::LvfLabelShare,
        mutate_scenario,
        mutate_options,
    )
}

fn summarize(label: &str, reports: &[RunReport]) {
    let res: Vec<f64> = reports.iter().map(|r| r.resolution_ratio()).collect();
    let mb: Vec<f64> = reports.iter().map(|r| r.total_megabytes()).collect();
    let lat: Vec<f64> = reports
        .iter()
        .filter_map(|r| r.mean_resolution_latency.map(|d| d.as_secs_f64()))
        .collect();
    println!(
        "  {label:<26} resolution {:.3}±{:.3}  bandwidth {:>7.1}±{:.1} MB  latency {:>5.1} s",
        stat(&res).mean,
        stat(&res).stddev,
        stat(&mb).mean,
        stat(&mb).stddev,
        stat(&lat).mean,
    );
}

fn prefetch_ablation(cfg: &HarnessConfig) {
    println!("== ablation 1: source-side prefetch (lvfl) ==");
    let off = runs(cfg, |c| c, |o| o);
    let on = runs(
        cfg,
        |c| c,
        |mut o| {
            o.prefetch = Some(true);
            o
        },
    );
    summarize("prefetch off", &off);
    summarize("prefetch on (background)", &on);
    let pushes: f64 = on.iter().map(|r| r.prefetch_pushes as f64).sum::<f64>() / on.len() as f64;
    println!("  ({pushes:.0} pushes/run; staging trades bandwidth for readiness)\n");
}

fn trust_ablation(cfg: &HarnessConfig) {
    println!("== ablation 2: trust policy for shared labels (lvfl) ==");
    let all = runs(cfg, |c| c, |o| o);
    let none = runs(
        cfg,
        |c| c,
        |mut o| {
            o.trust = TrustPolicy::TrustNone;
            o
        },
    );
    summarize("trust all annotators", &all);
    summarize("trust none (raw data only)", &none);
    let hits: f64 = all.iter().map(|r| r.label_hits as f64).sum::<f64>() / all.len() as f64;
    println!("  (trusting nodes served {hits:.0} requests/run from labels instead of data)\n");
}

fn panorama_ablation(cfg: &HarnessConfig) {
    println!("== ablation 3: multi-segment panorama objects ==");
    let with = runs(cfg, |c| c, |o| o);
    let without = runs(
        cfg,
        |mut c| {
            c.panoramas = false;
            c
        },
        |o| o,
    );
    summarize("panoramas advertised", &with);
    summarize("single-segment cameras only", &without);
    println!("  (panoramas let one fetch resolve several predicates, §III-B)\n");
}

fn cache_capacity_ablation(cfg: &HarnessConfig) {
    // Measured under lvf: label sharing (lvfl) substitutes for object
    // caches almost entirely, so the store only matters when raw evidence
    // must travel.
    println!("== ablation 4: content-store capacity (lvf) ==");
    for capacity in [1_200_000u64, 4_000_000, 16_000_000, 64_000_000] {
        let reports = runs_with(
            cfg,
            Strategy::Lvf,
            |c| c,
            |mut o| {
                o.cache_capacity = capacity;
                o
            },
        );
        summarize(
            &format!("{:>5.1} MB / node", capacity as f64 / 1e6),
            &reports,
        );
    }
    println!();
}

fn band_policy_ablation() {
    println!("== ablation 5: hierarchical band policy (synthetic multi-query workloads) ==");
    let mut rng = SmallRng::seed_from_u64(42);
    let mut edf_ok = 0usize;
    let mut paper_ok = 0usize;
    let instances = 500;
    for _ in 0..instances {
        let queries: Vec<QuerySpec> = (0..3)
            .map(|q| {
                let items: Vec<RetrievalItem> = (0..rng.gen_range(1..4))
                    .map(|i| {
                        RetrievalItem::new(
                            format!("q{q}o{i}"),
                            Cost::from_bytes(rng.gen_range(50_000..400_000)),
                            SimDuration::from_millis(rng.gen_range(500..6000)),
                        )
                        .with_prob(Probability::clamped(0.8))
                    })
                    .collect();
                QuerySpec::new(items, SimDuration::from_millis(rng.gen_range(1000..8000)))
            })
            .collect();
        let edf = hierarchical_schedule_with(
            &queries,
            Channel::mbps1(),
            SimTime::ZERO,
            BandPolicy::EarliestDeadlineFirst,
        );
        let paper = hierarchical_schedule_with(
            &queries,
            Channel::mbps1(),
            SimTime::ZERO,
            BandPolicy::MinExpiryOrDeadline,
        );
        edf_ok += edf.feasible_count();
        paper_ok += paper.feasible_count();
    }
    println!(
        "  EDF bands                  {edf_ok}/{} queries feasible",
        instances * 3
    );
    println!(
        "  min(expiry,deadline) bands {paper_ok}/{} queries feasible",
        instances * 3
    );
    println!("  (EDF is provably optimal when sensors sample at retrieval start, §IV-A)\n");
}

fn approx_ablation(cfg: &HarnessConfig) {
    // Substitution needs requester disagreement about providers; the
    // redundancy-heavy cmp scheme is where sibling views actually help.
    println!("== ablation 7: approximate name substitution (§V-A) ==");
    for strategy in [Strategy::Comprehensive, Strategy::LvfLabelShare] {
        let exact = runs_with(cfg, strategy, |c| c, |o| o);
        let approx = runs_with(
            cfg,
            strategy,
            |c| c,
            |mut o| {
                o.approx_min_shared = Some(3); // same road segment
                o
            },
        );
        summarize(&format!("{strategy}: exact names only"), &exact);
        summarize(&format!("{strategy}: substitute segment"), &approx);
        let hits: f64 =
            approx.iter().map(|r| r.approx_hits as f64).sum::<f64>() / approx.len() as f64;
        println!("  ({hits:.0} requests/run served by a sibling view)");
    }
    println!();
}

fn corroboration_ablation(cfg: &HarnessConfig) {
    use dde_core::annotate::BiasedSourcesAnnotator;
    use dde_core::engine::run_scenario_with_annotator;
    use dde_netsim::topology::NodeId;
    use std::sync::Arc;

    println!("== ablation 8: evidence corroboration under compromised sources (§IV-B) ==");
    // Three of the ~30 sensor hosts consistently misread their evidence.
    // The deadline is tripled for both arms: corroboration fetches up to 3×
    // the evidence, and the question here is accuracy, not timeliness.
    let bad = [NodeId(0), NodeId(1), NodeId(2)];
    for k in [1usize, 3] {
        let reports: Vec<_> = (0..cfg.reps)
            .map(|r| {
                let seed = cfg.seed + r;
                let mut scen_cfg = cfg.base.clone().with_seed(seed).with_fast_ratio(0.2);
                scen_cfg.deadline = scen_cfg.deadline * 3;
                scen_cfg.fast_validity = scen_cfg.fast_validity * 3;
                // Guarantee three *independent* views per segment; majority
                // voting is meaningless with fewer distinct sources.
                scen_cfg.min_sources_per_segment = 3;
                let scenario = Scenario::build(scen_cfg);
                let mut options = RunOptions::new(Strategy::Lvf);
                options.corroboration = k;
                options.seed = seed ^ 0xc0;
                run_scenario_with_annotator(
                    &scenario,
                    options,
                    Arc::new(BiasedSourcesAnnotator::new(bad)),
                )
            })
            .collect();
        let acc: Vec<f64> = reports.iter().map(|r| r.accuracy()).collect();
        let mb: Vec<f64> = reports.iter().map(|r| r.total_megabytes()).collect();
        let res: Vec<f64> = reports.iter().map(|r| r.resolution_ratio()).collect();
        println!(
            "  corroboration k={k}            accuracy {:.3}±{:.3}  resolution {:.3}  bandwidth {:>7.1} MB",
            stat(&acc).mean,
            stat(&acc).stddev,
            stat(&res).mean,
            stat(&mb).mean,
        );
    }
    println!("  (majority over independent views outvotes compromised sensors)\n");
}

fn anticipation_ablation(cfg: &HarnessConfig) {
    println!("== ablation 9: anticipatory announcements (§VIII, lvfl + prefetch) ==");
    let offset = |mut c: ScenarioConfig| {
        c.issue_offset = SimDuration::from_secs(60);
        c
    };
    let plain = runs(cfg, offset, |mut o| {
        o.prefetch = Some(true);
        o
    });
    let anticipated = runs(cfg, offset, |mut o| {
        o.prefetch = Some(true);
        o.announce_lead = Some(SimDuration::from_secs(45));
        o
    });
    summarize("announce at issue time", &plain);
    summarize("announce 45 s ahead", &anticipated);
    println!("  (knowing the decision early lets sources stage evidence before it is needed)\n");
}

fn triage_ablation(cfg: &HarnessConfig) {
    println!("== ablation 10: information-utility triage of background pushes (§V-B) ==");
    let plain = runs(
        cfg,
        |c| c,
        |mut o| {
            o.prefetch = Some(true);
            o
        },
    );
    let triaged = runs(
        cfg,
        |c| c,
        |mut o| {
            o.prefetch = Some(true);
            o.triage_threshold = Some(0.5); // drop same-segment re-pushes
            o
        },
    );
    summarize("prefetch, no triage", &plain);
    summarize("prefetch + utility triage", &triaged);
    let drops: f64 =
        triaged.iter().map(|r| r.triage_drops as f64).sum::<f64>() / triaged.len() as f64;
    println!(
        "  ({drops:.0} redundant pushes dropped/run — \"10 pictures of the same\n   bridge do not offer 10× more information\")\n"
    );
}

fn medium_ablation(cfg: &HarnessConfig) {
    println!("== ablation 11: medium model — wired links vs one radio per node ==");
    for strategy in [Strategy::LowestCostFirst, Strategy::LvfLabelShare] {
        let wired = runs_with(cfg, strategy, |c| c, |o| o);
        let radio = runs_with(
            cfg,
            strategy,
            |c| c,
            |mut o| {
                o.medium = dde_netsim::MediumMode::HalfDuplexTx;
                o
            },
        );
        summarize(&format!("{strategy}: full duplex"), &wired);
        summarize(&format!("{strategy}: half-duplex radio"), &radio);
    }
    println!(
        "  (a shared transmitter per node tightens the bottleneck; the\n   decision-driven ordering advantage grows accordingly)\n"
    );
}

fn density_ablation(cfg: &HarnessConfig) {
    println!("== ablation 12: deployment density (Athena nodes on the same grid) ==");
    for nodes in [15usize, 30, 45] {
        for strategy in [Strategy::LowestCostFirst, Strategy::LvfLabelShare] {
            let reports = runs_with(
                cfg,
                strategy,
                |mut c| {
                    c.node_count = nodes;
                    c
                },
                |o| o,
            );
            summarize(&format!("{nodes} nodes, {strategy}"), &reports);
        }
    }
    println!(
        "  (more nodes = more queries AND more sensors/caches; decision-driven\n   retrieval turns density into reuse instead of congestion)\n"
    );
}

fn adaptive_ablation(cfg: &HarnessConfig) {
    println!("== ablation 13: adaptive planning — static priors vs online estimators ==");
    let fixed = runs_with(cfg, Strategy::Lvf, |c| c, |o| o);
    let learned = runs_with(
        cfg,
        Strategy::Lvf,
        |c| c,
        |mut o| {
            o.adaptive = Some(dde_sched::adaptive::AdaptiveConfig::default());
            o
        },
    );
    summarize("lvf, static 0.8 prior", &fixed);
    summarize("lvf, learned estimators", &learned);
    // The admission gate only earns its keep when the band is actually
    // overloaded: a query burst on a half-duplex radio medium.
    let overload = |c: ScenarioConfig| ScenarioConfig::overload().with_seed(c.seed);
    let radio = |mut o: RunOptions| {
        o.medium = dde_netsim::MediumMode::HalfDuplexTx;
        o
    };
    let ungated = runs_with(cfg, Strategy::Lvf, overload, radio);
    let gated = runs_with(cfg, Strategy::Lvf, overload, |o| {
        let mut o = radio(o);
        o.adaptive = Some(dde_sched::adaptive::AdaptiveConfig {
            admission: Some(dde_sched::adaptive::AdmissionPolicy::default()),
            ..dde_sched::adaptive::AdaptiveConfig::default()
        });
        o
    });
    summarize("overload burst, no gate", &ungated);
    summarize("overload burst, admission", &gated);
    let shed: u64 = gated.iter().map(|r| r.admission_shed).sum();
    let deferred: u64 = gated.iter().map(|r| r.admission_deferred).sum();
    println!(
        "  ({} shed, {} deferred across {} runs; the gate spends its deadline\n   slack on queries it predicts it can still afford)\n",
        shed,
        deferred,
        gated.len()
    );
}

fn aggregation_ablation(cfg: &HarnessConfig) {
    println!("== ablation 6: price of aggregating coverage values (ref [10]) ==");
    let mut ratios = Vec::new();
    let mut misses = Vec::new();
    for r in 0..cfg.reps {
        let scenario = Scenario::build(cfg.base.clone().with_seed(cfg.seed + r));
        for q in scenario.queries.iter().take(10) {
            let needed = q.expr.labels();
            let sources: Vec<Source<usize>> = scenario
                .catalog
                .objects()
                .iter()
                .enumerate()
                .filter(|(_, o)| o.covers.iter().any(|l| needed.contains(l)))
                .map(|(i, o)| {
                    Source::new(
                        i,
                        o.covers.iter().filter(|l| needed.contains(*l)).cloned(),
                        Cost::from_bytes(o.size),
                    )
                })
                .collect();
            let price = aggregation_price(&needed, &sources);
            if price.cost_ratio.is_finite() {
                ratios.push(price.cost_ratio);
            }
            misses.push(price.aggregate_misses as f64);
        }
    }
    println!(
        "  aggregate/set-aware cost ratio {:.2}±{:.2}; labels silently missed {:.1}/query\n",
        stat(&ratios).mean,
        stat(&ratios).stddev,
        stat(&misses).mean,
    );
}

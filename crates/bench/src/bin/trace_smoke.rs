//! Observability smoke check: runs the same small scenario twice with a
//! JSONL trace sink and asserts the two traces are **byte-identical** —
//! the executable form of the determinism guarantee `dde-trace diff`
//! relies on. Leaves `trace_a.jsonl` / `trace_b.jsonl` in the working
//! directory for `dde-trace` to diff/summarize (CI uploads them).
//!
//! Usage: `cargo run -p dde-bench --bin trace_smoke --release`
//! Knobs: `DDE_SEED` (default 1).

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use dde_core::engine::{run_scenario_observed, RunOptions};
use dde_core::strategy::Strategy;
use dde_obs::JsonlSink;
use dde_workload::scenario::{Scenario, ScenarioConfig};

fn run_once(path: &str, seed: u64) -> std::io::Result<()> {
    let cfg = ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4);
    let scenario = Scenario::build(cfg);
    let mut options = RunOptions::new(Strategy::LvfLabelShare);
    options.seed = seed ^ 0x5eed;
    let sink = JsonlSink::new(BufWriter::new(File::create(path)?));
    let report = run_scenario_observed(&scenario, options, Box::new(sink));
    eprintln!(
        "{path}: {} queries, {} resolved, {} events",
        report.total_queries, report.resolved, report.events
    );
    Ok(())
}

fn main() -> ExitCode {
    let seed = std::env::var("DDE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    for path in ["trace_a.jsonl", "trace_b.jsonl"] {
        if let Err(e) = run_once(path, seed) {
            eprintln!("trace_smoke: failed to write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let (a, b) = match (
        std::fs::read("trace_a.jsonl"),
        std::fs::read("trace_b.jsonl"),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (ra, rb) => {
            eprintln!("trace_smoke: failed to read traces back: {ra:?} {rb:?}");
            return ExitCode::from(2);
        }
    };
    if a == b {
        println!(
            "trace_smoke OK: two seed-{seed} runs produced byte-identical traces ({} bytes, {} events)",
            a.len(),
            a.iter().filter(|&&c| c == b'\n').count()
        );
        ExitCode::SUCCESS
    } else {
        println!("trace_smoke FAIL: same-seed traces differ (run `dde-trace diff trace_a.jsonl trace_b.jsonl`)");
        ExitCode::FAILURE
    }
}

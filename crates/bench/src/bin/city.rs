//! Regenerates **BENCH_city.json**: the city-scale sharded-simulator gate.
//!
//! One JSON document with two sections:
//!
//! - `invariant` — facts of the simulated run itself (event count, query
//!   outcomes, byte totals), identical on every machine and at every
//!   thread count; the CI gate compares these **exactly**. A sweep over
//!   the configured thread counts asserts cross-thread-count equality
//!   before anything is written.
//! - `throughput` — wall-clock events/sec per thread count as
//!   `{mean, stddev}` stat objects, compared **fuzzily** within the wide
//!   `bench.toml` tolerances. Wall-clock numbers depend on the host (core
//!   count, load, CPU generation), so the gate on them is deliberately
//!   coarse: it exists to catch order-of-magnitude collapses, not
//!   percent-level drift.
//!
//! Usage: `cargo run -p dde-bench --bin city --release`
//!
//! Knobs: `DDE_REPS` (timing samples per thread count, default 5),
//! `DDE_SEED` (scenario seed, default 1), `DDE_CITY_THREADS`
//! (space-separated sweep, default `1 2 4`).

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use dde_bench::{stat, write_bench_json, HarnessConfig};
use dde_core::prelude::*;
use dde_core::Strategy;
use dde_obs::JsonValue;
use dde_workload::prelude::*;
use std::time::Instant;

fn stat_json(samples: &[f64]) -> JsonValue {
    let st = stat(samples);
    JsonValue::Object(vec![
        ("mean".into(), JsonValue::Float(st.mean)),
        ("stddev".into(), JsonValue::Float(st.stddev)),
    ])
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads: Vec<usize> = std::env::var("DDE_CITY_THREADS")
        .unwrap_or_else(|_| "1 2 4".into())
        .split_whitespace()
        .map(|t| t.parse().expect("DDE_CITY_THREADS must be integers"))
        .collect();
    assert!(!threads.is_empty(), "need at least one thread count");

    let config = ScenarioConfig::city()
        .with_seed(cfg.seed)
        .with_fast_ratio(0.4);
    let scenario = Scenario::build(config);
    let options = || {
        let mut o = RunOptions::new(Strategy::LvfLabelShare);
        o.seed = cfg.seed ^ 0x5eed;
        o
    };
    eprintln!(
        "city: {} nodes, {} queries, threads {threads:?}, {} reps, seed {}",
        scenario.topology.len(),
        scenario.queries.len(),
        cfg.reps,
        cfg.seed
    );

    let mut baseline: Option<RunReport> = None;
    let mut throughput: Vec<(String, JsonValue)> = Vec::new();
    let mut per_thread_mean: Vec<f64> = Vec::new();
    for &t in &threads {
        let mut samples = Vec::with_capacity(cfg.reps as usize);
        let mut report = None;
        for _ in 0..cfg.reps.max(1) {
            let start = Instant::now();
            let r = run_scenario_sharded(&scenario, options(), t);
            let wall = start.elapsed().as_secs_f64();
            samples.push(r.events as f64 / wall.max(1e-9));
            report = Some(r);
        }
        let report = report.expect("at least one rep");
        eprintln!(
            "  t={t}: {:.0} events/s (best of {} reps), {} events",
            samples.iter().cloned().fold(0.0f64, f64::max),
            samples.len(),
            report.events
        );
        // The run itself must not depend on the thread count.
        if let Some(base) = &baseline {
            assert_eq!(
                base, &report,
                "sharded run diverged between thread counts (t={t})"
            );
        } else {
            baseline = Some(report);
        }
        per_thread_mean.push(stat(&samples).mean);
        throughput.push((format!("events_per_sec_t{t}"), stat_json(&samples)));
    }
    let report = baseline.expect("at least one thread count ran");

    // Parallel speedup of the last sweep entry over the first (t_max vs
    // t1 in the default sweep) — a single machine-relative ratio, gated
    // coarsely like the absolute rates.
    if threads.len() > 1 {
        let speedup = per_thread_mean[threads.len() - 1] / per_thread_mean[0].max(1e-9);
        throughput.push((
            format!("speedup_t{}", threads[threads.len() - 1]),
            JsonValue::Object(vec![
                ("mean".into(), JsonValue::Float(speedup)),
                ("stddev".into(), JsonValue::Float(0.0)),
            ]),
        ));
    }

    let invariant = JsonValue::Object(vec![
        ("events".into(), JsonValue::Int(report.events as i64)),
        (
            "total_queries".into(),
            JsonValue::Int(report.total_queries as i64),
        ),
        ("resolved".into(), JsonValue::Int(report.resolved as i64)),
        ("viable".into(), JsonValue::Int(report.viable as i64)),
        (
            "total_bytes".into(),
            JsonValue::Int(report.total_bytes as i64),
        ),
        ("thread_counts_identical".into(), JsonValue::Bool(true)),
    ]);

    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("city".into())),
        ("reps".into(), JsonValue::Int(cfg.reps as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed as i64)),
        (
            "threads".into(),
            JsonValue::Array(threads.iter().map(|&t| JsonValue::Int(t as i64)).collect()),
        ),
        ("invariant".into(), invariant),
        ("throughput".into(), JsonValue::Object(throughput)),
    ]);
    write_bench_json("BENCH_city.json", &doc);
}

//! Regenerates **BENCH_perf.json**: naming/retrieval hot-path throughput.
//!
//! Unlike the figure binaries (which record *simulation* metrics and are
//! deterministic to the byte), this harness records *wall-clock* throughput
//! of the retrieval hot paths of §V — name parsing, shared-prefix
//! similarity, FIB longest-prefix match, content-store insert/evict and
//! approximate substitution, `BTreeMap<Name, _>` point lookup, and
//! end-to-end queries per second — so future PRs have a perf trajectory to
//! regress against.
//!
//! Usage: `cargo run -p dde-bench --bin perf --release`
//!
//! Knobs: `DDE_REPS` (timing samples per bench, best-of is kept; default 5),
//! `DDE_SEED` (workload seed, default 1), `DDE_PERF_LABEL` (label recorded
//! for this run, e.g. `interned-symbols`), `DDE_PERF_BASELINE` (path to a
//! previous `BENCH_perf.json`; its `after` section is embedded as this
//! run's `before`, and per-bench speedups are computed).

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use dde_bench::write_bench_json;
use dde_bench::{run_point, HarnessConfig};
use dde_core::prelude::{run_scenario_sharded, RunOptions};
use dde_core::strategy::Strategy;
use dde_naming::fib::Fib;
use dde_naming::name::Name;
use dde_naming::store::ContentStore;
use dde_obs::JsonValue;
use dde_workload::scenario::ScenarioConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

use dde_logic::time::{SimDuration, SimTime};

/// A deterministic name universe shaped like the scenario generator's:
/// heavy prefix sharing near the root, diversity at the leaves.
fn name_universe(seed: u64, count: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let kinds = ["camera", "acoustic", "seismic", "chemical"];
    let times = ["dawn", "noon", "dusk", "night"];
    (0..count)
        .map(|_| {
            let region = rng.gen_range(0..8u32);
            let district = rng.gen_range(0..16u32);
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let t = times[rng.gen_range(0..times.len())];
            let id = rng.gen_range(0..64u32);
            format!("/city/r{region}/d{district}/{t}/{kind}{id}")
        })
        .collect()
}

/// Times `work` (which performs `ops` operations per call) `reps` times and
/// keeps the fastest sample — best-of-N suppresses scheduler noise without
/// the statistics machinery this offline harness lacks.
fn best_of<F: FnMut()>(reps: u64, ops: u64, mut work: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let ns_per_op = best * 1e9 / ops as f64;
    (ns_per_op, ops as f64 / best)
}

fn bench_entry(ns_per_op: f64, ops_per_sec: f64, ops: u64) -> JsonValue {
    JsonValue::Object(vec![
        ("ns_per_op".into(), JsonValue::Float(ns_per_op)),
        ("ops_per_sec".into(), JsonValue::Float(ops_per_sec)),
        ("ops".into(), JsonValue::Int(ops as i64)),
    ])
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let label = std::env::var("DDE_PERF_LABEL").unwrap_or_else(|_| "current".into());
    const N: usize = 4096;
    let strings = name_universe(cfg.seed, N);
    let names: Vec<Name> = strings
        .iter()
        .map(|s| s.parse().expect("generated names are valid"))
        .collect();
    eprintln!(
        "perf: {} names, best of {} samples, seed {}",
        N, cfg.reps, cfg.seed
    );

    let mut benches: Vec<(String, JsonValue)> = Vec::new();
    let mut push = |name: &str, (ns, ops_s): (f64, f64), ops: u64| {
        eprintln!("{name:<24} {ns:>10.1} ns/op  {ops_s:>14.0} ops/s");
        benches.push((name.to_string(), bench_entry(ns, ops_s, ops)));
    };

    // 1. Name parsing (I/O boundary: string → interned representation).
    {
        const PASSES: u64 = 20;
        let ops = PASSES * N as u64;
        let r = best_of(cfg.reps, ops, || {
            for _ in 0..PASSES {
                for s in &strings {
                    std::hint::black_box(s.parse::<Name>().expect("valid"));
                }
            }
        });
        push("name_parse", r, ops);
    }

    // 2. Shared-prefix similarity (§V-A similarity measure).
    {
        const PASSES: u64 = 200;
        let ops = PASSES * N as u64;
        let r = best_of(cfg.reps, ops, || {
            let mut acc = 0usize;
            for _ in 0..PASSES {
                for pair in names.windows(2) {
                    acc += pair[0].shared_prefix_len(&pair[1]);
                }
                acc += names[N - 1].shared_prefix_len(&names[0]);
            }
            std::hint::black_box(acc);
        });
        push("shared_prefix", r, ops);
    }

    // 3. FIB longest-prefix match (§VI-B forwarding decision).
    {
        let mut fib: Fib<u32> = Fib::new();
        for (i, name) in names.iter().enumerate() {
            // Advertise at depth 3 (/city/rX/dY) and some at depth 4.
            let depth = 3 + (i % 2);
            fib.advertise(&name.prefix(depth.min(name.len())), i as u32);
        }
        const PASSES: u64 = 100;
        let ops = PASSES * N as u64;
        let r = best_of(cfg.reps, ops, || {
            let mut acc = 0u64;
            for _ in 0..PASSES {
                for name in &names {
                    if let Some(hop) = fib.lookup(name) {
                        acc = acc.wrapping_add(hop as u64);
                    }
                }
            }
            std::hint::black_box(acc);
        });
        push("fib_lookup", r, ops);
    }

    // 4. Content-store insert with eviction pressure (§VI-B/C).
    {
        const PASSES: u64 = 10;
        let ops = PASSES * N as u64;
        let r = best_of(cfg.reps, ops, || {
            for _ in 0..PASSES {
                // Capacity fits ~1/4 of the universe → sustained eviction.
                let mut cs: ContentStore<u32> = ContentStore::new(N as u64 * 25);
                for (i, name) in names.iter().enumerate() {
                    cs.insert(
                        name,
                        i as u32,
                        100,
                        SimTime::from_secs(i as u64),
                        SimDuration::from_secs(30),
                    );
                }
                std::hint::black_box(cs.evictions);
            }
        });
        push("store_insert_evict", r, ops);
    }

    // 5. Approximate substitution against live cache contents (§V-A).
    {
        let mut cs: ContentStore<u32> = ContentStore::new(u64::MAX);
        for (i, name) in names.iter().enumerate().take(512) {
            cs.insert(
                name,
                i as u32,
                100,
                SimTime::ZERO,
                SimDuration::from_secs(1_000_000),
            );
        }
        const PROBES: u64 = 256;
        let ops = PROBES;
        let now = SimTime::from_secs(1);
        let r = best_of(cfg.reps, ops, || {
            let mut acc = 0usize;
            for name in names.iter().rev().take(PROBES as usize) {
                if let Some((found, _)) = cs.closest_fresh(name, now, 2) {
                    acc += found.len();
                }
            }
            std::hint::black_box(acc);
        });
        push("store_closest", r, ops);
    }

    // 6. BTreeMap<Name, _> point lookup (object/cache key maps in dde-core).
    {
        let map: BTreeMap<Name, u64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u64))
            .collect();
        const PASSES: u64 = 100;
        let ops = PASSES * N as u64;
        let r = best_of(cfg.reps, ops, || {
            let mut acc = 0u64;
            for _ in 0..PASSES {
                for name in &names {
                    if let Some(v) = map.get(name) {
                        acc = acc.wrapping_add(*v);
                    }
                }
            }
            std::hint::black_box(acc);
        });
        push("btreemap_get", r, ops);
    }

    // 7. End-to-end: queries per wall-clock second on the small scenario.
    {
        let base = ScenarioConfig::small();
        // One warm-up + timed reps; each rep is a full deterministic run.
        let mut queries = 0u64;
        let mut best = f64::INFINITY;
        for rep in 0..cfg.reps.max(1) {
            let start = Instant::now();
            let report = run_point(&base, 0.5, Strategy::LvfLabelShare, cfg.seed + rep);
            best = best.min(start.elapsed().as_secs_f64());
            queries = report.total_queries as u64;
        }
        let ops_s = queries as f64 / best;
        let ns = best * 1e9 / queries as f64;
        push("e2e_queries", (ns, ops_s), queries);
    }

    // 8. City-scale sharded simulation: events per wall-clock second at 1
    //    and 4 worker threads. Wall-clock figures are host-dependent —
    //    `host_cpus` is recorded at the top level so flat scaling on a
    //    single-core runner reads as what it is.
    {
        let scenario = dde_workload::scenario::Scenario::build(
            ScenarioConfig::city()
                .with_seed(cfg.seed)
                .with_fast_ratio(0.4),
        );
        for t in [1usize, 4] {
            let mut best = f64::INFINITY;
            let mut events = 0u64;
            for _ in 0..cfg.reps.clamp(1, 3) {
                let mut options = RunOptions::new(Strategy::LvfLabelShare);
                options.seed = cfg.seed ^ 0x5eed;
                let start = Instant::now();
                let report = run_scenario_sharded(&scenario, options, t);
                best = best.min(start.elapsed().as_secs_f64());
                events = report.events;
            }
            let ops_s = events as f64 / best;
            let ns = best * 1e9 / events as f64;
            push(&format!("city_events_t{t}"), (ns, ops_s), events);
        }
    }

    // Embed the baseline (if given) and compute per-bench speedups.
    let current = JsonValue::Object(vec![
        ("label".into(), JsonValue::Str(label)),
        ("benches".into(), JsonValue::Object(benches)),
    ]);
    let before: Option<JsonValue> = std::env::var("DDE_PERF_BASELINE")
        .ok()
        .and_then(|path| std::fs::read_to_string(path).ok())
        .and_then(|src| dde_obs::json::parse(&src).ok())
        .and_then(|v| v.get("after").cloned());
    let speedup = before.as_ref().map(|b| {
        let mut out: Vec<(String, JsonValue)> = Vec::new();
        if let (Some(JsonValue::Object(bb)), Some(JsonValue::Object(cb))) =
            (b.get("benches"), current.get("benches"))
        {
            for (k, bv) in bb {
                let old = bv.get("ops_per_sec").and_then(JsonValue::as_float);
                let new = cb
                    .iter()
                    .find(|(ck, _)| ck == k)
                    .and_then(|(_, cv)| cv.get("ops_per_sec"))
                    .and_then(JsonValue::as_float);
                if let (Some(old), Some(new)) = (old, new) {
                    if old > 0.0 {
                        out.push((k.clone(), JsonValue::Float(new / old)));
                    }
                }
            }
        }
        JsonValue::Object(out)
    });

    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get() as i64)
        .unwrap_or(1);
    let mut top = vec![
        ("bench".into(), JsonValue::Str("perf".into())),
        ("names".into(), JsonValue::Int(N as i64)),
        ("reps".into(), JsonValue::Int(cfg.reps as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed as i64)),
        ("host_cpus".into(), JsonValue::Int(host_cpus)),
        ("before".into(), before.unwrap_or(JsonValue::Null)),
        ("after".into(), current),
    ];
    if let Some(s) = speedup {
        top.push(("speedup".into(), s));
    }
    write_bench_json("BENCH_perf.json", &JsonValue::Object(top));
}

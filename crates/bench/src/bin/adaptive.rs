//! Regenerates **BENCH_adaptive.json**: the online-adaptive-planning gate.
//!
//! Two experiments, one JSON document:
//!
//! - **Convergence** (churn band): the same decision queries recur
//!   periodically while nodes churn, and every completed query is scored by
//!   the [`FeedbackSink`] — `|predicted − actual|` attributed bytes,
//!   aggregated into epochs of one query round each. With the adaptive
//!   estimators on, later epochs predict better than earlier ones: the
//!   rep-averaged per-epoch error must shrink **monotonically**, and the
//!   binary asserts it before writing anything. The per-epoch series is
//!   written as `{mean, stddev}` stat objects (fuzzy-gated via
//!   `bench.toml`); the epoch count and monotonicity flag go in the
//!   exactly-compared `invariant` block.
//! - **Admission** (overload band): every node issues a burst of
//!   near-simultaneous queries. The static planner admits everything and
//!   saturates; the adaptive run sheds or defers part of the burst once
//!   its load estimator sees the overload. Shed/defer counts are
//!   deterministic and gated exactly.
//!
//! Usage: `cargo run -p dde-bench --bin adaptive --release`
//! Knobs: `DDE_REPS` (default 5), `DDE_SCALE`, `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use dde_bench::{stat, write_bench_json, HarnessConfig, Stat};
use dde_core::engine::{run_scenario_observed, RunOptions, RunReport};
use dde_core::strategy::Strategy;
use dde_logic::time::SimDuration;
use dde_obs::feedback::FeedbackSink;
use dde_obs::{JsonValue, NullSink, SharedSink};
use dde_sched::adaptive::{AdaptiveConfig, AdmissionPolicy};
use dde_workload::scenario::{Scenario, ScenarioConfig};

fn stat_json(st: Stat) -> JsonValue {
    JsonValue::Object(vec![
        ("mean".into(), JsonValue::Float(st.mean)),
        ("stddev".into(), JsonValue::Float(st.stddev)),
    ])
}

/// Query rounds in the convergence experiment (== expected epochs). Three
/// rounds span the estimators' convergence; past that the error sits on
/// its noise floor and the monotonicity assertion would be a coin flip.
const ROUNDS: usize = 3;

/// One rep of the convergence band: periodic queries under churn, scored by
/// a [`FeedbackSink`]. Returns the per-epoch feedback stats and the report.
fn convergence_rep(
    seed: u64,
    adaptive: Option<AdaptiveConfig>,
) -> (Vec<dde_obs::EpochStats>, RunReport) {
    // The convergence band is pinned to the small grid at every scale
    // (`DDE_SCALE` only picks the rep count): on the paper-scale topology
    // 90 concurrent queries saturate the 1 Mbps links and congestion —
    // not prediction quality — dominates the error series. Estimator
    // dynamics want an uncongested band.
    let mut cfg = ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4);
    // The static planner prices plans with the configured 0.8 prior; the
    // world is kinder than that, so cold predictions start systematically
    // wrong and the truth estimator has real ground to cover.
    cfg.prob_viable = 0.95;
    // Per-label plan pricing cannot express one panorama fetch covering
    // several predicates; leave them out so the error series measures the
    // probability estimates, not multi-coverage accounting.
    cfg.panoramas = false;
    // Enough queries per round that one epoch's mean error is not at the
    // mercy of a handful of outliers, and churn mild enough that the
    // fault-noise floor sits below the learning signal.
    cfg.queries_per_node = 3;
    // Uniform evidence sizes: per-query prediction error should come from
    // what the estimators can learn (truth rates, reliability, systematic
    // model bias), not from the size lottery of which camera serves a
    // segment.
    cfg.min_object_bytes = 400_000;
    cfg.max_object_bytes = 400_000;
    // Churn is drawn by Scenario::build before the periodic expansion, so
    // every crash lands in the first round: the estimators take their
    // reliability lessons (and their worst predictions) up front, and the
    // later epochs measure what those lessons bought.
    cfg = cfg.with_churn(0.3);
    let round = cfg.node_count * cfg.queries_per_node;
    // Rounds are spaced past the slow-validity window, so every round
    // re-fetches its evidence cold: the per-epoch actual bytes stay
    // comparable and the error series isolates prediction quality instead
    // of cache warm-up.
    let scenario = Scenario::build(cfg).with_periodic_queries(SimDuration::from_secs(700), ROUNDS);
    let mut options = RunOptions::new(Strategy::Lvf);
    options.seed = seed ^ 0xada;
    options.adaptive = adaptive;
    // The plan prices full source-to-origin fetches; en-route content
    // stores would serve part of the traffic for free and put a
    // cache-shaped bias between predicted and actual that no probability
    // estimate can learn away. Turn them off for the scoring band.
    options.cache_capacity = 0;
    let feedback = SharedSink::new(FeedbackSink::new(round as u64));
    let report = run_scenario_observed(&scenario, options, Box::new(feedback.clone()));
    let epochs = feedback.with(|s| {
        s.finish();
        s.epochs().to_vec()
    });
    (epochs, report)
}

/// Convergence: rep-averaged per-epoch |predicted − actual| under the
/// learning planner, plus the static baseline's flat error for contrast.
fn convergence(cfg: &HarnessConfig) -> (JsonValue, JsonValue) {
    let learn_cfg = AdaptiveConfig::default();
    let mut adaptive_epochs: Vec<Vec<f64>> = Vec::new();
    let mut adaptive_bytes: Vec<Vec<f64>> = Vec::new();
    let mut static_errors: Vec<f64> = Vec::new();
    let mut static_cost: Vec<f64> = Vec::new();
    let mut adaptive_cost: Vec<f64> = Vec::new();
    let mut resolved_static = 0u64;
    let mut resolved_adaptive = 0u64;
    for r in 0..cfg.reps {
        let seed = cfg.seed + r;
        let (epochs, report) = convergence_rep(seed, Some(learn_cfg));
        adaptive_epochs.push(epochs.iter().map(|e| e.mean_abs_error).collect());
        adaptive_bytes.push(epochs.iter().map(|e| e.mean_actual_bytes).collect());
        if let Some(c) = report.cost_per_decision() {
            adaptive_cost.push(c);
        }
        resolved_adaptive += report.resolved as u64;

        let (epochs, report) = convergence_rep(seed, None);
        let errs: Vec<f64> = epochs.iter().map(|e| e.mean_abs_error).collect();
        static_errors.push(stat(&errs).mean);
        if let Some(c) = report.cost_per_decision() {
            static_cost.push(c);
        }
        resolved_static += report.resolved as u64;
    }

    // Rep-averaged per-epoch error; truncate to the shortest rep so every
    // epoch averages the same reps.
    let epochs = adaptive_epochs
        .iter()
        .map(Vec::len)
        .min()
        .expect("at least one rep")
        .min(ROUNDS);
    assert!(epochs >= 2, "need at least two epochs to show convergence");
    let epoch_stat = |series: &[Vec<f64>], k: usize| {
        let samples: Vec<f64> = series.iter().map(|rep| rep[k]).collect();
        stat(&samples)
    };
    let error_series: Vec<Stat> = (0..epochs)
        .map(|k| epoch_stat(&adaptive_epochs, k))
        .collect();
    let monotone = error_series
        .windows(2)
        .all(|w| w[1].mean <= w[0].mean * (1.0 + 1e-9));
    assert!(
        monotone,
        "per-epoch |predicted - actual| did not shrink monotonically: {:?}",
        error_series.iter().map(|s| s.mean).collect::<Vec<_>>()
    );
    let shrink: Vec<f64> = adaptive_epochs
        .iter()
        .map(|rep| rep[epochs - 1] / rep[0].max(1e-9))
        .collect();

    let epoch_rows = (0..epochs)
        .map(|k| {
            JsonValue::Object(vec![
                (
                    "abs_error".into(),
                    stat_json(epoch_stat(&adaptive_epochs, k)),
                ),
                (
                    "actual_bytes".into(),
                    stat_json(epoch_stat(&adaptive_bytes, k)),
                ),
            ])
        })
        .collect();
    let section = JsonValue::Object(vec![
        ("epochs".into(), JsonValue::Array(epoch_rows)),
        ("error_shrink_ratio".into(), stat_json(stat(&shrink))),
        ("static_abs_error".into(), stat_json(stat(&static_errors))),
        (
            "static_cost_per_decision".into(),
            stat_json(stat(&static_cost)),
        ),
        (
            "adaptive_cost_per_decision".into(),
            stat_json(stat(&adaptive_cost)),
        ),
    ]);
    let invariant = JsonValue::Object(vec![
        ("epochs".into(), JsonValue::Int(epochs as i64)),
        ("error_monotone".into(), JsonValue::Bool(true)),
        (
            "resolved_static".into(),
            JsonValue::Int(resolved_static as i64),
        ),
        (
            "resolved_adaptive".into(),
            JsonValue::Int(resolved_adaptive as i64),
        ),
    ]);
    (section, invariant)
}

/// Admission: the overload band with and without the admission gate.
fn admission(cfg: &HarnessConfig) -> (JsonValue, JsonValue) {
    // Tighter than the default policy so the 45 s deadline band exercises
    // both verdicts: two 12 s deferrals burn 24 s of slack, and a query
    // still facing overload after that is shed instead of limping to a
    // deadline miss.
    let gated = AdaptiveConfig {
        admission: Some(AdmissionPolicy {
            overload_bytes: 2_000_000,
            defer_for: SimDuration::from_secs(12),
            max_defers: 2,
            ..AdmissionPolicy::default()
        }),
        ..AdaptiveConfig::default()
    };
    let mut shed = 0u64;
    let mut deferred = 0u64;
    let mut res_static: Vec<f64> = Vec::new();
    let mut res_gated: Vec<f64> = Vec::new();
    let mut mb_static: Vec<f64> = Vec::new();
    let mut mb_gated: Vec<f64> = Vec::new();
    for r in 0..cfg.reps {
        let seed = cfg.seed + r;
        let scenario = Scenario::build(ScenarioConfig::overload().with_seed(seed));
        let run = |adaptive: Option<AdaptiveConfig>| {
            let mut options = RunOptions::new(Strategy::Lvf);
            options.seed = seed ^ 0xada;
            options.adaptive = adaptive;
            // One shared transmitter per node (the paper's wireless
            // emulation): the burst actually contends for the medium
            // instead of fanning out over independent wired links.
            options.medium = dde_netsim::MediumMode::HalfDuplexTx;
            run_scenario_observed(&scenario, options, Box::new(NullSink))
        };
        let s = run(None);
        let g = run(Some(gated));
        shed += g.admission_shed;
        deferred += g.admission_deferred;
        res_static.push(s.resolution_ratio());
        res_gated.push(g.resolution_ratio());
        mb_static.push(s.total_megabytes());
        mb_gated.push(g.total_megabytes());
    }
    let section = JsonValue::Object(vec![
        ("resolution_static".into(), stat_json(stat(&res_static))),
        ("resolution_gated".into(), stat_json(stat(&res_gated))),
        ("megabytes_static".into(), stat_json(stat(&mb_static))),
        ("megabytes_gated".into(), stat_json(stat(&mb_gated))),
    ]);
    let invariant = JsonValue::Object(vec![
        ("admission_shed".into(), JsonValue::Int(shed as i64)),
        ("admission_deferred".into(), JsonValue::Int(deferred as i64)),
        ("gate_engaged".into(), JsonValue::Bool(shed + deferred > 0)),
    ]);
    (section, invariant)
}

fn main() {
    let mut cfg = HarnessConfig::from_env();
    if std::env::var("DDE_REPS").is_err() {
        cfg.reps = 5;
    }
    eprintln!(
        "adaptive: scale {}, {} reps, seed {}",
        cfg.scale, cfg.reps, cfg.seed
    );
    let (convergence_json, convergence_invariant) = convergence(&cfg);
    let (admission_json, admission_invariant) = admission(&cfg);
    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("adaptive".into())),
        ("scale".into(), JsonValue::Str(cfg.scale.into())),
        ("reps".into(), JsonValue::Int(cfg.reps as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed as i64)),
        (
            "invariant".into(),
            JsonValue::Object(vec![
                ("convergence".into(), convergence_invariant),
                ("admission".into(), admission_invariant),
            ]),
        ),
        ("convergence".into(), convergence_json),
        ("admission".into(), admission_json),
    ]);
    write_bench_json("BENCH_adaptive.json", &doc);
}

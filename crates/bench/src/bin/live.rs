//! Live-cluster wall-clock benchmark: the observability plane's gated
//! numbers (`BENCH_live.json`).
//!
//! Boots loopback TCP clusters at several node counts, runs the same
//! timing-insensitive query band on each, and reports two kinds of
//! numbers:
//!
//! - an **invariant block** (compared exactly by the bench gate): the
//!   DES baseline's decision outcomes and byte totals, plus whether every
//!   live rep matched them — the decision-driven equivalence claim at
//!   bench scale;
//! - a **wall block** (compared within deliberately wide tolerances):
//!   events/sec, send-latency percentiles from the merged per-node
//!   `host.send_wall_us` histograms, connect retries, and health probes
//!   answered per run — wall-clock numbers that depend on the host.
//!
//! Usage: `cargo run -p dde-bench --bin live --release`
//! Knobs: `DDE_LIVE_NODES` (default `"2 4 8"`), `DDE_REPS` (default 3),
//! `DDE_LIVE_SCALE` (virtual-clock scale, default 32).

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::{stat, write_bench_json};
use dde_core::{RunOptions, RunReport, Strategy};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_net::{run_cluster_tcp_observed, ClusterConfig, ClusterOutcome, DesTransport};
use dde_netsim::{FaultSchedule, LinkSpec, NodeId, Topology};
use dde_obs::{Histogram, JsonValue, NullSink};
use dde_workload::{
    Catalog, DynamicsClass, ObjectSpec, QueryInstance, RoadGrid, Scenario, ScenarioConfig,
    WorldModel,
};
use std::time::Instant;

/// A chain of `n` nodes (0 — 1 — … — n−1) with both objects hosted at the
/// far end and three spaced queries. Timing-insensitive by the same
/// construction as the DES/TCP equivalence suite: static ground truth,
/// 600 s validity, 60 s deadlines — so decision outcomes and byte totals
/// are a pure function of protocol decisions at any node count.
fn chain_scenario(n: usize) -> Scenario {
    assert!(n >= 2, "chain needs at least two nodes");
    let mut topology = Topology::new(n);
    for i in 0..n - 1 {
        topology.add_link(NodeId(i), NodeId(i + 1), LinkSpec::mbps1());
    }
    topology.rebuild_routes();

    let slow = SimDuration::from_secs(600);
    let mut world = WorldModel::new(5);
    world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("y"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().expect("valid name"),
        covers: vec![Label::new("x")],
        size: 250_000,
        source: NodeId(n - 1),
        class: DynamicsClass::Slow,
        validity: slow,
    });
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/wide".parse().expect("valid name"),
        covers: vec![Label::new("x"), Label::new("y")],
        size: 450_000,
        source: NodeId(n - 1),
        class: DynamicsClass::Slow,
        validity: slow,
    });

    let query = |id: u64, origin: usize, labels: &[&str], at: u64| QueryInstance {
        id,
        origin: NodeId(origin),
        expr: Dnf::from_terms(vec![Term::all_of(labels.iter().copied())]),
        deadline: SimDuration::from_secs(60),
        issue_at: SimTime::from_secs(at),
    };
    let queries = vec![
        query(0, 0, &["x"], 5),           // full-chain fetch
        query(1, n / 2, &["x", "y"], 20), // panorama from mid-chain
        query(2, n - 1, &["x"], 35),      // co-located, no network needed
    ];

    let grid = RoadGrid::new(2, n);
    let node_sites = grid.intersections().take(n).collect();
    Scenario {
        config: ScenarioConfig::small(),
        grid,
        node_sites,
        topology,
        world,
        catalog,
        queries,
        faults: FaultSchedule::new(),
    }
}

fn stat_json(samples: &[f64]) -> JsonValue {
    let st = stat(samples);
    JsonValue::Object(vec![
        ("mean".into(), JsonValue::Float(st.mean)),
        ("stddev".into(), JsonValue::Float(st.stddev)),
    ])
}

/// Decision-level agreement with the DES baseline: outcome tallies and
/// the total byte count (the equivalence suite's headline claim).
fn matches_des(des: &RunReport, live: &RunReport) -> bool {
    des.resolved == live.resolved
        && des.viable == live.viable
        && des.infeasible == live.infeasible
        && des.missed == live.missed
        && des.total_bytes == live.total_bytes
}

/// Per-rep wall-clock observations folded from one cluster outcome.
struct RepObs {
    events_per_sec: f64,
    send_hist: Histogram,
    connect_retries: u64,
    probes_ok: u64,
    send_errors: u64,
    decode_errors: u64,
    matched: bool,
}

fn observe_rep(des: &RunReport, outcome: &ClusterOutcome, wall_secs: f64) -> RepObs {
    let mut send_hist = Histogram::new();
    let mut connect_retries = 0;
    let mut probes_ok = 0;
    let mut send_errors = 0;
    let mut decode_errors = 0;
    for node in &outcome.nodes {
        if let Some(h) = node.snapshot.histogram("host.send_wall_us") {
            send_hist.merge(h);
        }
        connect_retries += node.snapshot.counter("tcp.connect_retries").unwrap_or(0);
        probes_ok += node.probes_ok;
        send_errors += node.snapshot.counter("host.send_errors").unwrap_or(0);
        decode_errors += node.snapshot.counter("tcp.decode_errors").unwrap_or(0);
    }
    RepObs {
        events_per_sec: outcome.report.events as f64 / wall_secs.max(1e-9),
        send_hist,
        connect_retries,
        probes_ok,
        send_errors,
        decode_errors,
        matched: matches_des(des, &outcome.report),
    }
}

fn point_json(n: usize, des: &RunReport, obs: &[RepObs]) -> JsonValue {
    let all_matched = obs.iter().all(|o| o.matched);
    let send_errors: u64 = obs.iter().map(|o| o.send_errors).sum();
    let decode_errors: u64 = obs.iter().map(|o| o.decode_errors).sum();
    let invariant = JsonValue::Object(vec![
        ("queries".into(), JsonValue::Int(des.total_queries as i64)),
        ("resolved".into(), JsonValue::Int(des.resolved as i64)),
        ("viable".into(), JsonValue::Int(des.viable as i64)),
        ("infeasible".into(), JsonValue::Int(des.infeasible as i64)),
        ("missed".into(), JsonValue::Int(des.missed as i64)),
        ("total_bytes".into(), JsonValue::Int(des.total_bytes as i64)),
        ("live_matches_des".into(), JsonValue::Bool(all_matched)),
        ("send_errors".into(), JsonValue::Int(send_errors as i64)),
        ("decode_errors".into(), JsonValue::Int(decode_errors as i64)),
    ]);

    let pct = |p: f64| {
        let samples: Vec<f64> = obs
            .iter()
            .map(|o| {
                o.send_hist
                    .percentile(p)
                    .map_or(0.0, |d| d.as_micros() as f64)
            })
            .collect();
        stat_json(&samples)
    };
    let series = |f: &dyn Fn(&RepObs) -> f64| {
        let samples: Vec<f64> = obs.iter().map(f).collect();
        stat_json(&samples)
    };
    let wall = JsonValue::Object(vec![
        (
            "events_per_sec".into(),
            series(&|o: &RepObs| o.events_per_sec),
        ),
        (
            "send_latency_us".into(),
            JsonValue::Object(vec![
                ("p50".into(), pct(50.0)),
                ("p95".into(), pct(95.0)),
                ("p99".into(), pct(99.0)),
            ]),
        ),
        (
            "connect_retries".into(),
            series(&|o: &RepObs| o.connect_retries as f64),
        ),
        (
            "probes_per_run".into(),
            series(&|o: &RepObs| o.probes_ok as f64),
        ),
    ]);

    JsonValue::Object(vec![
        ("nodes".into(), JsonValue::Int(n as i64)),
        ("invariant".into(), invariant),
        ("wall".into(), wall),
    ])
}

fn main() {
    let node_counts: Vec<usize> = std::env::var("DDE_LIVE_NODES")
        .unwrap_or_else(|_| "2 4 8".to_string())
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .filter(|&n| n >= 2)
        .collect();
    let reps: u64 = std::env::var("DDE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let time_scale: u64 = std::env::var("DDE_LIVE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    assert!(
        !node_counts.is_empty(),
        "DDE_LIVE_NODES has no usable entries"
    );

    println!(
        "== live cluster bench: nodes {node_counts:?}, {reps} reps, virtual-clock scale {time_scale} ==\n"
    );
    let options = RunOptions::new(Strategy::Lvf);
    let config = ClusterConfig {
        time_scale,
        probe_wall_ms: Some(100),
        flight_recorder_cap: 256,
    };

    let mut points = Vec::new();
    let mut failures = 0usize;
    for &n in &node_counts {
        let scenario = chain_scenario(n);
        let des = DesTransport::new(options.clone()).run_observed(&scenario, Box::new(NullSink));
        assert_eq!(
            des.resolved, des.total_queries,
            "DES baseline failed to decide all queries at n={n}"
        );

        let mut obs = Vec::new();
        for rep in 0..reps {
            let start = Instant::now();
            let outcome =
                match run_cluster_tcp_observed::<NullSink>(&scenario, &options, &config, None) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("live bench: n={n} rep={rep}: cluster run failed: {e}");
                        failures += 1;
                        continue;
                    }
                };
            let wall = start.elapsed().as_secs_f64();
            let o = observe_rep(&des, &outcome, wall);
            if !o.matched {
                eprintln!("live bench: n={n} rep={rep}: live run diverged from DES baseline");
            }
            obs.push(o);
        }
        if obs.is_empty() {
            failures += 1;
            continue;
        }

        let eps = stat(&obs.iter().map(|o| o.events_per_sec).collect::<Vec<_>>());
        let p95 = obs
            .iter()
            .map(|o| {
                o.send_hist
                    .percentile(95.0)
                    .map_or(0.0, |d| d.as_micros() as f64)
            })
            .sum::<f64>()
            / obs.len() as f64;
        let probes = obs.iter().map(|o| o.probes_ok).sum::<u64>();
        let retries = obs.iter().map(|o| o.connect_retries).sum::<u64>();
        println!(
            "  n={n}: {:.0} ± {:.0} events/s | send p95 ~{p95:.0} us | {retries} retries | {probes} probes ok | des match: {}",
            eps.mean,
            eps.stddev,
            obs.iter().all(|o| o.matched),
        );
        points.push(point_json(n, &des, &obs));
    }

    let doc = JsonValue::Object(vec![
        ("figure".into(), JsonValue::Str("live".into())),
        ("scale".into(), JsonValue::Str("small".into())),
        ("reps".into(), JsonValue::Int(reps as i64)),
        ("time_scale".into(), JsonValue::Int(time_scale as i64)),
        (
            "nodes".into(),
            JsonValue::Array(
                node_counts
                    .iter()
                    .map(|&n| JsonValue::Int(n as i64))
                    .collect(),
            ),
        ),
        ("points".into(), JsonValue::Array(points)),
    ]);
    write_bench_json("BENCH_live.json", &doc);
    if failures > 0 {
        eprintln!("live bench FAILED: {failures} cluster run(s) did not complete");
        std::process::exit(1);
    }
}

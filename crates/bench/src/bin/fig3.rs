//! Regenerates **Fig. 3**: total network bandwidth consumption of all five
//! retrieval schemes at 40% fast-changing objects.
//!
//! Usage: `cargo run -p dde-bench --bin fig3 --release`
//! Knobs: `DDE_REPS` (default 10), `DDE_SCALE` (`paper`/`small`), `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::HarnessConfig;
use dde_bench::{bench_json, print_table, rows_from_reports, sweep_reports, write_bench_json};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "fig3: {} reps, 40% fast-changing objects, metric = total MB on all links",
        cfg.reps
    );
    let ratios = [0.4];
    let all = sweep_reports(&cfg, &ratios);
    let rows = rows_from_reports(&ratios, &all, |r| r.total_megabytes());
    print_table(&rows, "total bandwidth, MB");
    write_bench_json(
        "BENCH_fig3.json",
        &bench_json("fig3", &cfg, "fast_ratio", &ratios, &all),
    );
}

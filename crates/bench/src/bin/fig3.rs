//! Regenerates **Fig. 3**: total network bandwidth consumption of all five
//! retrieval schemes at 40% fast-changing objects.
//!
//! Usage: `cargo run -p dde-bench --bin fig3 --release`
//! Knobs: `DDE_REPS` (default 10), `DDE_SCALE` (`paper`/`small`), `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::{print_table, sweep, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_env();
    eprintln!(
        "fig3: {} reps, 40% fast-changing objects, metric = total MB on all links",
        cfg.reps
    );
    let rows = sweep(&cfg, &[0.4], |r| r.total_megabytes());
    print_table(&rows, "total bandwidth, MB");
}

//! Resilience ablation: graceful degradation under node churn.
//!
//! Sweeps the node-churn rate (fraction of nodes that crash once during
//! the mission and recover after a fixed downtime) across every retrieval
//! strategy, reporting the paper's two headline metrics — query resolution
//! ratio (Fig. 2) and total bandwidth (Fig. 3) — plus the fault-specific
//! accounting (messages dropped/purged by faults). The churn schedule is
//! seeded and replayable: the same seed produces the same crashes.
//!
//! Usage: `cargo run -p dde-bench --bin resilience --release`
//! Knobs: `DDE_REPS` (default 5), `DDE_SCALE` (`paper`/`small`), `DDE_SEED`.

// Bench binary: env knobs and wall-clock timing are out-of-simulation.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_bench::{bench_json, stat, write_bench_json, HarnessConfig, Stat};
use dde_core::engine::{run_scenario, RunOptions, RunReport};
use dde_core::strategy::Strategy;
use dde_logic::time::SimDuration;
use dde_workload::scenario::Scenario;

const CHURN_RATES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.5];

fn run_churn_point(cfg: &HarnessConfig, churn: f64, strategy: Strategy, seed: u64) -> RunReport {
    let mut scen_cfg = cfg.base.clone().with_seed(seed).with_fast_ratio(0.4);
    scen_cfg.churn_rate = churn;
    scen_cfg.churn_downtime = SimDuration::from_secs(45);
    let scenario = Scenario::build(scen_cfg);
    let mut options = RunOptions::new(strategy);
    options.seed = seed ^ 0x5eed;
    run_scenario(&scenario, options)
}

/// Sweeps churn × strategies × reps on a worker pool (the same idiom as
/// [`dde_bench::sweep`], keyed on churn rate instead of fast ratio).
fn sweep_churn(cfg: &HarnessConfig) -> Vec<Vec<Vec<RunReport>>> {
    let grid: Vec<(usize, usize, u64)> = (0..CHURN_RATES.len())
        .flat_map(|ri| {
            (0..Strategy::ALL.len()).flat_map(move |si| (0..cfg.reps).map(move |r| (ri, si, r)))
        })
        .collect();
    let results: Vec<std::sync::Mutex<Option<RunReport>>> =
        grid.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(grid.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if k >= grid.len() {
                    break;
                }
                let (ri, si, r) = grid[k];
                let report = run_churn_point(cfg, CHURN_RATES[ri], Strategy::ALL[si], cfg.seed + r);
                *results[k].lock().expect("cell poisoned") = Some(report);
            });
        }
    });
    // lint: allow(merge-order) — slots are grid-index-keyed; positional drain is the deterministic order
    let mut it = results.into_iter();
    CHURN_RATES
        .iter()
        .map(|_| {
            Strategy::ALL
                .iter()
                .map(|_| {
                    (0..cfg.reps)
                        .map(|_| {
                            it.next()
                                .expect("grid-sized")
                                .into_inner()
                                .expect("cell poisoned")
                                .expect("worker filled cell")
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn metric_stat(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> Stat {
    let samples: Vec<f64> = reports.iter().map(metric).collect();
    stat(&samples)
}

fn print_metric_table(
    all: &[Vec<Vec<RunReport>>],
    header: &str,
    metric: impl Fn(&RunReport) -> f64 + Copy,
) {
    print!("{:>10}", "churn");
    for s in Strategy::ALL {
        print!("  {:>16}", s.code());
    }
    println!("    ({header}, mean ± stddev)");
    for (ri, row) in all.iter().enumerate() {
        print!("{:>10.2}", CHURN_RATES[ri]);
        for reports in row {
            let st = metric_stat(reports, metric);
            print!("  {:>9.3} ±{:>5.3}", st.mean, st.stddev);
        }
        println!();
    }
    println!();
}

fn main() {
    let cfg = HarnessConfig::from_env();
    println!(
        "== resilience: node churn sweep ({} reps, seed {}, downtime 45 s) ==\n",
        cfg.reps, cfg.seed
    );
    let all = sweep_churn(&cfg);

    print_metric_table(&all, "resolution ratio", |r| r.resolution_ratio());
    print_metric_table(&all, "bandwidth MB", |r| r.total_megabytes());

    // Degradation accounting: every query must end resolved or missed, and
    // the fault counters show where traffic died.
    println!("degradation accounting (summed over reps):");
    for (ri, row) in all.iter().enumerate() {
        print!("  churn {:>4.2}:", CHURN_RATES[ri]);
        for (si, reports) in row.iter().enumerate() {
            let dropped: u64 = reports.iter().map(|r| r.messages_dropped_by_fault).sum();
            let purged: u64 = reports.iter().map(|r| r.messages_purged_by_fault).sum();
            for r in reports {
                assert_eq!(
                    r.resolved + r.missed,
                    r.total_queries,
                    "query accounting broke under churn"
                );
            }
            print!(
                "  {} drop {dropped:>4} purge {purged:>3}",
                Strategy::ALL[si].code()
            );
        }
        println!();
    }
    println!(
        "\nEvery query terminates (resolved + missed = total) at every churn\n\
         rate; decision-driven strategies degrade gracefully because stalled\n\
         fetches time out and re-select reachable sources."
    );
    write_bench_json(
        "BENCH_resilience.json",
        &bench_json("resilience", &cfg, "churn", &CHURN_RATES, &all),
    );
}

//! Criterion benches for the §V naming substrate: trie lookups at city
//! scale, approximate substitution, and sub-additive utility triage.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_naming::name::Name;
use dde_naming::tree::NameTree;
use dde_naming::utility::{greedy_select, UtilityItem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A city-shaped namespace: /city/<district>/<block>/<hour>/<camera>.
fn city_names(n: usize, seed: u64) -> Vec<Name> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Name::from_components([
                "city".to_string(),
                format!("district{}", rng.gen_range(0..12)),
                format!("block{}", rng.gen_range(0..40)),
                format!("h{}", rng.gen_range(0..24)),
                format!("cam{}", rng.gen_range(0..6)),
            ])
            .expect("generated names are valid")
        })
        .collect()
}

fn tree_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("naming/name_tree");
    for n in [1_000usize, 10_000] {
        let names = city_names(n, 1);
        let tree: NameTree<usize> = names
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, name)| (name, i))
            .collect();
        let probes = city_names(256, 2);
        group.bench_with_input(
            BenchmarkId::new("longest_prefix", n),
            &probes,
            |b, probes| {
                b.iter(|| {
                    for p in probes {
                        black_box(tree.longest_prefix(black_box(p)));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("closest", n), &probes, |b, probes| {
            b.iter(|| {
                for p in probes {
                    black_box(tree.closest(black_box(p), 2));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_get", n), &probes, |b, probes| {
            b.iter(|| {
                for p in probes {
                    black_box(tree.get(black_box(p)));
                }
            })
        });
    }
    group.finish();
}

fn utility_triage(c: &mut Criterion) {
    let mut group = c.benchmark_group("naming/utility_greedy_select");
    for n in [16usize, 64, 256] {
        let mut rng = SmallRng::seed_from_u64(3);
        let names = city_names(n, 4);
        let items: Vec<UtilityItem> = names
            .into_iter()
            .map(|name| UtilityItem::new(name, rng.gen_range(0.1..10.0), rng.gen_range(50..1000)))
            .collect();
        let budget: u64 = items.iter().map(|i| i.cost).sum::<u64>() / 3;
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| black_box(greedy_select(black_box(items), budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, tree_lookups, utility_triage);
criterion_main!(benches);

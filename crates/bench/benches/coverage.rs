//! Criterion benches for the §III-B source-selection machinery: greedy
//! weighted set cover vs. the exact branch-and-bound solver, and the
//! aggregation-price computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_coverage::aggregation::aggregation_price;
use dde_coverage::setcover::{exact_cover, greedy_cover, Source};
use dde_logic::label::Label;
use dde_logic::meta::Cost;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn instance(labels: usize, sources: usize, seed: u64) -> (BTreeSet<Label>, Vec<Source<usize>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let needed: BTreeSet<Label> = (0..labels).map(|i| Label::new(format!("l{i}"))).collect();
    let srcs: Vec<Source<usize>> = (0..sources)
        .map(|i| {
            let k = rng.gen_range(1..=4.min(labels));
            let covers: BTreeSet<String> = (0..k)
                .map(|_| format!("l{}", rng.gen_range(0..labels)))
                .collect();
            Source::new(
                i,
                covers,
                Cost::from_bytes(rng.gen_range(100_000..1_000_000)),
            )
        })
        .collect();
    (needed, srcs)
}

fn greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage/greedy_cover");
    for (labels, sources) in [(10usize, 20usize), (40, 120), (112, 250)] {
        // 112 labels / 250 sources is exactly the paper-scenario scale.
        let (needed, srcs) = instance(labels, sources, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{labels}x{sources}")),
            &(needed, srcs),
            |b, (needed, srcs)| b.iter(|| black_box(greedy_cover(black_box(needed), srcs))),
        );
    }
    group.finish();
}

fn greedy_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage/greedy_vs_exact");
    let (needed, srcs) = instance(6, 14, 2);
    group.bench_function("greedy_6x14", |b| {
        b.iter(|| black_box(greedy_cover(black_box(&needed), &srcs)))
    });
    group.bench_function("exact_6x14", |b| {
        b.iter(|| black_box(exact_cover(black_box(&needed), &srcs)))
    });
    group.finish();
}

fn aggregation(c: &mut Criterion) {
    let (needed, srcs) = instance(20, 60, 3);
    c.bench_function("coverage/aggregation_price_20x60", |b| {
        b.iter(|| black_box(aggregation_price(black_box(&needed), &srcs)))
    });
}

criterion_group!(benches, greedy_scaling, greedy_vs_exact, aggregation);
criterion_main!(benches);

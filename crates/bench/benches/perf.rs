//! Criterion micro-benches for the naming/retrieval hot paths measured by
//! the `perf` binary (BENCH_perf.json): shared-prefix similarity, FIB
//! longest-prefix match, content-store insert/evict, and end-to-end
//! queries/sec. Run with `cargo bench -p dde-bench --bench perf`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_bench::run_point;
use dde_core::strategy::Strategy;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::fib::Fib;
use dde_naming::name::Name;
use dde_naming::store::ContentStore;
use dde_workload::scenario::ScenarioConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn universe(seed: u64, count: usize) -> Vec<Name> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let kinds = ["camera", "acoustic", "seismic", "chemical"];
    let times = ["dawn", "noon", "dusk", "night"];
    (0..count)
        .map(|_| {
            let region = rng.gen_range(0..8u32);
            let district = rng.gen_range(0..16u32);
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let t = times[rng.gen_range(0..times.len())];
            let id = rng.gen_range(0..64u32);
            format!("/city/r{region}/d{district}/{t}/{kind}{id}")
                .parse()
                .expect("generated names are valid")
        })
        .collect()
}

fn bench_prefix_match(c: &mut Criterion) {
    let names = universe(1, 1024);
    c.bench_function("perf/prefix_match", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for pair in names.windows(2) {
                acc += pair[0].shared_prefix_len(&pair[1]);
            }
            black_box(acc)
        })
    });
}

fn bench_fib_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/fib_lookup");
    for &size in &[1024usize, 8192] {
        let names = universe(1, size);
        let mut fib: Fib<u32> = Fib::new();
        for (i, name) in names.iter().enumerate() {
            let depth = 3 + (i % 2);
            fib.advertise(&name.prefix(depth.min(name.len())), i as u32);
        }
        group.bench_with_input(BenchmarkId::from_parameter(size), &names, |b, names| {
            b.iter(|| {
                let mut acc = 0u64;
                for name in names {
                    if let Some(hop) = fib.lookup(name) {
                        acc = acc.wrapping_add(hop as u64);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_store_insert_evict(c: &mut Criterion) {
    let names = universe(1, 1024);
    c.bench_function("perf/store_insert_evict", |b| {
        b.iter(|| {
            let mut cs: ContentStore<u32> = ContentStore::new(names.len() as u64 * 25);
            for (i, name) in names.iter().enumerate() {
                cs.insert(
                    name,
                    i as u32,
                    100,
                    SimTime::from_secs(i as u64),
                    SimDuration::from_secs(30),
                );
            }
            black_box(cs.evictions)
        })
    });
}

fn bench_e2e_queries(c: &mut Criterion) {
    let base = ScenarioConfig::small();
    c.bench_function("perf/e2e_queries_small", |b| {
        b.iter(|| black_box(run_point(&base, 0.5, Strategy::LvfLabelShare, 7)).total_queries)
    });
}

criterion_group!(
    perf,
    bench_prefix_match,
    bench_fib_lookup,
    bench_store_insert_evict,
    bench_e2e_queries,
);
criterion_main!(perf);

//! Criterion benches for the §III-A short-circuit machinery: expected-cost
//! evaluation, optimal AND/OR ordering, and DNF planning, including the
//! paper's worked example (h: 4 MB @ 0.6, k: 5 MB @ 0.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::meta::{ConditionMeta, Cost, MetaTable, Probability};
use dde_logic::time::SimDuration;
use dde_sched::item::RetrievalItem;
use dde_sched::optimal::brute_force_min_expected_cost;
use dde_sched::shortcircuit::{expected_and_cost, optimal_and_order, plan_dnf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn items(n: usize, seed: u64) -> Vec<RetrievalItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            RetrievalItem::new(
                format!("o{i}"),
                Cost::from_bytes(rng.gen_range(100_000..1_000_000)),
                SimDuration::from_secs(rng.gen_range(10..600)),
            )
            .with_prob(Probability::clamped(rng.gen_range(0.05..0.95)))
        })
        .collect()
}

fn paper_example(c: &mut Criterion) {
    let h = RetrievalItem::new("h", Cost::from_bytes(4_000_000), SimDuration::MAX)
        .with_prob(Probability::clamped(0.6));
    let k = RetrievalItem::new("k", Cost::from_bytes(5_000_000), SimDuration::MAX)
        .with_prob(Probability::clamped(0.2));
    let pair = vec![h, k];
    c.bench_function("shortcircuit/paper_worked_example", |b| {
        b.iter(|| {
            let order = optimal_and_order(black_box(&pair));
            black_box(expected_and_cost(&order))
        })
    });
}

fn ordering_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortcircuit/optimal_and_order");
    for n in [4usize, 16, 64, 256] {
        let input = items(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| black_box(optimal_and_order(black_box(input))))
        });
    }
    group.finish();
}

fn greedy_vs_bruteforce(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortcircuit/vs_bruteforce");
    let input = items(7, 9);
    group.bench_function("greedy_n7", |b| {
        b.iter(|| expected_and_cost(&optimal_and_order(black_box(&input))))
    });
    group.bench_function("bruteforce_n7", |b| {
        b.iter(|| brute_force_min_expected_cost(black_box(&input)))
    });
    group.finish();
}

fn dnf_planning(c: &mut Criterion) {
    // A paper-shaped route query: 5 alternative routes × 12 segments.
    let mut rng = SmallRng::seed_from_u64(3);
    let terms: Vec<Term> = (0..5)
        .map(|t| Term::all_of((0..12).map(|s| format!("seg_{t}_{s}"))))
        .collect();
    let dnf = Dnf::from_terms(terms);
    let meta: MetaTable = dnf
        .labels()
        .into_iter()
        .map(|l| {
            (
                Label::new(l.as_str()),
                ConditionMeta::new(
                    Cost::from_bytes(rng.gen_range(100_000..1_000_000)),
                    SimDuration::from_secs(rng.gen_range(30..600)),
                )
                .with_prob(Probability::clamped(0.8)),
            )
        })
        .collect();
    c.bench_function("shortcircuit/plan_route_query_5x12", |b| {
        b.iter(|| black_box(plan_dnf(black_box(&dnf), black_box(&meta))))
    });
}

criterion_group!(
    benches,
    paper_example,
    ordering_scaling,
    greedy_vs_bruteforce,
    dnf_planning
);
criterion_main!(benches);

//! Criterion benches for the §IV decision-driven scheduling algorithms:
//! LVF, feasibility analysis, the hierarchical multi-query scheduler, and
//! the validity-constrained short-circuit greedy of ref \[3].

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_logic::meta::{Cost, Probability};
use dde_logic::time::{SimDuration, SimTime};
use dde_sched::feasibility::analyze;
use dde_sched::hierarchical::{hierarchical_schedule, QuerySpec};
use dde_sched::hybrid::greedy_validity_shortcircuit;
use dde_sched::item::{Channel, RetrievalItem};
use dde_sched::lvf::lvf_schedule;
use dde_sched::optimal::brute_force_schedulable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn items(n: usize, seed: u64) -> Vec<RetrievalItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            RetrievalItem::new(
                format!("o{i}"),
                Cost::from_bytes(rng.gen_range(100_000..1_000_000)),
                SimDuration::from_secs(rng.gen_range(30..600)),
            )
            .with_prob(Probability::clamped(rng.gen_range(0.1..0.9)))
        })
        .collect()
}

fn lvf_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/lvf_schedule");
    for n in [8usize, 32, 128] {
        let input = items(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                black_box(lvf_schedule(
                    black_box(input),
                    Channel::mbps1(),
                    SimTime::ZERO,
                    SimDuration::from_secs(3600),
                ))
            })
        });
    }
    group.finish();
}

fn feasibility_analysis(c: &mut Criterion) {
    let input = items(64, 2);
    c.bench_function("scheduling/analyze_64", |b| {
        b.iter(|| {
            black_box(analyze(
                black_box(&input),
                Channel::mbps1(),
                SimTime::ZERO,
                SimDuration::from_secs(600),
            ))
        })
    });
}

fn lvf_vs_bruteforce(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/schedulability");
    let input = items(7, 3);
    group.bench_function("lvf_n7", |b| {
        b.iter(|| {
            lvf_schedule(
                black_box(&input),
                Channel::mbps1(),
                SimTime::ZERO,
                SimDuration::from_secs(60),
            )
            .1
            .is_feasible()
        })
    });
    group.bench_function("bruteforce_n7", |b| {
        b.iter(|| {
            brute_force_schedulable(
                black_box(&input),
                Channel::mbps1(),
                SimTime::ZERO,
                SimDuration::from_secs(60),
            )
        })
    });
    group.finish();
}

fn hierarchical_multi_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/hierarchical");
    for queries in [3usize, 10, 30] {
        let mut rng = SmallRng::seed_from_u64(4);
        let specs: Vec<QuerySpec> = (0..queries)
            .map(|q| {
                QuerySpec::new(
                    items(6, q as u64 + 100),
                    SimDuration::from_secs(rng.gen_range(60..600)),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(queries), &specs, |b, specs| {
            b.iter(|| {
                black_box(hierarchical_schedule(
                    black_box(specs),
                    Channel::mbps1(),
                    SimTime::ZERO,
                ))
            })
        });
    }
    group.finish();
}

fn hybrid_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/hybrid_greedy");
    for n in [6usize, 12, 24] {
        let input = items(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                black_box(greedy_validity_shortcircuit(
                    black_box(input),
                    Channel::mbps1(),
                    SimTime::ZERO,
                    SimDuration::from_secs(300),
                ))
            })
        });
    }
    group.finish();
}

fn shared_vs_no_reuse(c: &mut Criterion) {
    use dde_sched::shared::{no_reuse_cost, shared_schedule, SharedQuery};
    let mut rng = SmallRng::seed_from_u64(6);
    // 10 queries drawing 4 items each from a 12-object pool (heavy overlap).
    let pool = items(12, 60);
    let queries: Vec<SharedQuery> = (0..10)
        .map(|_| {
            let mut picked: Vec<_> = (0..4)
                .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                .collect();
            picked.dedup_by(|a, b| a.label == b.label);
            SharedQuery::new(picked, SimDuration::from_secs(rng.gen_range(60..600)))
        })
        .collect();
    let mut group = c.benchmark_group("scheduling/shared_objects");
    group.bench_function("reuse_aware_10q", |b| {
        b.iter(|| {
            black_box(shared_schedule(
                black_box(&queries),
                Channel::mbps1(),
                SimTime::ZERO,
            ))
        })
    });
    group.bench_function("no_reuse_10q", |b| {
        b.iter(|| {
            black_box(no_reuse_cost(
                black_box(&queries),
                Channel::mbps1(),
                SimTime::ZERO,
            ))
        })
    });
    group.finish();
}

fn tree_planning(c: &mut Criterion) {
    use dde_logic::meta::{ConditionMeta, MetaTable};
    use dde_logic::parse::parse_expr;
    use dde_sched::tree::plan_expr;
    let mut rng = SmallRng::seed_from_u64(7);
    let expr =
        parse_expr("((v0 & v1 & v2) | (v3 & v4)) & ((v5 | v6 | v7) & !(v8 & v9))").expect("valid");
    let meta: MetaTable = (0..10)
        .map(|i| {
            (
                dde_logic::label::Label::new(format!("v{i}")),
                ConditionMeta::new(
                    Cost::from_bytes(rng.gen_range(100_000..1_000_000)),
                    SimDuration::MAX,
                )
                .with_prob(Probability::clamped(rng.gen_range(0.1..0.9))),
            )
        })
        .collect();
    c.bench_function("scheduling/plan_expr_tree_10leaves", |b| {
        b.iter(|| black_box(plan_expr(black_box(&expr), black_box(&meta))))
    });
}

criterion_group!(
    benches,
    lvf_scaling,
    feasibility_analysis,
    lvf_vs_bruteforce,
    hierarchical_multi_query,
    hybrid_greedy,
    shared_vs_no_reuse,
    tree_planning
);
criterion_main!(benches);

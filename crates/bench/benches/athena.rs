//! Criterion benches over the full Athena engine: one complete simulated
//! run of the small scenario per strategy, plus scenario construction and
//! the simulator's raw event throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dde_core::engine::{run_scenario, RunOptions};
use dde_core::strategy::Strategy;
use dde_workload::scenario::{Scenario, ScenarioConfig};

fn scenario_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("athena/scenario_build");
    group.bench_function("small_4x4", |b| {
        b.iter(|| black_box(Scenario::build(ScenarioConfig::small().with_seed(1))))
    });
    group.sample_size(20);
    group.bench_function("paper_8x8", |b| {
        b.iter(|| black_box(Scenario::build(ScenarioConfig::default().with_seed(1))))
    });
    group.finish();
}

fn engine_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("athena/small_scenario_run");
    group.sample_size(10);
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(5).with_fast_ratio(0.4));
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.code()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run_scenario(scenario, RunOptions::new(strategy)))),
        );
    }
    group.finish();
}

fn paper_scale_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("athena/paper_scenario_run");
    group.sample_size(10);
    let scenario = Scenario::build(ScenarioConfig::default().with_seed(5).with_fast_ratio(0.4));
    group.bench_function("lvfl_8x8_90queries", |b| {
        b.iter(|| {
            black_box(run_scenario(
                &scenario,
                RunOptions::new(Strategy::LvfLabelShare),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, scenario_build, engine_runs, paper_scale_run);
criterion_main!(benches);

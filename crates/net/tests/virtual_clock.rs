//! [`VirtualClock`] contract tests: the live backend's single sanctioned
//! wall-clock anchor must be monotone, saturating, and scale-consistent,
//! because every protocol deadline and telemetry wall-latency figure is
//! derived from it.

use dde_logic::time::{SimDuration, SimTime};
use dde_net::VirtualClock;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn scale_is_clamped_to_at_least_one() {
    assert_eq!(VirtualClock::start(0).scale(), 1);
    assert_eq!(VirtualClock::start(1).scale(), 1);
    assert_eq!(VirtualClock::start(64).scale(), 64);
}

#[test]
fn wall_until_saturates_to_zero_for_past_times() {
    let clock = VirtualClock::start(1000);
    // Time zero is already in the past the instant the clock starts.
    assert_eq!(clock.wall_until(SimTime::ZERO), Duration::ZERO);
    // So is "now" itself by the time the second call reads the clock.
    let now = clock.now();
    assert_eq!(clock.wall_until(now), Duration::ZERO);
}

#[test]
fn wall_until_round_trips_through_the_scale() {
    // 10 virtual seconds at scale 1000 is 10 wall milliseconds.
    let clock = VirtualClock::start(1000);
    let target = clock.now() + SimDuration::from_secs(10);
    let wall = clock.wall_until(target);
    assert!(wall <= Duration::from_millis(10), "{wall:?} too long");
    assert!(
        wall >= Duration::from_millis(5),
        "{wall:?} lost most of the interval to the scale round-trip"
    );
}

#[test]
fn huge_scales_saturate_instead_of_panicking() {
    let clock = VirtualClock::start(u64::MAX);
    std::thread::sleep(Duration::from_millis(2));
    // Virtual now has overflowed the u64 microsecond range: the clock
    // must pin at the saturation point, not wrap or panic.
    assert_eq!(clock.now(), SimTime::from_micros(u64::MAX));
    assert_eq!(
        clock.wall_until(SimTime::from_micros(u64::MAX)),
        Duration::ZERO
    );
}

#[test]
fn now_is_monotone_under_concurrent_readers() {
    let clock = Arc::new(VirtualClock::start(64));
    let start = clock.now();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let mut prev = clock.now();
                for _ in 0..20_000 {
                    let now = clock.now();
                    assert!(now >= prev, "clock went backwards: {prev:?} -> {now:?}");
                    prev = now;
                }
                prev
            })
        })
        .collect();
    for handle in readers {
        let last = handle.join().expect("reader thread");
        assert!(last >= start);
    }
}

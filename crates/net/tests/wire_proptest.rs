//! Property suite for the wire codec (`dde_net::frame`).
//!
//! Randomized messages over every [`AthenaMsg`] variant must round-trip
//! exactly — including the attribution keys the cost ledger depends on —
//! and every truncation or inflation of a valid frame must be rejected
//! with a typed error, never a panic. The vendored proptest engine is
//! deterministic (per-test-name seed), so failures replay identically.

use dde_core::{AthenaMsg, EvidenceObject, QueryId, RequestKind};
use dde_logic::dnf::{Dnf, Literal, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::name::Name;
use dde_net::{decode, encode, FrameError, HEADER_LEN, MAX_PAYLOAD};
use dde_netsim::{NodeId, WireMessage};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::collections::BTreeMap;

// ---- Strategies --------------------------------------------------------

fn label() -> BoxedStrategy<Label> {
    "[a-z0-9/_.-]{1,12}".prop_map(Label::new).boxed()
}

fn name() -> BoxedStrategy<Name> {
    prop::collection::vec("[a-z0-9_.-]{1,8}", 1..5)
        .prop_map(|cs| Name::from_components(cs).expect("generated components are valid"))
        .boxed()
}

fn node() -> BoxedStrategy<NodeId> {
    (0usize..4096).prop_map(NodeId).boxed()
}

fn qid() -> BoxedStrategy<QueryId> {
    any::<u64>().prop_map(QueryId).boxed()
}

fn sim_time() -> BoxedStrategy<SimTime> {
    any::<u64>().prop_map(SimTime::from_micros).boxed()
}

fn sim_duration() -> BoxedStrategy<SimDuration> {
    any::<u64>().prop_map(SimDuration::from_micros).boxed()
}

fn opt_node() -> BoxedStrategy<Option<NodeId>> {
    prop_oneof![Just(None), node().prop_map(Some)].boxed()
}

fn opt_qid() -> BoxedStrategy<Option<QueryId>> {
    prop_oneof![Just(None), qid().prop_map(Some)].boxed()
}

/// A satisfiable term: literals are deduplicated by label before
/// construction, so `try_from_literals` cannot observe a contradiction.
fn term() -> BoxedStrategy<Term> {
    prop::collection::vec((label(), any::<bool>()), 1..4)
        .prop_map(|lits| {
            let mut by_label = BTreeMap::new();
            for (l, negated) in lits {
                by_label.entry(l).or_insert(negated);
            }
            let literals = by_label
                .into_iter()
                .map(|(l, negated)| {
                    if negated {
                        Literal::negative(l)
                    } else {
                        Literal::positive(l)
                    }
                })
                .collect();
            Term::try_from_literals(literals).expect("deduplicated literals cannot conflict")
        })
        .boxed()
}

fn dnf() -> BoxedStrategy<Dnf> {
    prop::collection::vec(term(), 1..4)
        .prop_map(Dnf::from_terms)
        .boxed()
}

fn evidence_object() -> BoxedStrategy<EvidenceObject> {
    (
        name(),
        prop::collection::vec(label(), 1..4),
        any::<u64>(),
        node(),
        sim_time(),
        sim_duration(),
    )
        .prop_map(
            |(name, covers, size, source, sampled_at, validity)| EvidenceObject {
                name,
                covers,
                size,
                source,
                sampled_at,
                validity,
            },
        )
        .boxed()
}

fn announce() -> BoxedStrategy<AthenaMsg> {
    (qid(), node(), dnf(), sim_time())
        .prop_map(
            |(qid, origin, expr, deadline_at)| AthenaMsg::QueryAnnounce {
                qid,
                origin,
                expr,
                deadline_at,
            },
        )
        .boxed()
}

fn request() -> BoxedStrategy<AthenaMsg> {
    (
        name(),
        prop::collection::vec(label(), 0..4),
        // Includes u64::MAX (the synthetic re-forward sentinel) so the
        // attribution-preservation property covers the None branch.
        prop_oneof![qid(), Just(QueryId(u64::MAX))],
        node(),
        prop_oneof![Just(RequestKind::Fetch), Just(RequestKind::Prefetch)],
    )
        .prop_map(|(name, wanted, qid, origin, kind)| AthenaMsg::Request {
            name,
            wanted,
            qid,
            origin,
            kind,
        })
        .boxed()
}

fn data() -> BoxedStrategy<AthenaMsg> {
    (evidence_object(), opt_node(), opt_qid())
        .prop_map(|(object, push_to, for_query)| AthenaMsg::Data {
            object,
            push_to,
            for_query,
        })
        .boxed()
}

fn label_share() -> BoxedStrategy<AthenaMsg> {
    (
        (label(), any::<bool>(), sim_time(), sim_duration()),
        (node(), name(), opt_qid()),
    )
        .prop_map(
            |((label, value, sampled_at, validity), (annotator, based_on, for_query))| {
                AthenaMsg::LabelShare {
                    label,
                    value,
                    sampled_at,
                    validity,
                    annotator,
                    based_on,
                    for_query,
                }
            },
        )
        .boxed()
}

fn athena_msg() -> BoxedStrategy<AthenaMsg> {
    prop_oneof![announce(), request(), data(), label_share()].boxed()
}

// ---- Properties --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every message survives encode → decode exactly, and the decoded
    /// copy attributes to the same query (the ledger key must not drift
    /// across the wire).
    #[test]
    fn round_trips_every_variant(msg in athena_msg()) {
        let frame = match encode(&msg) {
            Ok(f) => f,
            Err(e) => return Err(TestCaseError::fail(format!("encode failed: {e}"))),
        };
        prop_assert!(frame.len() >= HEADER_LEN);
        prop_assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD);
        let decoded = match decode(&frame) {
            Ok(m) => m,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.attribution(), msg.attribution());
        prop_assert_eq!(decoded.wire_size(), msg.wire_size());
        prop_assert_eq!(decoded.kind(), msg.kind());
    }

    /// Cutting a valid frame anywhere — inside the header or inside the
    /// payload — must yield an error, never a panic or a bogus message.
    #[test]
    fn rejects_every_truncation(msg in athena_msg()) {
        let frame = encode(&msg).expect("encode");
        for cut in 0..frame.len() {
            prop_assert!(
                decode(&frame[..cut]).is_err(),
                "decode accepted {} of {} bytes", cut, frame.len()
            );
        }
    }

    /// Appending bytes past the declared payload must be rejected: the
    /// framing is exact, not prefix-tolerant.
    #[test]
    fn rejects_trailing_bytes(msg in athena_msg(), extra in 1usize..16) {
        let mut frame = encode(&msg).expect("encode");
        frame.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(matches!(
            decode(&frame),
            Err(FrameError::Trailing { .. }) | Err(FrameError::Truncated { .. })
        ));
    }

    /// Forging the header's length field past the cap is refused before
    /// any payload work happens.
    #[test]
    fn rejects_oversized_declared_length(msg in athena_msg(), over in 1u32..1024) {
        let mut frame = encode(&msg).expect("encode");
        let huge = (MAX_PAYLOAD as u32 + over).to_be_bytes();
        frame[4..8].copy_from_slice(&huge);
        prop_assert!(matches!(decode(&frame), Err(FrameError::Oversized { .. })));
    }

    /// Corrupting the magic, version, or kind byte is caught by header
    /// validation alone.
    #[test]
    fn rejects_corrupted_headers(msg in athena_msg()) {
        let good = encode(&msg).expect("encode");
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        prop_assert!(matches!(decode(&bad), Err(FrameError::BadMagic { .. })));
        let mut bad = good.clone();
        bad[2] = bad[2].wrapping_add(1);
        prop_assert!(matches!(decode(&bad), Err(FrameError::BadVersion { .. })));
        let mut bad = good;
        bad[3] = 0x7f;
        prop_assert!(matches!(decode(&bad), Err(FrameError::UnknownKind { .. })));
    }
}

/// One deterministic exemplar per variant, so every kind byte is
/// exercised even if the randomized union were to skew.
#[test]
fn each_variant_round_trips() {
    let msgs = vec![
        AthenaMsg::QueryAnnounce {
            qid: QueryId(7),
            origin: NodeId(0),
            expr: Dnf::from_terms(vec![Term::try_from_literals(vec![
                Literal::positive(Label::new("viable/a")),
                Literal::negative(Label::new("blocked/b")),
            ])
            .expect("consistent term")]),
            deadline_at: SimTime::from_secs(60),
        },
        AthenaMsg::Request {
            name: "/city/cam/n1/x".parse().expect("valid name"),
            wanted: vec![Label::new("viable/a")],
            qid: QueryId(u64::MAX),
            origin: NodeId(2),
            kind: RequestKind::Prefetch,
        },
        AthenaMsg::Data {
            object: EvidenceObject {
                name: "/city/cam/n1/x".parse().expect("valid name"),
                covers: vec![Label::new("viable/a")],
                size: 500_000,
                source: NodeId(1),
                sampled_at: SimTime::from_secs(3),
                validity: SimDuration::from_secs(10),
            },
            push_to: Some(NodeId(3)),
            for_query: Some(QueryId(9)),
        },
        AthenaMsg::LabelShare {
            label: Label::new("viable/a"),
            value: true,
            sampled_at: SimTime::from_secs(3),
            validity: SimDuration::from_secs(10),
            annotator: NodeId(1),
            based_on: "/city/cam/n1/x".parse().expect("valid name"),
            for_query: None,
        },
    ];
    for msg in msgs {
        let frame = encode(&msg).expect("encode");
        let decoded = decode(&frame).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(decoded.attribution(), msg.attribution());
    }
}

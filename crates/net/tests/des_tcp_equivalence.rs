//! End-to-end backend equivalence: the same scenario through the DES
//! ([`DesTransport`]) and through a loopback TCP cluster
//! ([`run_cluster_tcp`]) must reach the **same decision outcomes** and
//! charge the **same attributed bytes** to each query.
//!
//! What is compared — and what deliberately is not — encodes the
//! nondeterminism boundary of the live backend (DESIGN.md §5g):
//!
//! - compared: per-query outcome (viable/infeasible/missed, and *which*
//!   course of action), the resolved/viable/infeasible/missed tallies,
//!   per-query ledger byte totals and their per-message-kind breakdown,
//!   overhead bytes, and the run's total bytes;
//! - excluded: latencies, decision timestamps, and trace order — thread
//!   scheduling and wall-clock jitter make those vary run to run on TCP.
//!
//! The scenario is built to be *timing-insensitive* so that byte totals
//! are a pure function of protocol decisions: static ground truth
//! (`prob_true = 1.0`, 600 s validity — far beyond any delivery jitter),
//! queries spaced well apart, retry timeout (30 s) far above worst-case
//! fetch latency, and no loss, faults, or prefetch pacing.

use dde_core::{QueryOutcome, QueryStatus, RunOptions, RunReport, Strategy};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_net::{run_cluster_tcp, ClusterConfig, DesTransport, NetError};
use dde_netsim::{FaultSchedule, LinkSpec, NodeId, Topology};
use dde_obs::NullSink;
use dde_workload::{
    Catalog, DynamicsClass, ObjectSpec, QueryInstance, RoadGrid, Scenario, ScenarioConfig,
    WorldModel,
};

/// A 4-node star — leaf 0, hub 1, leaf 2, source-leaf 3 — with two
/// static labels: `x` covered by a cheap camera and a wide shot (both
/// hosted at node 3); `y` covered only by the wide shot. The same shape
/// as the node-level protocol harness, lifted to a full [`Scenario`].
fn star_scenario() -> Scenario {
    let mut topology = Topology::new(4);
    topology.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
    topology.add_link(NodeId(1), NodeId(2), LinkSpec::mbps1());
    topology.add_link(NodeId(1), NodeId(3), LinkSpec::mbps1());
    topology.rebuild_routes();

    let slow = SimDuration::from_secs(600);
    let mut world = WorldModel::new(5);
    world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("y"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().expect("valid name"),
        covers: vec![Label::new("x")],
        size: 250_000,
        source: NodeId(3),
        class: DynamicsClass::Slow,
        validity: slow,
    });
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/wide".parse().expect("valid name"),
        covers: vec![Label::new("x"), Label::new("y")],
        size: 450_000,
        source: NodeId(3),
        class: DynamicsClass::Slow,
        validity: slow,
    });

    // Queries issue well after cluster boot (5 s of virtual slack) and
    // far apart, so a millisecond of scheduling jitter cannot reorder
    // which query's evidence is cached when the next one plans.
    let query = |id: u64, origin: usize, labels: &[&str], at: u64| QueryInstance {
        id,
        origin: NodeId(origin),
        expr: Dnf::from_terms(vec![Term::all_of(labels.iter().copied())]),
        deadline: SimDuration::from_secs(60),
        issue_at: SimTime::from_secs(at),
    };
    let queries = vec![
        query(0, 0, &["x"], 5),       // remote fetch, two hops
        query(1, 2, &["x", "y"], 20), // panorama after the hub warmed up
        query(2, 3, &["x"], 35),      // co-located, no network needed
    ];

    let grid = RoadGrid::new(2, 2);
    let node_sites = grid.intersections().take(4).collect();
    Scenario {
        config: ScenarioConfig::small(),
        grid,
        node_sites,
        topology,
        world,
        catalog,
        queries,
        faults: FaultSchedule::new(),
    }
}

fn outcome_of(record: &dde_core::QueryRecord) -> Option<QueryOutcome> {
    match record.status {
        QueryStatus::Decided { outcome, .. } => Some(outcome),
        _ => None,
    }
}

/// Asserts the decision-level and byte-level agreement between two
/// reports, ignoring every timing-derived field.
fn assert_equivalent(des: &RunReport, tcp: &RunReport) {
    assert_eq!(des.total_queries, tcp.total_queries);
    assert_eq!(des.resolved, tcp.resolved, "resolved counts diverge");
    assert_eq!(des.viable, tcp.viable, "viable counts diverge");
    assert_eq!(des.infeasible, tcp.infeasible, "infeasible counts diverge");
    assert_eq!(des.missed, tcp.missed, "missed counts diverge");
    assert_eq!(des.accurate, tcp.accurate, "accuracy diverges");

    assert_eq!(des.queries.len(), tcp.queries.len());
    for (d, t) in des.queries.iter().zip(&tcp.queries) {
        assert_eq!(d.id, t.id);
        assert_eq!(d.origin, t.origin);
        assert_eq!(
            outcome_of(d),
            outcome_of(t),
            "query {} decided differently",
            d.id
        );
    }

    // Byte accounting: identical in total, per kind, and per query.
    assert_eq!(des.total_bytes, tcp.total_bytes, "total bytes diverge");
    assert_eq!(
        des.bytes_by_kind, tcp.bytes_by_kind,
        "per-kind bytes diverge"
    );

    let des_ledger = des.ledger.as_ref().expect("DES observed run has a ledger");
    let tcp_ledger = tcp.ledger.as_ref().expect("TCP run has a ledger");
    assert_eq!(des_ledger.total_bytes, tcp_ledger.total_bytes);
    assert_eq!(des_ledger.total_messages, tcp_ledger.total_messages);
    assert_eq!(des_ledger.overhead.bytes, tcp_ledger.overhead.bytes);
    assert_eq!(
        des_ledger.queries.keys().collect::<Vec<_>>(),
        tcp_ledger.queries.keys().collect::<Vec<_>>(),
        "attributed query sets diverge"
    );
    for (qid, d) in &des_ledger.queries {
        let t = &tcp_ledger.queries[qid];
        assert_eq!(d.bytes, t.bytes, "query {qid} byte totals diverge");
        assert_eq!(
            d.bytes_by_msg, t.bytes_by_msg,
            "query {qid} per-kind bytes diverge"
        );
        assert_eq!(d.messages, t.messages, "query {qid} message counts diverge");
    }
}

#[test]
fn loopback_tcp_cluster_matches_des_outcomes_and_bytes() {
    let scenario = star_scenario();
    let options = RunOptions::new(Strategy::Lvf);

    let des = DesTransport::new(options.clone()).run_observed(&scenario, Box::new(NullSink));
    let tcp = run_cluster_tcp::<NullSink>(&scenario, &options, &ClusterConfig::default(), None)
        .expect("cluster run");

    // The scenario must actually exercise the network for the comparison
    // to mean anything.
    assert_eq!(des.total_queries, 3);
    assert_eq!(des.resolved, 3, "DES baseline failed to decide all queries");
    assert!(des.total_bytes > 0, "scenario produced no traffic");

    assert_equivalent(&des, &tcp);
}

#[test]
fn tcp_backend_refuses_fault_schedules() {
    let mut scenario = star_scenario();
    scenario.faults.crash_at(SimTime::from_secs(1), NodeId(1));
    let options = RunOptions::new(Strategy::Lvf);
    let err = run_cluster_tcp::<NullSink>(&scenario, &options, &ClusterConfig::default(), None);
    assert!(matches!(err, Err(NetError::Unsupported { .. })));
}

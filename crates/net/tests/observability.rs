//! Live observability plane, end to end: the flight recorder's
//! post-mortem dump on an injected [`NetError`], the health-probe wire
//! exchange against a real [`TcpTransport`], and the per-node telemetry a
//! full observed cluster run hands back.

use dde_core::{RunOptions, Strategy};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_net::{
    probe_health, run_cluster_tcp_observed, ClusterConfig, HealthState, MessageHandler, NetError,
    NodeHost, TcpTransport, Transport, VirtualClock,
};
use dde_netsim::{FaultSchedule, LinkSpec, NodeId, Topology};
use dde_obs::metrics::MetricsRegistry;
use dde_obs::{FlightRecorder, NullSink, SharedSink};
use dde_workload::{
    Catalog, DynamicsClass, ObjectSpec, QueryInstance, RoadGrid, Scenario, ScenarioConfig,
    WorldModel,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Two nodes, one link: node 0 issues a query over label `x`, node 1
/// hosts the only object covering it — so node 0 *must* transmit.
fn pair_scenario() -> Scenario {
    let mut topology = Topology::new(2);
    topology.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
    topology.rebuild_routes();

    let slow = SimDuration::from_secs(600);
    let mut world = WorldModel::new(5);
    world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().expect("valid name"),
        covers: vec![Label::new("x")],
        size: 250_000,
        source: NodeId(1),
        class: DynamicsClass::Slow,
        validity: slow,
    });

    let queries = vec![QueryInstance {
        id: 0,
        origin: NodeId(0),
        expr: Dnf::from_terms(vec![Term::all_of(["x"])]),
        deadline: SimDuration::from_secs(60),
        issue_at: SimTime::from_secs(1),
    }];

    let grid = RoadGrid::new(2, 2);
    let node_sites = grid.intersections().take(2).collect();
    Scenario {
        config: ScenarioConfig::small(),
        grid,
        node_sites,
        topology,
        world,
        catalog,
        queries,
        faults: FaultSchedule::new(),
    }
}

/// A transport whose every send fails fatally — the injected
/// [`NetError`] that must trigger the flight recorder's dump.
struct FailingTransport {
    id: NodeId,
    neighbors: Vec<NodeId>,
    clock: Arc<VirtualClock>,
    _handler: Option<MessageHandler>,
}

impl Transport for FailingTransport {
    fn local_node(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> Vec<NodeId> {
        self.neighbors.clone()
    }
    fn local_now(&self) -> SimTime {
        self.clock.now()
    }
    fn send_to(&self, _to: NodeId, _msg: &dde_core::AthenaMsg) -> Result<(), NetError> {
        Err(NetError::Shutdown)
    }
    fn set_message_handler(&mut self, handler: MessageHandler) {
        self._handler = Some(handler);
    }
    fn shutdown(&mut self) -> Result<(), NetError> {
        Ok(())
    }
}

#[test]
fn flight_recorder_retains_the_tail_when_a_send_fails_fatally() {
    let scenario = pair_scenario();
    let options = RunOptions::new(Strategy::Lvf);
    let shared = dde_core::build_shared_world(&scenario, &options);
    let annotator: Arc<dyn dde_core::Annotator + Send + Sync> =
        Arc::new(dde_core::GroundTruthAnnotator);
    let node = dde_core::build_nodes(&scenario, &shared, &annotator)
        .into_iter()
        .next()
        .expect("node 0");
    let mut topology = scenario.topology.clone();
    topology.ensure_routes();

    // Large scale: the whole virtual band elapses in microseconds of
    // wall time, so the query fires on the first loop pass.
    let clock = Arc::new(VirtualClock::start(1_000_000));
    let transport = FailingTransport {
        id: NodeId(0),
        neighbors: vec![NodeId(1)],
        clock: Arc::clone(&clock),
        _handler: None,
    };
    let recorder = SharedSink::new(FlightRecorder::new(32));
    let query = scenario.queries[0].clone();
    let externals = vec![(query.issue_at, query.into())];
    let horizon = SimTime::from_secs(90);

    let result = NodeHost::new(
        NodeId(0),
        node,
        topology,
        Box::new(transport),
        externals,
        horizon,
        Box::new(recorder.clone()),
        clock,
    )
    .with_recorder(recorder.clone())
    .run();

    // The injected error is fatal and typed...
    assert!(matches!(result, Err(NetError::Shutdown)), "{result:?}");
    // ...and the recorder kept the trace tail for the post-mortem dump
    // (run() has already printed it to stderr at this point): the
    // Transmit record of the very send that failed is in there.
    let report = recorder.with(|r| r.render_report("test"));
    assert!(
        recorder.with(|r| !r.is_empty()),
        "flight recorder retained nothing"
    );
    assert!(report.contains("=== flight recorder: test"), "{report}");
    assert!(report.contains("\"transmit\""), "no Transmit in:\n{report}");
}

#[test]
fn health_probes_answer_over_the_wire_with_metrics_snapshots() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let registry = Arc::new(MetricsRegistry::new());
    let health = Arc::new(HealthState::new(Arc::clone(&registry)));
    let clock = Arc::new(VirtualClock::start(16));
    let mut transport = TcpTransport::new(
        NodeId(0),
        listener,
        Arc::new(vec![addr]),
        Vec::new(),
        clock,
        &registry,
        Arc::clone(&health),
    )
    .expect("transport");

    health.mark_ready();
    health.beat(SimTime::from_micros(42_000));
    health.record_dispatch();

    let report = probe_health(addr, 7, Duration::from_secs(2)).expect("probe");
    assert_eq!(report.seq, 7);
    assert_eq!(report.node, 0);
    assert!(report.ready);
    assert_eq!(report.heartbeat_us, 42_000);
    assert_eq!(report.dispatches, 1);
    let snap = report.metrics().expect("parseable snapshot");
    assert_eq!(snap.gauge("health.ready"), Some(1));
    assert_eq!(snap.counter("host.dispatches"), Some(1));

    // The transport counts answered probes (the increment lands after the
    // reply is written, so poll briefly rather than race the reader).
    let mut answered = 0;
    for _ in 0..100 {
        answered = registry
            .snapshot()
            .counter("tcp.probes_answered")
            .unwrap_or(0);
        if answered >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(answered, 1);

    transport.shutdown().expect("shutdown");
    // A stopped transport no longer answers probes.
    assert!(probe_health(addr, 8, Duration::from_millis(300)).is_err());
}

#[test]
fn observed_cluster_run_returns_per_node_telemetry() {
    let scenario = pair_scenario();
    let options = RunOptions::new(Strategy::Lvf);
    let config = ClusterConfig {
        time_scale: 16,
        probe_wall_ms: Some(50),
        flight_recorder_cap: 64,
    };
    let outcome = run_cluster_tcp_observed::<NullSink>(&scenario, &options, &config, None)
        .expect("cluster run");

    assert_eq!(outcome.report.total_queries, 1);
    assert_eq!(outcome.report.resolved, 1, "query undecided");
    assert_eq!(outcome.nodes.len(), 2);

    for node in &outcome.nodes {
        // Every host dispatched at least its on_start stimulus and was
        // marked stopped again by the time the snapshot was taken.
        assert!(
            node.snapshot.counter("host.dispatches").unwrap_or(0) >= 1,
            "node {} dispatched nothing",
            node.node
        );
        assert_eq!(node.snapshot.gauge("health.ready"), Some(0));
        // The coordinator prober swept every 50 ms across a multi-second
        // run; every node must have answered at least once.
        assert!(node.probes_ok > 0, "node {} never probed ok", node.node);
        let last = node
            .last_report
            .as_ref()
            .unwrap_or_else(|| panic!("node {} has no last report", node.node));
        assert_eq!(last.node as usize, node.node);
        last.metrics().expect("last report snapshot parses");
    }

    // The query's fetch crossed the wire: the origin timed its sends and
    // somebody moved protocol frames in both directions.
    let origin = &outcome.nodes[0].snapshot;
    assert!(
        origin
            .histogram("host.send_wall_us")
            .map(|h| h.count())
            .unwrap_or(0)
            >= 1,
        "origin recorded no send latency"
    );
    let frames_out: u64 = outcome
        .nodes
        .iter()
        .map(|n| n.snapshot.counter("tcp.frames_out").unwrap_or(0))
        .sum();
    let frames_in: u64 = outcome
        .nodes
        .iter()
        .map(|n| n.snapshot.counter("tcp.frames_in").unwrap_or(0))
        .sum();
    assert!(frames_out > 0, "no frames sent");
    assert!(frames_in > 0, "no frames received");
}

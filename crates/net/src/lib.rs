//! # dde-net — pluggable transport layer for Athena nodes
//!
//! The paper specifies Athena (§V–§VI) as a distributed node protocol, but
//! the reproduction originally welded that protocol to `dde-netsim`'s
//! in-process discrete-event simulator. This crate puts the link layer
//! behind an injectable seam so the *same* [`dde_core::AthenaNode`] state
//! machine can run either inside the verified simulator or as a real
//! networked process:
//!
//! - [`transport`] — the [`Transport`] trait: per-node `send_to` /
//!   `broadcast` / `local_now` / message-handler registration with typed
//!   [`NetError`]s (no panics on any input);
//! - [`frame`] — hand-rolled length-prefixed binary wire frames for
//!   [`dde_core::AthenaMsg`], including the observational attribution
//!   keys; decoding rejects truncated, oversized, and malformed frames
//!   with typed errors, never a panic;
//! - [`des`] — [`DesTransport`], the deterministic test double: it
//!   delegates to the existing `run_scenario*` entry points, so every
//!   byte of the committed traces, reports, and determinism suites is
//!   pinned by construction (the DES remains the oracle);
//! - [`tcp`] — [`TcpTransport`], a production backend on `std::net`
//!   (threaded accept/reader loops, length-prefixed frames, connect
//!   retry with capped backoff — no external async runtime);
//! - [`host`] — [`NodeHost`], the live runtime that drives one
//!   `AthenaNode` over any [`Transport`] with a scaled virtual clock and
//!   a timer wheel, plus [`run_cluster_tcp`], which boots a loopback
//!   cluster of node threads from a [`dde_workload::scenario::Scenario`]
//!   and folds per-node outcomes into a [`dde_core::RunReport`]
//!   ([`run_cluster_tcp_observed`] additionally returns per-node
//!   [`NodeTelemetry`]);
//! - [`health`] — the live observability control plane: [`HealthState`]
//!   shared between host loop and transport, the [`probe_health`] client,
//!   and the [`HealthReport`] wire answer carrying a full
//!   [`dde_obs::MetricsSnapshot`]. Probes ride dedicated control frames
//!   served below the [`Transport`] handler seam, so the protocol path
//!   and the DES backend never observe them (DESIGN.md §5i).
//!
//! The DES backend is byte-deterministic; the TCP backend is not (thread
//! scheduling and wall-clock jitter reorder deliveries). What carries
//! across the boundary is the *decision-driven* invariant: for scenarios
//! whose outcomes do not race the clock, both backends produce the same
//! decision outcomes and the same per-query attributed byte totals — the
//! equivalence test in `tests/des_tcp_equivalence.rs` holds the two
//! runtimes to exactly that.

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): the protocol-facing
// surface of this crate must stay as strict as the simulator's. The TCP and
// host modules are sanctioned coordinator sites (lint.toml R5
// `coordinator_allow`) and carry explicit allow markers where they touch the
// wall clock.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod des;
pub mod error;
pub mod frame;
pub mod health;
pub mod host;
pub mod tcp;
pub mod transport;

pub use des::DesTransport;
pub use error::NetError;
pub use frame::{
    decode, decode_any, encode, encode_control, ControlMsg, FrameError, WireFrame, HEADER_LEN,
    MAX_PAYLOAD,
};
pub use health::{probe_health, HealthReport, HealthState};
pub use host::{
    run_cluster_tcp, run_cluster_tcp_observed, ClusterConfig, ClusterOutcome, HostOutcome,
    NodeHost, NodeTelemetry, VirtualClock,
};
pub use tcp::TcpTransport;
pub use transport::{MessageHandler, Transport};

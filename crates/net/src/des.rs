//! [`DesTransport`] — the discrete-event simulator as a verified test
//! double.
//!
//! The DES backend does not re-implement message passing: inside the
//! simulator the transport seam already exists as
//! [`dde_netsim::Context`] (sends, timers, clock) and the engine's event
//! heap. `DesTransport` therefore adapts the *scenario-level* entry
//! points — it delegates to `dde_core::engine::run_scenario*`
//! unchanged, which is precisely what pins every committed artifact:
//! traces, `RunReport`s, and the determinism suites are byte-identical
//! before and after the extraction, because the extraction is observable
//! only through this new API.
//!
//! Use the DES backend for anything that must be reproducible — CI
//! regression baselines, ablation sweeps, trace diffs. Use the TCP
//! backend ([`crate::run_cluster_tcp`]) to run the same scenario on real
//! sockets; the equivalence suite holds the two to the same decision
//! outcomes and attributed byte totals.

use dde_core::{RunOptions, RunReport};
use dde_obs::Sink;
use dde_workload::scenario::Scenario;

/// The deterministic cluster backend: one [`Scenario`] in, one
/// [`RunReport`] out, via the verified event-heap (or sharded) engine.
#[derive(Debug, Clone)]
pub struct DesTransport {
    options: RunOptions,
    /// Worker regions for the sharded engine; `None` selects the classic
    /// sequential event heap.
    threads: Option<usize>,
}

impl DesTransport {
    /// A DES backend running the classic sequential engine.
    pub fn new(options: RunOptions) -> DesTransport {
        DesTransport {
            options,
            threads: None,
        }
    }

    /// A DES backend running the conservative-parallel sharded engine
    /// with up to `threads` worker regions. Reports (and observed
    /// traces) are identical at any thread count.
    pub fn sharded(options: RunOptions, threads: usize) -> DesTransport {
        DesTransport {
            options,
            threads: Some(threads),
        }
    }

    /// The options every run of this backend uses.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Runs `scenario` to quiescence, unobserved (no trace overhead, no
    /// ledger).
    pub fn run(&self, scenario: &Scenario) -> RunReport {
        match self.threads {
            None => dde_core::run_scenario(scenario, self.options.clone()),
            Some(t) => dde_core::run_scenario_sharded(scenario, self.options.clone(), t),
        }
    }

    /// Runs `scenario` with the full event lifecycle streamed into
    /// `sink` and a live cost ledger folded into the report.
    pub fn run_observed(&self, scenario: &Scenario, sink: Box<dyn Sink>) -> RunReport {
        match self.threads {
            None => dde_core::run_scenario_observed(scenario, self.options.clone(), sink),
            Some(t) => {
                dde_core::run_scenario_sharded_observed(scenario, self.options.clone(), t, sink)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_core::Strategy;
    use dde_workload::scenario::ScenarioConfig;

    #[test]
    fn des_transport_is_observationally_identical_to_the_engine() {
        // The acceptance criterion in miniature: running through the new
        // API must reproduce the direct engine call exactly — full
        // RunReport equality, not just summary fields.
        let scenario = Scenario::build(ScenarioConfig::small().with_seed(11));
        let options = RunOptions::new(Strategy::Lvf);
        let direct = dde_core::run_scenario(&scenario, options.clone());
        let via_transport = DesTransport::new(options).run(&scenario);
        assert_eq!(direct, via_transport);
    }

    #[test]
    fn sharded_des_transport_matches_sharded_engine() {
        let scenario = Scenario::build(ScenarioConfig::small().with_seed(12));
        let options = RunOptions::new(Strategy::LvfLabelShare);
        let direct = dde_core::run_scenario_sharded(&scenario, options.clone(), 4);
        let via_transport = DesTransport::sharded(options, 4).run(&scenario);
        assert_eq!(direct, via_transport);
    }
}

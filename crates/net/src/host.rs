//! [`NodeHost`] — the live runtime that drives one Athena node over a
//! [`Transport`] — and [`run_cluster_tcp`], which boots a loopback
//! cluster of node threads from a [`Scenario`] and folds the per-node
//! outcomes into the same [`RunReport`] the DES engine produces.
//!
//! The host replays exactly the seam the simulator uses: each stimulus
//! (start, delivery, timer, external) is dispatched through
//! [`dde_netsim::Context`], and the queued [`dde_netsim::Command`]s are
//! realized against the transport (sends) and a local timer wheel
//! (timers). Protocol time is a **scaled virtual clock**: `now = wall
//! elapsed × scale` in simulation units, so a 60-second scenario runs in
//! a couple of wall seconds while deadlines, validity windows, and tick
//! periods keep their simulated meaning.
//!
//! What is — deliberately — *not* reproduced here is determinism: thread
//! scheduling and wall-clock jitter reorder deliveries, so traces and
//! latency figures differ run to run. The equivalence suite pins what
//! must carry across the boundary instead: decision outcomes and
//! attributed byte totals. Fault schedules are not supported on this
//! backend (fault injection is the DES's job); requesting one is a typed
//! error, not a silent ignore.
//!
//! This file is a sanctioned coordinator site (lint.toml R5
//! `coordinator_allow`): it owns threads, channels, and the virtual
//! clock. The wall-clock reads are confined to [`VirtualClock`] and
//! carry explicit lint markers.

use crate::error::NetError;
use crate::health::{probe_health, HealthReport, HealthState};
use crate::tcp::TcpTransport;
use crate::transport::Transport;
use dde_core::{AthenaEvent, AthenaMsg, AthenaNode, GroundTruthAnnotator, RunOptions, RunReport};
use dde_logic::time::SimTime;
use dde_netsim::sim::WireMessage;
use dde_netsim::{Command, Context, Metrics, NodeId, Protocol, Topology};
use dde_obs::metrics::{Counter, MetricsRegistry, MetricsSnapshot, WallHist};
use dde_obs::{EventKind, FlightRecorder, LedgerSink, SharedSink, Sink, TeeSink, TraceRecord};
use dde_workload::scenario::Scenario;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone protocol clock: simulation units elapsing `scale`× faster
/// than the wall clock. All hosts of a cluster share one clock so their
/// timelines agree (up to scheduling jitter — the documented
/// nondeterminism boundary of the live backend).
#[derive(Debug)]
pub struct VirtualClock {
    epoch: Instant,
    scale: u64,
}

impl VirtualClock {
    /// Starts a clock at simulated time zero, running `scale` simulated
    /// microseconds per wall microsecond (clamped to at least 1).
    #[allow(clippy::disallowed_methods)] // the live backend's single wall-clock anchor
    pub fn start(scale: u64) -> VirtualClock {
        VirtualClock {
            // The one wall-clock anchor of the live runtime. Everything
            // downstream is *relative* to this epoch, in simulation units.
            epoch: Instant::now(), // lint: allow(nondeterminism) — live-backend clock epoch; the DES backend never runs this
            scale: scale.max(1),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        let wall = self.epoch.elapsed().as_micros();
        SimTime::from_micros((wall as u64).saturating_mul(self.scale))
    }

    /// Wall-clock duration from now until virtual time `at` (zero if
    /// already past).
    pub fn wall_until(&self, at: SimTime) -> Duration {
        let now = self.now();
        if at <= now {
            return Duration::ZERO;
        }
        Duration::from_micros((at.as_micros() - now.as_micros()) / self.scale)
    }

    /// The configured scale factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }
}

/// What one node host hands back when its run completes.
#[derive(Debug)]
pub struct HostOutcome {
    /// The node's final protocol state (query table, stats, caches).
    pub node: AthenaNode,
    /// Link-layer accounting from this node's perspective (sends only —
    /// folding across hosts must not double-count).
    pub metrics: Metrics,
    /// Stimuli dispatched (start + deliveries + timers + externals).
    pub dispatches: u64,
    /// Sends that failed with a transport error (counted, not fatal —
    /// mirroring the simulator's drop-and-trace policy).
    pub send_errors: u64,
    /// The node's final metrics snapshot (host loop + transport series).
    /// Wall-clock values are nondeterministic by nature; the snapshot
    /// format is deterministic (DESIGN.md §5i).
    pub snapshot: MetricsSnapshot,
}

/// Drives one [`AthenaNode`] over a [`Transport`] until the scenario
/// horizon passes on the virtual clock.
pub struct NodeHost {
    id: NodeId,
    node: AthenaNode,
    topology: Topology,
    transport: Box<dyn Transport>,
    /// `(fire_at, event)` pairs sorted ascending by time.
    externals: Vec<(SimTime, AthenaEvent)>,
    horizon: SimTime,
    sink: Box<dyn Sink>,
    clock: Arc<VirtualClock>,
    registry: Arc<MetricsRegistry>,
    health: Arc<HealthState>,
    recorder: Option<SharedSink<FlightRecorder>>,
}

impl NodeHost {
    /// Assembles a host. `topology` must have its routing tables built
    /// ([`Topology::ensure_routes`]); `externals` are this node's
    /// scheduled stimuli, sorted by fire time. The host gets a private
    /// metrics registry and health state; share them with the transport
    /// via [`with_telemetry`](Self::with_telemetry).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        node: AthenaNode,
        topology: Topology,
        transport: Box<dyn Transport>,
        externals: Vec<(SimTime, AthenaEvent)>,
        horizon: SimTime,
        sink: Box<dyn Sink>,
        clock: Arc<VirtualClock>,
    ) -> NodeHost {
        let registry = Arc::new(MetricsRegistry::new());
        let health = Arc::new(HealthState::new(Arc::clone(&registry)));
        NodeHost {
            id,
            node,
            topology,
            transport,
            externals,
            horizon,
            sink,
            clock,
            registry,
            health,
            recorder: None,
        }
    }

    /// Replace the host's registry and health state — used by the
    /// cluster runtime so the host loop, the transport's `tcp.*` series,
    /// and the probe answers all share one registry per node.
    pub fn with_telemetry(
        mut self,
        registry: Arc<MetricsRegistry>,
        health: Arc<HealthState>,
    ) -> NodeHost {
        self.registry = registry;
        self.health = health;
        self
    }

    /// Attach a flight recorder handle. The host dumps its retained tail
    /// to stderr if the run fails with a [`NetError`]; tee the same
    /// recorder into `sink` so it actually receives the trace records.
    pub fn with_recorder(mut self, recorder: SharedSink<FlightRecorder>) -> NodeHost {
        self.recorder = Some(recorder);
        self
    }

    /// Runs the node to the horizon, then shuts the transport down and
    /// returns the outcome. All protocol callbacks happen on the calling
    /// thread; only the transport's reader threads run concurrently.
    ///
    /// On failure, the attached flight recorder (if any) dumps its
    /// retained trace tail to stderr before the error propagates — the
    /// post-mortem evidence survives even when no full trace sink was
    /// wired.
    pub fn run(self) -> Result<HostOutcome, NetError> {
        let recorder = self.recorder.clone();
        let id = self.id;
        match self.run_inner() {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                if let Some(rec) = recorder {
                    eprintln!(
                        "{}",
                        rec.with(
                            |r| r.render_report(&format!("node {} host error: {e}", id.index()))
                        )
                    );
                }
                Err(e)
            }
        }
    }

    fn run_inner(mut self) -> Result<HostOutcome, NetError> {
        // Pre-register every host-side series so the hot loop never takes
        // the registry lock.
        let hm = HostMetrics::new(&self.registry);
        let recv_enqueued = self.registry.counter("host.recv_enqueued");
        let recv_dequeued = self.registry.counter("host.recv_dequeued");
        let queue_depth = self.registry.gauge("host.recv_queue_depth");
        let scale = self.clock.scale();

        let (tx, rx) = mpsc::channel::<(NodeId, AthenaMsg, SimTime)>();
        {
            let clock = Arc::clone(&self.clock);
            let recv_enqueued = Arc::clone(&recv_enqueued);
            let queue_depth = Arc::clone(&queue_depth);
            self.transport
                .set_message_handler(Box::new(move |from, msg| {
                    recv_enqueued.inc();
                    queue_depth.add(1);
                    // A send error here means the host loop already exited;
                    // the message is simply late, like a delivery after
                    // run_until's deadline in the DES.
                    let _ = tx.send((from, msg, clock.now()));
                }));
        }

        let mut metrics = Metrics::new();
        // Timer wheel keyed (fire_at_micros, seq): same-instant timers
        // fire in the order they were set, like the simulator's event
        // heap sequence numbers.
        let mut timers: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut ext_idx = 0usize;
        let mut dispatches = 0u64;
        let mut send_errors = 0u64;

        // on_start at (virtual) time zero-ish, exactly once, before any
        // other stimulus — as the simulator does.
        self.dispatch(
            &mut metrics,
            &mut timers,
            &mut timer_seq,
            &mut send_errors,
            &hm,
            |node, ctx| node.on_start(ctx),
        )?;
        dispatches += 1;
        self.health.record_dispatch();
        self.health.mark_ready();

        loop {
            // Fire everything due: timers and externals interleaved in
            // time order.
            loop {
                let now = self.clock.now();
                let next_timer = timers.peek().map(|Reverse((at, _, _))| *at);
                let next_ext = self
                    .externals
                    .get(ext_idx)
                    .map(|(at, _)| at.as_micros())
                    .filter(|_| ext_idx < self.externals.len());
                let timer_due = next_timer.is_some_and(|at| at <= now.as_micros());
                let ext_due = next_ext.is_some_and(|at| at <= now.as_micros());
                if ext_due && (!timer_due || next_ext <= next_timer) {
                    let (at, ev) = self.externals[ext_idx].clone();
                    ext_idx += 1;
                    // How far behind the virtual schedule this stimulus
                    // fired, in wall microseconds.
                    hm.loop_lag_wall_us
                        .record_us(now.as_micros().saturating_sub(at.as_micros()) / scale);
                    self.dispatch(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        &hm,
                        |node, ctx| node.on_external(ctx, ev),
                    )?;
                    dispatches += 1;
                    self.health.record_dispatch();
                } else if timer_due {
                    let Some(Reverse((at, _, tag))) = timers.pop() else {
                        break;
                    };
                    hm.loop_lag_wall_us
                        .record_us(now.as_micros().saturating_sub(at) / scale);
                    self.dispatch(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        &hm,
                        |node, ctx| node.on_timer(ctx, tag),
                    )?;
                    dispatches += 1;
                    self.health.record_dispatch();
                } else {
                    break;
                }
            }

            let now = self.clock.now();
            self.health.beat(now);
            if now >= self.horizon {
                break;
            }
            // Sleep (in the inbox) until the next scheduled thing — or a
            // delivery, whichever comes first.
            let mut next = self.horizon;
            if let Some(Reverse((at, _, _))) = timers.peek() {
                next = next.min(SimTime::from_micros(*at));
            }
            if let Some((at, _)) = self.externals.get(ext_idx) {
                next = next.min(*at);
            }
            match rx.recv_timeout(self.clock.wall_until(next)) {
                Ok((from, msg, enqueued_at)) => {
                    let now = self.clock.now();
                    recv_dequeued.inc();
                    queue_depth.add(-1);
                    // Wall time the message sat in the inbox between the
                    // reader thread's enqueue and this dequeue.
                    hm.recv_wait_wall_us
                        .record_us(now.as_micros().saturating_sub(enqueued_at.as_micros()) / scale);
                    if now >= self.horizon {
                        break; // past the cut-off, like run_until
                    }
                    metrics.messages_delivered += 1;
                    self.deliver(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        &hm,
                        from,
                        msg,
                    )?;
                    dispatches += 1;
                    self.health.record_dispatch();
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        self.health.mark_stopped();
        self.transport.shutdown()?;
        let _ = self.sink.flush();
        Ok(HostOutcome {
            node: self.node,
            metrics,
            dispatches,
            send_errors,
            snapshot: self.registry.snapshot(),
        })
    }

    /// Emits the Deliver record and hands the message to the protocol.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        metrics: &mut Metrics,
        timers: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
        timer_seq: &mut u64,
        send_errors: &mut u64,
        hm: &HostMetrics,
        from: NodeId,
        msg: AthenaMsg,
    ) -> Result<(), NetError> {
        if self.sink.enabled() {
            self.sink.record(&TraceRecord {
                at: self.clock.now(),
                node: self.id.index() as u32,
                kind: EventKind::Deliver {
                    from: from.index() as u32,
                    to: self.id.index() as u32,
                    msg: msg.kind(),
                    query: msg.attribution(),
                },
            });
        }
        self.dispatch(metrics, timers, timer_seq, send_errors, hm, |node, ctx| {
            node.on_message(ctx, from, msg)
        })
    }

    /// Runs one protocol callback through a [`Context`], then realizes
    /// the queued commands: sends go to the transport (with the same
    /// Transmit trace + metrics bookkeeping as the simulator's link
    /// layer), timers go on the wheel.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        metrics: &mut Metrics,
        timers: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
        timer_seq: &mut u64,
        send_errors: &mut u64,
        hm: &HostMetrics,
        f: impl FnOnce(&mut AthenaNode, &mut Context<'_, AthenaMsg>),
    ) -> Result<(), NetError> {
        let now = self.clock.now();
        let mut commands: Vec<Command<AthenaMsg>> = Vec::new();
        {
            let mut ctx =
                Context::new(now, self.id, &self.topology, &mut commands, &mut *self.sink);
            f(&mut self.node, &mut ctx);
        }
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    if self.sink.enabled() {
                        self.sink.record(&TraceRecord {
                            at: now,
                            node: self.id.index() as u32,
                            kind: EventKind::Transmit {
                                from: self.id.index() as u32,
                                to: to.index() as u32,
                                msg: msg.kind(),
                                bytes,
                                background: msg.background(),
                                query: msg.attribution(),
                            },
                        });
                    }
                    metrics.record_send(self.id, to, bytes, msg.kind());
                    // Wall-clock send latency, measured as a virtual-time
                    // delta divided back by the scale — the host loop's
                    // only sanctioned clock is the VirtualClock.
                    let sent_at = self.clock.now();
                    let result = self.transport.send_to(to, &msg);
                    let wall_us = self
                        .clock
                        .now()
                        .as_micros()
                        .saturating_sub(sent_at.as_micros())
                        / self.clock.scale();
                    hm.send_wall_us.record_us(wall_us);
                    match result {
                        Ok(()) => {}
                        Err(NetError::Shutdown) => return Err(NetError::Shutdown),
                        Err(_) => {
                            *send_errors += 1;
                            hm.send_errors.inc();
                        }
                    }
                }
                Command::Timer { at, tag } => {
                    timers.push(Reverse((at.as_micros(), *timer_seq, tag)));
                    *timer_seq += 1;
                }
            }
        }
        Ok(())
    }
}

/// The host loop's pre-registered metric handles (the registry lock is
/// taken once here, never on the hot path).
struct HostMetrics {
    send_wall_us: Arc<WallHist>,
    loop_lag_wall_us: Arc<WallHist>,
    recv_wait_wall_us: Arc<WallHist>,
    send_errors: Arc<Counter>,
}

impl HostMetrics {
    fn new(registry: &MetricsRegistry) -> HostMetrics {
        HostMetrics {
            send_wall_us: registry.hist("host.send_wall_us"),
            loop_lag_wall_us: registry.hist("host.loop_lag_wall_us"),
            recv_wait_wall_us: registry.hist("host.recv_wait_wall_us"),
            send_errors: registry.counter("host.send_errors"),
        }
    }
}

/// Tuning for a loopback TCP cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated microseconds per wall microsecond. 16 runs a 60 s
    /// scenario band in under 4 wall seconds while keeping the protocol's
    /// 250 ms tick ~16 ms of wall time — coarse enough for thread
    /// scheduling noise to stay far from decision deadlines.
    pub time_scale: u64,
    /// Wall-clock period between coordinator health-probe sweeps, in
    /// milliseconds; `None` disables the prober thread entirely.
    pub probe_wall_ms: Option<u64>,
    /// How many trace records each node's flight recorder retains for
    /// the post-mortem dump on host failure.
    pub flight_recorder_cap: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            time_scale: 16,
            probe_wall_ms: Some(200),
            flight_recorder_cap: 256,
        }
    }
}

/// One node's live telemetry from an observed cluster run.
#[derive(Debug)]
pub struct NodeTelemetry {
    /// The node's index.
    pub node: usize,
    /// Final metrics snapshot (host loop + transport series).
    pub snapshot: MetricsSnapshot,
    /// Health probes this node answered successfully.
    pub probes_ok: u64,
    /// Health probes that failed (connect/timeout/decode).
    pub probes_failed: u64,
    /// The last health report received, if any probe succeeded.
    pub last_report: Option<HealthReport>,
}

/// A cluster run's report plus per-node live telemetry.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The folded protocol report — same assembly as the DES engine's.
    pub report: RunReport,
    /// Per-node telemetry, indexed by node id.
    pub nodes: Vec<NodeTelemetry>,
}

/// Boots one OS thread + TCP endpoint per scenario node on 127.0.0.1,
/// runs the query band to its horizon, and folds the per-node outcomes
/// into a [`RunReport`] via the same report assembly the DES engine
/// uses. The report always carries a cost ledger; pass `sink` to also
/// capture the merged live trace (record order across nodes is
/// wall-clock arrival order — nondeterministic by nature).
///
/// Fault schedules are unsupported here ([`NetError::Unsupported`]):
/// fault injection is the DES backend's job.
///
/// This is [`run_cluster_tcp_observed`] with the telemetry discarded.
pub fn run_cluster_tcp<S: Sink + Send + 'static>(
    scenario: &Scenario,
    options: &RunOptions,
    config: &ClusterConfig,
    sink: Option<S>,
) -> Result<RunReport, NetError> {
    run_cluster_tcp_observed(scenario, options, config, sink).map(|o| o.report)
}

/// [`run_cluster_tcp`] plus the live observability plane: one metrics
/// registry per node shared by its host loop and transport, a
/// coordinator prober polling every node's health endpoint over the
/// wire ([`ClusterConfig::probe_wall_ms`]), and one flight recorder per
/// node whose retained trace tail is dumped to stderr when that host
/// fails or panics.
pub fn run_cluster_tcp_observed<S: Sink + Send + 'static>(
    scenario: &Scenario,
    options: &RunOptions,
    config: &ClusterConfig,
    sink: Option<S>,
) -> Result<ClusterOutcome, NetError> {
    if !scenario.faults.is_empty() || !options.faults.is_empty() {
        return Err(NetError::Unsupported {
            what: "fault schedules on the TCP backend",
        });
    }
    let n = scenario.topology.len();
    let shared = dde_core::build_shared_world(scenario, options);
    let annotator: Arc<dyn dde_core::Annotator + Send + Sync> = Arc::new(GroundTruthAnnotator);
    let nodes = dde_core::build_nodes(scenario, &shared, &annotator);
    let mut topology = scenario.topology.clone();
    topology.ensure_routes();

    // Bind every listener before any host runs, so connect retries only
    // ever race thread startup, not address allocation.
    let mut listeners = Vec::with_capacity(n);
    let mut book = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|source| NetError::Io {
            context: "bind",
            source,
        })?;
        book.push(listener.local_addr().map_err(|source| NetError::Io {
            context: "local_addr",
            source,
        })?);
        listeners.push(listener);
    }
    let book = Arc::new(book);

    // Partition the scenario's stimuli per origin node, exactly as the
    // engine schedules them.
    let mut externals: Vec<Vec<(SimTime, AthenaEvent)>> = (0..n).map(|_| Vec::new()).collect();
    let mut last_deadline = SimTime::ZERO;
    for q in &scenario.queries {
        if let Some(lead) = options.announce_lead {
            externals[q.origin.index()]
                .push((q.issue_at - lead, AthenaEvent::AnnounceOnly(q.clone())));
        }
        externals[q.origin.index()].push((q.issue_at, q.clone().into()));
        last_deadline = last_deadline.max(q.issue_at + q.deadline);
    }
    for per_node in &mut externals {
        per_node.sort_by_key(|(at, _)| *at);
    }
    let horizon = last_deadline + options.drain;

    let ledger = SharedSink::new(LedgerSink::new());
    let user = sink.map(SharedSink::new);
    let clock = Arc::new(VirtualClock::start(config.time_scale));

    // Per-node observability plane: one registry (shared by host loop and
    // transport), one health state (answered over the wire by reader
    // threads), one bounded flight recorder (post-mortem trace tail).
    let registries: Vec<Arc<MetricsRegistry>> =
        (0..n).map(|_| Arc::new(MetricsRegistry::new())).collect();
    let healths: Vec<Arc<HealthState>> = registries
        .iter()
        .map(|r| Arc::new(HealthState::new(Arc::clone(r))))
        .collect();
    let recorders: Vec<SharedSink<FlightRecorder>> = (0..n)
        .map(|_| SharedSink::new(FlightRecorder::new(config.flight_recorder_cap)))
        .collect();

    // Coordinator prober: sweeps every node's health endpoint on a
    // wall-clock period until told to stop (or until every host handle
    // is joined and the stop sender drops).
    let (probe_stop_tx, probe_stop_rx) = mpsc::channel::<()>();
    let prober = config.probe_wall_ms.map(|period_ms| {
        let book = Arc::clone(&book);
        std::thread::spawn(move || {
            let period = Duration::from_millis(period_ms.max(1));
            let probe_timeout = Duration::from_millis(500);
            let n = book.len();
            let mut ok = vec![0u64; n];
            let mut failed = vec![0u64; n];
            let mut last: Vec<Option<HealthReport>> = vec![None; n];
            let mut seq = 0u64;
            loop {
                match probe_stop_rx.recv_timeout(period) {
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                }
                for (i, addr) in book.iter().enumerate() {
                    seq += 1;
                    match probe_health(*addr, seq, probe_timeout) {
                        Ok(report) => {
                            ok[i] += 1;
                            last[i] = Some(report);
                        }
                        Err(_) => failed[i] += 1,
                    }
                }
            }
            (ok, failed, last)
        })
    });

    let mut handles = Vec::with_capacity(n);
    for (id, (node, listener)) in nodes.into_iter().zip(listeners).enumerate() {
        let id = NodeId(id);
        let neighbors: Vec<NodeId> = topology.neighbors(id).collect();
        let topology = topology.clone();
        let book = Arc::clone(&book);
        let clock = Arc::clone(&clock);
        let ledger = ledger.clone();
        let user = user.clone();
        let registry = Arc::clone(&registries[id.index()]);
        let health = Arc::clone(&healths[id.index()]);
        let recorder = recorders[id.index()].clone();
        let externals_i = std::mem::take(&mut externals[id.index()]);
        handles.push(std::thread::spawn(
            move || -> Result<HostOutcome, NetError> {
                let transport = TcpTransport::new(
                    id,
                    listener,
                    book,
                    neighbors,
                    Arc::clone(&clock),
                    &registry,
                    Arc::clone(&health),
                )?;
                let base: Box<dyn Sink> = match user {
                    Some(u) => Box::new(TeeSink::new(Box::new(u), Box::new(ledger))),
                    None => Box::new(ledger),
                };
                let host_sink: Box<dyn Sink> =
                    Box::new(TeeSink::new(Box::new(recorder.clone()), base));
                NodeHost::new(
                    id,
                    node,
                    topology,
                    Box::new(transport),
                    externals_i,
                    horizon,
                    host_sink,
                    clock,
                )
                .with_telemetry(registry, health)
                .with_recorder(recorder)
                .run()
            },
        ));
    }

    let mut metrics = Metrics::new();
    let mut final_nodes = Vec::with_capacity(n);
    let mut snapshots = Vec::with_capacity(n);
    let mut dispatches = 0u64;
    for (id, handle) in handles.into_iter().enumerate() {
        let outcome = match handle.join() {
            Ok(outcome) => outcome?,
            Err(_) => {
                // The host thread panicked: dump its retained trace tail
                // before surfacing the typed failure.
                let report =
                    recorders[id].with(|r| r.render_report(&format!("node {id} host panicked")));
                eprint!("{report}");
                return Err(NetError::HostFailed { node: NodeId(id) });
            }
        };
        metrics.absorb(&outcome.metrics);
        dispatches += outcome.dispatches;
        final_nodes.push(outcome.node);
        snapshots.push(outcome.snapshot);
    }

    // All hosts are done: stop the prober sweep and collect its tallies.
    let _ = probe_stop_tx.send(());
    let (probes_ok, probes_failed, last_reports) = match prober {
        Some(handle) => handle
            .join()
            .unwrap_or_else(|_| (vec![0; n], vec![0; n], (0..n).map(|_| None).collect())),
        None => (vec![0; n], vec![0; n], (0..n).map(|_| None).collect()),
    };
    let telemetry: Vec<NodeTelemetry> = snapshots
        .into_iter()
        .zip(probes_ok)
        .zip(probes_failed)
        .zip(last_reports)
        .enumerate()
        .map(
            |(node, (((snapshot, probes_ok), probes_failed), last_report))| NodeTelemetry {
                node,
                snapshot,
                probes_ok,
                probes_failed,
                last_report,
            },
        )
        .collect();

    if let Some(u) = &user {
        let mut u = u.clone();
        let _ = u.flush();
    }
    let node_refs: Vec<&AthenaNode> = final_nodes.iter().collect();
    let mut report = dde_core::collect_report_parts(
        &metrics,
        horizon,
        dispatches,
        &node_refs,
        scenario,
        options.strategy,
        0,
    );
    report.ledger = Some(ledger.with(|l| l.take_ledger()));
    Ok(ClusterOutcome {
        report,
        nodes: telemetry,
    })
}

//! [`NodeHost`] — the live runtime that drives one Athena node over a
//! [`Transport`] — and [`run_cluster_tcp`], which boots a loopback
//! cluster of node threads from a [`Scenario`] and folds the per-node
//! outcomes into the same [`RunReport`] the DES engine produces.
//!
//! The host replays exactly the seam the simulator uses: each stimulus
//! (start, delivery, timer, external) is dispatched through
//! [`dde_netsim::Context`], and the queued [`dde_netsim::Command`]s are
//! realized against the transport (sends) and a local timer wheel
//! (timers). Protocol time is a **scaled virtual clock**: `now = wall
//! elapsed × scale` in simulation units, so a 60-second scenario runs in
//! a couple of wall seconds while deadlines, validity windows, and tick
//! periods keep their simulated meaning.
//!
//! What is — deliberately — *not* reproduced here is determinism: thread
//! scheduling and wall-clock jitter reorder deliveries, so traces and
//! latency figures differ run to run. The equivalence suite pins what
//! must carry across the boundary instead: decision outcomes and
//! attributed byte totals. Fault schedules are not supported on this
//! backend (fault injection is the DES's job); requesting one is a typed
//! error, not a silent ignore.
//!
//! This file is a sanctioned coordinator site (lint.toml R5
//! `coordinator_allow`): it owns threads, channels, and the virtual
//! clock. The wall-clock reads are confined to [`VirtualClock`] and
//! carry explicit lint markers.

use crate::error::NetError;
use crate::tcp::TcpTransport;
use crate::transport::Transport;
use dde_core::{AthenaEvent, AthenaMsg, AthenaNode, GroundTruthAnnotator, RunOptions, RunReport};
use dde_logic::time::SimTime;
use dde_netsim::sim::WireMessage;
use dde_netsim::{Command, Context, Metrics, NodeId, Protocol, Topology};
use dde_obs::{EventKind, LedgerSink, SharedSink, Sink, TeeSink, TraceRecord};
use dde_workload::scenario::Scenario;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone protocol clock: simulation units elapsing `scale`× faster
/// than the wall clock. All hosts of a cluster share one clock so their
/// timelines agree (up to scheduling jitter — the documented
/// nondeterminism boundary of the live backend).
#[derive(Debug)]
pub struct VirtualClock {
    epoch: Instant,
    scale: u64,
}

impl VirtualClock {
    /// Starts a clock at simulated time zero, running `scale` simulated
    /// microseconds per wall microsecond (clamped to at least 1).
    #[allow(clippy::disallowed_methods)] // the live backend's single wall-clock anchor
    pub fn start(scale: u64) -> VirtualClock {
        VirtualClock {
            // The one wall-clock anchor of the live runtime. Everything
            // downstream is *relative* to this epoch, in simulation units.
            epoch: Instant::now(), // lint: allow(nondeterminism) — live-backend clock epoch; the DES backend never runs this
            scale: scale.max(1),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        let wall = self.epoch.elapsed().as_micros();
        SimTime::from_micros((wall as u64).saturating_mul(self.scale))
    }

    /// Wall-clock duration from now until virtual time `at` (zero if
    /// already past).
    pub fn wall_until(&self, at: SimTime) -> Duration {
        let now = self.now();
        if at <= now {
            return Duration::ZERO;
        }
        Duration::from_micros((at.as_micros() - now.as_micros()) / self.scale)
    }

    /// The configured scale factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }
}

/// What one node host hands back when its run completes.
#[derive(Debug)]
pub struct HostOutcome {
    /// The node's final protocol state (query table, stats, caches).
    pub node: AthenaNode,
    /// Link-layer accounting from this node's perspective (sends only —
    /// folding across hosts must not double-count).
    pub metrics: Metrics,
    /// Stimuli dispatched (start + deliveries + timers + externals).
    pub dispatches: u64,
    /// Sends that failed with a transport error (counted, not fatal —
    /// mirroring the simulator's drop-and-trace policy).
    pub send_errors: u64,
}

/// Drives one [`AthenaNode`] over a [`Transport`] until the scenario
/// horizon passes on the virtual clock.
pub struct NodeHost {
    id: NodeId,
    node: AthenaNode,
    topology: Topology,
    transport: Box<dyn Transport>,
    /// `(fire_at, event)` pairs sorted ascending by time.
    externals: Vec<(SimTime, AthenaEvent)>,
    horizon: SimTime,
    sink: Box<dyn Sink>,
    clock: Arc<VirtualClock>,
}

impl NodeHost {
    /// Assembles a host. `topology` must have its routing tables built
    /// ([`Topology::ensure_routes`]); `externals` are this node's
    /// scheduled stimuli, sorted by fire time.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        node: AthenaNode,
        topology: Topology,
        transport: Box<dyn Transport>,
        externals: Vec<(SimTime, AthenaEvent)>,
        horizon: SimTime,
        sink: Box<dyn Sink>,
        clock: Arc<VirtualClock>,
    ) -> NodeHost {
        NodeHost {
            id,
            node,
            topology,
            transport,
            externals,
            horizon,
            sink,
            clock,
        }
    }

    /// Runs the node to the horizon, then shuts the transport down and
    /// returns the outcome. All protocol callbacks happen on the calling
    /// thread; only the transport's reader threads run concurrently.
    pub fn run(mut self) -> Result<HostOutcome, NetError> {
        let (tx, rx) = mpsc::channel::<(NodeId, AthenaMsg)>();
        self.transport
            .set_message_handler(Box::new(move |from, msg| {
                // A send error here means the host loop already exited; the
                // message is simply late, like a delivery after run_until's
                // deadline in the DES.
                let _ = tx.send((from, msg));
            }));

        let mut metrics = Metrics::new();
        // Timer wheel keyed (fire_at_micros, seq): same-instant timers
        // fire in the order they were set, like the simulator's event
        // heap sequence numbers.
        let mut timers: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut ext_idx = 0usize;
        let mut dispatches = 0u64;
        let mut send_errors = 0u64;

        // on_start at (virtual) time zero-ish, exactly once, before any
        // other stimulus — as the simulator does.
        self.dispatch(
            &mut metrics,
            &mut timers,
            &mut timer_seq,
            &mut send_errors,
            |node, ctx| node.on_start(ctx),
        )?;
        dispatches += 1;

        loop {
            // Fire everything due: timers and externals interleaved in
            // time order.
            loop {
                let now = self.clock.now();
                let next_timer = timers.peek().map(|Reverse((at, _, _))| *at);
                let next_ext = self
                    .externals
                    .get(ext_idx)
                    .map(|(at, _)| at.as_micros())
                    .filter(|_| ext_idx < self.externals.len());
                let timer_due = next_timer.is_some_and(|at| at <= now.as_micros());
                let ext_due = next_ext.is_some_and(|at| at <= now.as_micros());
                if ext_due && (!timer_due || next_ext <= next_timer) {
                    let (_, ev) = self.externals[ext_idx].clone();
                    ext_idx += 1;
                    self.dispatch(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        |node, ctx| node.on_external(ctx, ev),
                    )?;
                    dispatches += 1;
                } else if timer_due {
                    let Some(Reverse((_, _, tag))) = timers.pop() else {
                        break;
                    };
                    self.dispatch(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        |node, ctx| node.on_timer(ctx, tag),
                    )?;
                    dispatches += 1;
                } else {
                    break;
                }
            }

            let now = self.clock.now();
            if now >= self.horizon {
                break;
            }
            // Sleep (in the inbox) until the next scheduled thing — or a
            // delivery, whichever comes first.
            let mut next = self.horizon;
            if let Some(Reverse((at, _, _))) = timers.peek() {
                next = next.min(SimTime::from_micros(*at));
            }
            if let Some((at, _)) = self.externals.get(ext_idx) {
                next = next.min(*at);
            }
            match rx.recv_timeout(self.clock.wall_until(next)) {
                Ok((from, msg)) => {
                    if self.clock.now() >= self.horizon {
                        break; // past the cut-off, like run_until
                    }
                    metrics.messages_delivered += 1;
                    self.deliver(
                        &mut metrics,
                        &mut timers,
                        &mut timer_seq,
                        &mut send_errors,
                        from,
                        msg,
                    )?;
                    dispatches += 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        self.transport.shutdown()?;
        let _ = self.sink.flush();
        Ok(HostOutcome {
            node: self.node,
            metrics,
            dispatches,
            send_errors,
        })
    }

    /// Emits the Deliver record and hands the message to the protocol.
    fn deliver(
        &mut self,
        metrics: &mut Metrics,
        timers: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
        timer_seq: &mut u64,
        send_errors: &mut u64,
        from: NodeId,
        msg: AthenaMsg,
    ) -> Result<(), NetError> {
        if self.sink.enabled() {
            self.sink.record(&TraceRecord {
                at: self.clock.now(),
                node: self.id.index() as u32,
                kind: EventKind::Deliver {
                    from: from.index() as u32,
                    to: self.id.index() as u32,
                    msg: msg.kind(),
                    query: msg.attribution(),
                },
            });
        }
        self.dispatch(metrics, timers, timer_seq, send_errors, |node, ctx| {
            node.on_message(ctx, from, msg)
        })
    }

    /// Runs one protocol callback through a [`Context`], then realizes
    /// the queued commands: sends go to the transport (with the same
    /// Transmit trace + metrics bookkeeping as the simulator's link
    /// layer), timers go on the wheel.
    fn dispatch(
        &mut self,
        metrics: &mut Metrics,
        timers: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
        timer_seq: &mut u64,
        send_errors: &mut u64,
        f: impl FnOnce(&mut AthenaNode, &mut Context<'_, AthenaMsg>),
    ) -> Result<(), NetError> {
        let now = self.clock.now();
        let mut commands: Vec<Command<AthenaMsg>> = Vec::new();
        {
            let mut ctx =
                Context::new(now, self.id, &self.topology, &mut commands, &mut *self.sink);
            f(&mut self.node, &mut ctx);
        }
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    let bytes = msg.wire_size();
                    if self.sink.enabled() {
                        self.sink.record(&TraceRecord {
                            at: now,
                            node: self.id.index() as u32,
                            kind: EventKind::Transmit {
                                from: self.id.index() as u32,
                                to: to.index() as u32,
                                msg: msg.kind(),
                                bytes,
                                background: msg.background(),
                                query: msg.attribution(),
                            },
                        });
                    }
                    metrics.record_send(self.id, to, bytes, msg.kind());
                    match self.transport.send_to(to, &msg) {
                        Ok(()) => {}
                        Err(NetError::Shutdown) => return Err(NetError::Shutdown),
                        Err(_) => *send_errors += 1,
                    }
                }
                Command::Timer { at, tag } => {
                    timers.push(Reverse((at.as_micros(), *timer_seq, tag)));
                    *timer_seq += 1;
                }
            }
        }
        Ok(())
    }
}

/// Tuning for a loopback TCP cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated microseconds per wall microsecond. 16 runs a 60 s
    /// scenario band in under 4 wall seconds while keeping the protocol's
    /// 250 ms tick ~16 ms of wall time — coarse enough for thread
    /// scheduling noise to stay far from decision deadlines.
    pub time_scale: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig { time_scale: 16 }
    }
}

/// Boots one OS thread + TCP endpoint per scenario node on 127.0.0.1,
/// runs the query band to its horizon, and folds the per-node outcomes
/// into a [`RunReport`] via the same report assembly the DES engine
/// uses. The report always carries a cost ledger; pass `sink` to also
/// capture the merged live trace (record order across nodes is
/// wall-clock arrival order — nondeterministic by nature).
///
/// Fault schedules are unsupported here ([`NetError::Unsupported`]):
/// fault injection is the DES backend's job.
pub fn run_cluster_tcp<S: Sink + Send + 'static>(
    scenario: &Scenario,
    options: &RunOptions,
    config: &ClusterConfig,
    sink: Option<S>,
) -> Result<RunReport, NetError> {
    if !scenario.faults.is_empty() || !options.faults.is_empty() {
        return Err(NetError::Unsupported {
            what: "fault schedules on the TCP backend",
        });
    }
    let n = scenario.topology.len();
    let shared = dde_core::build_shared_world(scenario, options);
    let annotator: Arc<dyn dde_core::Annotator + Send + Sync> = Arc::new(GroundTruthAnnotator);
    let nodes = dde_core::build_nodes(scenario, &shared, &annotator);
    let mut topology = scenario.topology.clone();
    topology.ensure_routes();

    // Bind every listener before any host runs, so connect retries only
    // ever race thread startup, not address allocation.
    let mut listeners = Vec::with_capacity(n);
    let mut book = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|source| NetError::Io {
            context: "bind",
            source,
        })?;
        book.push(listener.local_addr().map_err(|source| NetError::Io {
            context: "local_addr",
            source,
        })?);
        listeners.push(listener);
    }
    let book = Arc::new(book);

    // Partition the scenario's stimuli per origin node, exactly as the
    // engine schedules them.
    let mut externals: Vec<Vec<(SimTime, AthenaEvent)>> = (0..n).map(|_| Vec::new()).collect();
    let mut last_deadline = SimTime::ZERO;
    for q in &scenario.queries {
        if let Some(lead) = options.announce_lead {
            externals[q.origin.index()]
                .push((q.issue_at - lead, AthenaEvent::AnnounceOnly(q.clone())));
        }
        externals[q.origin.index()].push((q.issue_at, q.clone().into()));
        last_deadline = last_deadline.max(q.issue_at + q.deadline);
    }
    for per_node in &mut externals {
        per_node.sort_by_key(|(at, _)| *at);
    }
    let horizon = last_deadline + options.drain;

    let ledger = SharedSink::new(LedgerSink::new());
    let user = sink.map(SharedSink::new);
    let clock = Arc::new(VirtualClock::start(config.time_scale));

    let mut handles = Vec::with_capacity(n);
    for (id, (node, listener)) in nodes.into_iter().zip(listeners).enumerate() {
        let id = NodeId(id);
        let neighbors: Vec<NodeId> = topology.neighbors(id).collect();
        let topology = topology.clone();
        let book = Arc::clone(&book);
        let clock = Arc::clone(&clock);
        let ledger = ledger.clone();
        let user = user.clone();
        let externals_i = std::mem::take(&mut externals[id.index()]);
        handles.push(std::thread::spawn(
            move || -> Result<HostOutcome, NetError> {
                let transport =
                    TcpTransport::new(id, listener, book, neighbors, Arc::clone(&clock))?;
                let host_sink: Box<dyn Sink> = match user {
                    Some(u) => Box::new(TeeSink::new(Box::new(u), Box::new(ledger))),
                    None => Box::new(ledger),
                };
                NodeHost::new(
                    id,
                    node,
                    topology,
                    Box::new(transport),
                    externals_i,
                    horizon,
                    host_sink,
                    clock,
                )
                .run()
            },
        ));
    }

    let mut metrics = Metrics::new();
    let mut final_nodes = Vec::with_capacity(n);
    let mut dispatches = 0u64;
    for (id, handle) in handles.into_iter().enumerate() {
        let outcome = handle
            .join()
            .map_err(|_| NetError::HostFailed { node: NodeId(id) })??;
        metrics.absorb(&outcome.metrics);
        dispatches += outcome.dispatches;
        final_nodes.push(outcome.node);
    }

    if let Some(u) = &user {
        let mut u = u.clone();
        let _ = u.flush();
    }
    let node_refs: Vec<&AthenaNode> = final_nodes.iter().collect();
    let mut report = dde_core::collect_report_parts(
        &metrics,
        horizon,
        dispatches,
        &node_refs,
        scenario,
        options.strategy,
        0,
    );
    report.ledger = Some(ledger.with(|l| l.take_ledger()));
    Ok(report)
}

//! Health probing for the live cluster: per-node liveness/readiness
//! state and the coordinator-side probe client.
//!
//! A [`HealthState`] is shared between a node's [`NodeHost`] loop (which
//! marks readiness and beats the heartbeat) and its
//! [`TcpTransport`] reader threads (which answer
//! [`ControlMsg::HealthProbe`] frames on prober connections with a
//! [`HealthReport`] carrying the
//! node's full metrics snapshot). Probes are served *below* the
//! [`Transport`](crate::transport::Transport) handler seam: the Athena
//! protocol never observes them, no trace record is emitted for them,
//! and the DES backend has no sockets to probe — so the deterministic
//! path is untouched by construction (DESIGN.md §5i).
//!
//! [`NodeHost`]: crate::host::NodeHost
//! [`TcpTransport`]: crate::tcp::TcpTransport

use crate::error::NetError;
use crate::frame::{self, ControlMsg, WireFrame};
use crate::tcp::{HELLO_LEN, HELLO_MAGIC, HELLO_ROLE_PROBER, HELLO_VERSION};
use dde_logic::time::SimTime;
use dde_netsim::NodeId;
use dde_obs::metrics::{Counter, Gauge, MetricsError, MetricsRegistry, MetricsSnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The node id a prober puts in its hello: probers are not cluster nodes.
pub(crate) const PROBER_NODE_ID: u32 = u32::MAX;

/// One node's live health: readiness, last heartbeat (virtual time), and
/// the stimulus-dispatch count, all backed by registry series so they
/// show up in the metrics snapshot too.
#[derive(Debug)]
pub struct HealthState {
    registry: Arc<MetricsRegistry>,
    ready: Arc<Gauge>,
    heartbeat: Arc<Gauge>,
    dispatches: Arc<Counter>,
}

impl HealthState {
    /// Health state backed by `registry` (series `health.ready`,
    /// `health.heartbeat_us`, `host.dispatches`).
    pub fn new(registry: Arc<MetricsRegistry>) -> HealthState {
        let ready = registry.gauge("health.ready");
        let heartbeat = registry.gauge("health.heartbeat_us");
        let dispatches = registry.counter("host.dispatches");
        HealthState {
            registry,
            ready,
            heartbeat,
            dispatches,
        }
    }

    /// The registry backing this state (shared with the host and
    /// transport instrumentation).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Mark the node ready: the host loop has started driving the
    /// protocol.
    pub fn mark_ready(&self) {
        self.ready.set(1);
    }

    /// Mark the node stopped (host loop exited).
    pub fn mark_stopped(&self) {
        self.ready.set(0);
    }

    /// Whether the node is currently marked ready.
    pub fn is_ready(&self) -> bool {
        self.ready.get() == 1
    }

    /// Record a heartbeat at virtual time `now`.
    pub fn beat(&self, now: SimTime) {
        self.heartbeat
            .set(i64::try_from(now.as_micros()).unwrap_or(i64::MAX));
    }

    /// Count one dispatched stimulus (start, delivery, timer, external).
    pub fn record_dispatch(&self) {
        self.dispatches.inc();
    }

    /// Total stimuli dispatched so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.get()
    }

    /// Assemble the probe answer for `node`, echoing `seq`, with the full
    /// metrics snapshot serialized into `metrics_json`.
    pub fn report(&self, node: NodeId, seq: u64) -> HealthReport {
        HealthReport {
            seq,
            node: u32::try_from(node.0).unwrap_or(PROBER_NODE_ID),
            ready: self.is_ready(),
            heartbeat_us: u64::try_from(self.heartbeat.get()).unwrap_or(0),
            dispatches: self.dispatches.get(),
            metrics_json: self.registry.snapshot().to_json_value().to_compact_string(),
        }
    }
}

/// A node's answer to a health probe (wire kind 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The probe's sequence number, echoed verbatim.
    pub seq: u64,
    /// The answering node's id.
    pub node: u32,
    /// Whether the host loop is running (readiness).
    pub ready: bool,
    /// Virtual time of the node's last host-loop heartbeat, µs.
    pub heartbeat_us: u64,
    /// Stimuli dispatched so far (start + deliveries + timers +
    /// externals).
    pub dispatches: u64,
    /// The node's full [`MetricsSnapshot`] in its compact JSON
    /// exposition format.
    pub metrics_json: String,
}

impl HealthReport {
    /// Parse the embedded metrics snapshot.
    pub fn metrics(&self) -> Result<MetricsSnapshot, MetricsError> {
        MetricsSnapshot::parse(&self.metrics_json)
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> NetError {
    move |source| NetError::Io { context, source }
}

/// Probe the node listening at `addr`: connect (with `timeout` applied
/// to connect, write, and read), send one
/// [`HealthProbe`](ControlMsg::HealthProbe), and wait for the
/// [`HealthReport`]. Every failure mode — refused connection, timeout,
/// malformed reply — is a typed error, never a panic.
pub fn probe_health(
    addr: SocketAddr,
    seq: u64,
    timeout: Duration,
) -> Result<HealthReport, NetError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(io_err("probe connect"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(io_err("probe set_read_timeout"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(io_err("probe set_write_timeout"))?;

    let mut hello = [0u8; HELLO_LEN];
    hello[0..2].copy_from_slice(&HELLO_MAGIC);
    hello[2] = HELLO_VERSION;
    hello[3] = HELLO_ROLE_PROBER;
    hello[4..8].copy_from_slice(&PROBER_NODE_ID.to_be_bytes());
    stream.write_all(&hello).map_err(io_err("probe hello"))?;

    let probe = frame::encode_control(&ControlMsg::HealthProbe { seq })?;
    stream.write_all(&probe).map_err(io_err("probe write"))?;

    let mut header = [0u8; frame::HEADER_LEN];
    stream
        .read_exact(&mut header)
        .map_err(io_err("probe read header"))?;
    let len = frame::payload_len(&header)?;
    let mut buf = vec![0u8; frame::HEADER_LEN + len];
    buf[..frame::HEADER_LEN].copy_from_slice(&header);
    stream
        .read_exact(&mut buf[frame::HEADER_LEN..])
        .map_err(io_err("probe read payload"))?;
    match frame::decode_any(&buf)? {
        WireFrame::Control(ControlMsg::HealthReport(report)) => Ok(report),
        _ => Err(NetError::Unsupported {
            what: "unexpected health-probe reply frame",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_a_parseable_snapshot() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("tcp.frames_out").add(5);
        let health = HealthState::new(Arc::clone(&registry));
        health.mark_ready();
        health.beat(SimTime::from_micros(42));
        health.record_dispatch();
        let report = health.report(NodeId(2), 9);
        assert_eq!(report.seq, 9);
        assert_eq!(report.node, 2);
        assert!(report.ready);
        assert_eq!(report.heartbeat_us, 42);
        assert_eq!(report.dispatches, 1);
        let snap = report.metrics().unwrap();
        assert_eq!(snap.counter("tcp.frames_out"), Some(5));
        assert_eq!(snap.gauge("health.ready"), Some(1));
    }

    #[test]
    fn stopped_state_reports_not_ready() {
        let health = HealthState::new(Arc::new(MetricsRegistry::new()));
        health.mark_ready();
        health.mark_stopped();
        assert!(!health.is_ready());
        assert!(!health.report(NodeId(0), 0).ready);
    }

    #[test]
    fn probing_a_dead_address_is_a_typed_error() {
        // Bind then drop a listener to get an address nobody serves.
        let addr = {
            let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let err = probe_health(addr, 1, Duration::from_millis(200));
        assert!(matches!(err, Err(NetError::Io { .. })), "{err:?}");
    }
}

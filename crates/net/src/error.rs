//! Typed transport errors.
//!
//! Every failure a [`crate::Transport`] backend can hit is represented
//! here — the trait surface never panics, so a routing race, a malformed
//! frame, or a dead peer degrades to an error the host can count and keep
//! running through (exactly what `dde-netsim` does with its `Drop` trace
//! records).

use crate::frame::FrameError;
use dde_netsim::{NodeId, SendError};

/// Any failure raised by a transport backend.
#[derive(Debug)]
pub enum NetError {
    /// The destination is not adjacent to the sending node. The Athena
    /// protocol is hop-by-hop; this is the live-transport surfacing of
    /// [`dde_netsim::SendError::NotNeighbor`].
    NotNeighbor {
        /// The node that attempted the send.
        from: NodeId,
        /// The non-adjacent destination.
        to: NodeId,
    },
    /// The destination has no known address (not part of the cluster's
    /// address book).
    UnknownPeer {
        /// The unresolvable destination.
        peer: NodeId,
    },
    /// Wire-frame encoding or decoding failed.
    Frame(FrameError),
    /// An operating-system I/O error, tagged with what the transport was
    /// doing at the time.
    Io {
        /// What the transport was doing (`"connect"`, `"write"`, …).
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The connection to a peer closed (or could not be established
    /// within the retry budget).
    PeerUnavailable {
        /// The peer that is gone.
        peer: NodeId,
    },
    /// The transport has been shut down; no further traffic is possible.
    Shutdown,
    /// A cluster node host terminated abnormally (its thread panicked or
    /// its outcome was lost).
    HostFailed {
        /// The node whose host died.
        node: NodeId,
    },
    /// The requested feature is not available on this backend (e.g. fault
    /// schedules on the TCP cluster — fault injection belongs to the
    /// DES).
    Unsupported {
        /// What was asked for.
        what: &'static str,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NotNeighbor { from, to } => {
                write!(f, "{from} attempted to send to non-neighbor {to}")
            }
            NetError::UnknownPeer { peer } => write!(f, "no address known for {peer}"),
            NetError::Frame(e) => write!(f, "wire frame error: {e}"),
            NetError::Io { context, source } => write!(f, "i/o error during {context}: {source}"),
            NetError::PeerUnavailable { peer } => write!(f, "peer {peer} unavailable"),
            NetError::Shutdown => write!(f, "transport is shut down"),
            NetError::HostFailed { node } => write!(f, "node host for {node} failed"),
            NetError::Unsupported { what } => {
                write!(f, "not supported on this backend: {what}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Frame(e) => Some(e),
            NetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        NetError::Frame(e)
    }
}

impl From<SendError> for NetError {
    fn from(e: SendError) -> NetError {
        match e {
            SendError::NotNeighbor { from, to } => NetError::NotNeighbor { from, to },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sim_send_error() {
        let e: NetError = SendError::NotNeighbor {
            from: NodeId(0),
            to: NodeId(2),
        }
        .into();
        assert!(matches!(
            e,
            NetError::NotNeighbor {
                from: NodeId(0),
                to: NodeId(2)
            }
        ));
        assert!(e.to_string().contains("non-neighbor"));
    }

    #[test]
    fn io_error_keeps_source() {
        use std::error::Error as _;
        let e = NetError::Io {
            context: "connect",
            source: std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("connect"));
    }
}

//! [`TcpTransport`] — the production backend on `std::net`.
//!
//! No async runtime: the workspace builds offline with vendored deps
//! only, so concurrency is plain threads. Each transport owns
//!
//! - an **accept loop** on the node's listener, which spawns one
//!   **reader thread** per inbound connection;
//! - a write-side **connection table** (lazy connect with capped-backoff
//!   retry, so boot order between cluster nodes does not matter);
//! - the shared **inbound queue**: reader threads hand decoded messages
//!   to the registered handler, buffering anything that arrives before
//!   registration.
//!
//! Wire format: one length-prefixed [`crate::frame`] per message, after
//! an 8-byte hello identifying the connecting node. A malformed frame
//! closes that connection with a typed error recorded — never a panic,
//! whatever bytes the peer sends.
//!
//! This file is a sanctioned coordinator site (lint.toml R5
//! `coordinator_allow`): threads, `Mutex`es, and the stop flag live
//! here, *below* the protocol seam. Protocol code above [`Transport`]
//! stays in the region-pinned deny scope.

// Mirrors the R5 coordinator sanction for clippy's disallowed-types
// list: the connection table, inbound queue, and reader registry are
// genuinely shared with this transport's own accept/reader threads.
#![allow(clippy::disallowed_types)]

use crate::error::NetError;
use crate::frame::{self, ControlMsg, WireFrame};
use crate::health::HealthState;
use crate::host::VirtualClock;
use crate::transport::{MessageHandler, Transport};
use dde_core::AthenaMsg;
use dde_logic::time::SimTime;
use dde_netsim::NodeId;
use dde_obs::metrics::{Counter, MetricsRegistry};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hello preamble: magic(2) + version(1) + role(1) + node id(u32 BE).
pub(crate) const HELLO_LEN: usize = 8;
pub(crate) const HELLO_MAGIC: [u8; 2] = *b"DH";
pub(crate) const HELLO_VERSION: u8 = 1;
/// Role byte: a cluster peer streaming protocol frames.
pub(crate) const HELLO_ROLE_PEER: u8 = 0;
/// Role byte: a health prober exchanging control frames on this
/// connection (served below the protocol seam; see `crate::health`).
pub(crate) const HELLO_ROLE_PROBER: u8 = 1;

/// Reader poll granularity: how often a blocked read re-checks the stop
/// flag. Bounds shutdown latency, not throughput.
const READ_POLL: Duration = Duration::from_millis(25);

/// Connect retry: capped exponential backoff. First attempt immediate,
/// then 1, 2, 4, … ms up to [`CONNECT_BACKOFF_CAP`], at most
/// [`CONNECT_ATTEMPTS`] attempts (~2.5 s worst case) — enough for every
/// peer of a freshly booted cluster to come up.
const CONNECT_ATTEMPTS: u32 = 32;
const CONNECT_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Inbound dispatch state shared between reader threads and
/// [`Transport::set_message_handler`].
struct Inbound {
    handler: Option<MessageHandler>,
    /// Messages that arrived before a handler was registered, replayed in
    /// arrival order at registration.
    pending: Vec<(NodeId, AthenaMsg)>,
}

impl Inbound {
    fn dispatch(&mut self, from: NodeId, msg: AthenaMsg) {
        match self.handler.as_mut() {
            Some(h) => h(from, msg),
            None => self.pending.push((from, msg)),
        }
    }
}

/// Helper: recover from a poisoned lock — the data is still the best
/// evidence we have (same policy as `dde_obs::SharedSink`).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The transport's metric handles, pre-registered so hot paths never
/// touch the registry lock. Shared with the accept/reader threads.
#[derive(Debug)]
pub(crate) struct TcpStats {
    /// Connection attempts, including the first try of each connect.
    pub connect_attempts: Arc<Counter>,
    /// Backoff retries (attempts beyond the first per connect call).
    pub connect_retries: Arc<Counter>,
    /// Protocol frames written.
    pub frames_out: Arc<Counter>,
    /// Protocol frame bytes written (header + payload).
    pub bytes_out: Arc<Counter>,
    /// Protocol frames fully read and decoded.
    pub frames_in: Arc<Counter>,
    /// Protocol frame bytes read (header + payload).
    pub bytes_in: Arc<Counter>,
    /// Malformed hellos/frames (each closed its connection).
    pub decode_errors: Arc<Counter>,
    /// Health probes answered on prober connections.
    pub probes_answered: Arc<Counter>,
}

impl TcpStats {
    fn new(registry: &MetricsRegistry) -> TcpStats {
        TcpStats {
            connect_attempts: registry.counter("tcp.connect_attempts"),
            connect_retries: registry.counter("tcp.connect_retries"),
            frames_out: registry.counter("tcp.frames_out"),
            bytes_out: registry.counter("tcp.bytes_out"),
            frames_in: registry.counter("tcp.frames_in"),
            bytes_in: registry.counter("tcp.bytes_in"),
            decode_errors: registry.counter("tcp.decode_errors"),
            probes_answered: registry.counter("tcp.probes_answered"),
        }
    }
}

/// One node's TCP endpoint. See the module docs for the thread layout.
pub struct TcpTransport {
    local: NodeId,
    neighbors: Vec<NodeId>,
    book: Arc<Vec<SocketAddr>>,
    local_addr: SocketAddr,
    clock: Arc<VirtualClock>,
    /// Write-side connections, keyed by destination node.
    conns: Mutex<BTreeMap<usize, TcpStream>>,
    inbound: Arc<Mutex<Inbound>>,
    stop: Arc<AtomicBool>,
    /// Live metric handles (frames/bytes in and out, connect retries,
    /// decode errors, probes answered).
    stats: Arc<TcpStats>,
    accept_thread: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", &self.local)
            .field("addr", &self.local_addr)
            .field("neighbors", &self.neighbors)
            .finish()
    }
}

impl TcpTransport {
    /// Starts a transport endpoint for `local` on a pre-bound
    /// `listener`. `book[i]` is node *i*'s listen address; `neighbors`
    /// are `local`'s adjacent nodes (ascending). The accept loop starts
    /// immediately, so peers may connect before the host begins driving
    /// the protocol. `registry` receives the transport's `tcp.*` metric
    /// series; `health` answers probe connections.
    pub fn new(
        local: NodeId,
        listener: TcpListener,
        book: Arc<Vec<SocketAddr>>,
        mut neighbors: Vec<NodeId>,
        clock: Arc<VirtualClock>,
        registry: &MetricsRegistry,
        health: Arc<HealthState>,
    ) -> Result<TcpTransport, NetError> {
        neighbors.sort_unstable();
        let local_addr = listener.local_addr().map_err(|source| NetError::Io {
            context: "local_addr",
            source,
        })?;
        let inbound = Arc::new(Mutex::new(Inbound {
            handler: None,
            pending: Vec::new(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(TcpStats::new(registry));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let inbound = Arc::clone(&inbound);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let readers = Arc::clone(&readers);
            let nodes = book.len();
            std::thread::spawn(move || {
                accept_loop(
                    listener, local, nodes, inbound, stop, stats, health, readers,
                );
            })
        };

        Ok(TcpTransport {
            local,
            neighbors,
            book,
            local_addr,
            clock,
            conns: Mutex::new(BTreeMap::new()),
            inbound,
            stop,
            stats,
            accept_thread: Some(accept_thread),
            readers,
        })
    }

    /// The address this endpoint accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many inbound frames failed to decode (each closed its
    /// connection).
    pub fn decode_errors(&self) -> u64 {
        self.stats.decode_errors.get()
    }

    /// Connects to `to` with capped-backoff retry and sends the hello.
    fn connect(&self, to: NodeId) -> Result<TcpStream, NetError> {
        let addr = *self
            .book
            .get(to.0)
            .ok_or(NetError::UnknownPeer { peer: to })?;
        let mut backoff = Duration::from_millis(1);
        let mut last = None;
        for attempt in 0..CONNECT_ATTEMPTS {
            if self.stop.load(Ordering::SeqCst) {
                return Err(NetError::Shutdown);
            }
            if attempt > 0 {
                self.stats.connect_retries.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
            }
            self.stats.connect_attempts.inc();
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    let mut hello = [0u8; HELLO_LEN];
                    hello[0..2].copy_from_slice(&HELLO_MAGIC);
                    hello[2] = HELLO_VERSION;
                    hello[3] = HELLO_ROLE_PEER;
                    let id = u32::try_from(self.local.0).map_err(|_| {
                        NetError::Frame(frame::FrameError::NodeTooLarge { node: self.local.0 })
                    })?;
                    hello[4..8].copy_from_slice(&id.to_be_bytes());
                    match stream.write_all(&hello) {
                        Ok(()) => return Ok(stream),
                        Err(source) => last = Some(source),
                    }
                }
                Err(source) => last = Some(source),
            }
        }
        match last {
            Some(source) => Err(NetError::Io {
                context: "connect",
                source,
            }),
            None => Err(NetError::PeerUnavailable { peer: to }),
        }
    }

    /// Writes `bytes` to `to`, establishing or re-establishing the
    /// connection as needed (one reconnect attempt on a stale write
    /// half).
    fn write_frame(&self, to: NodeId, bytes: &[u8]) -> Result<(), NetError> {
        let mut conns = lock(&self.conns);
        if let std::collections::btree_map::Entry::Vacant(e) = conns.entry(to.0) {
            let stream = self.connect(to)?;
            e.insert(stream);
        }
        // The entry exists now; a vacant entry above was just filled.
        if let Some(stream) = conns.get_mut(&to.0) {
            if stream.write_all(bytes).is_ok() {
                return Ok(());
            }
        }
        // Stale connection (peer restarted, half-closed socket): retire it
        // and retry once on a fresh one.
        conns.remove(&to.0);
        let mut stream = self.connect(to)?;
        let result = stream.write_all(bytes).map_err(|source| NetError::Io {
            context: "write",
            source,
        });
        conns.insert(to.0, stream);
        result
    }
}

impl Transport for TcpTransport {
    fn local_node(&self) -> NodeId {
        self.local
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.neighbors.clone()
    }

    fn local_now(&self) -> SimTime {
        self.clock.now()
    }

    fn send_to(&self, to: NodeId, msg: &AthenaMsg) -> Result<(), NetError> {
        if self.stop.load(Ordering::SeqCst) {
            return Err(NetError::Shutdown);
        }
        if !self.neighbors.contains(&to) {
            return Err(NetError::NotNeighbor {
                from: self.local,
                to,
            });
        }
        let bytes = frame::encode(msg)?;
        self.write_frame(to, &bytes)?;
        self.stats.frames_out.inc();
        self.stats.bytes_out.add(bytes.len() as u64);
        Ok(())
    }

    fn set_message_handler(&mut self, mut handler: MessageHandler) {
        let mut inbound = lock(&self.inbound);
        for (from, msg) in inbound.pending.drain(..) {
            handler(from, msg);
        }
        inbound.handler = Some(handler);
    }

    fn shutdown(&mut self) -> Result<(), NetError> {
        if self.stop.swap(true, Ordering::SeqCst) {
            return Ok(()); // idempotent
        }
        // Unblock the accept loop with a wake-up connection; readers
        // notice the flag at their next poll tick.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.readers).drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        lock(&self.conns).clear();
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Everything a reader thread needs, cloneable per accepted connection.
struct ReaderCtx {
    local: NodeId,
    nodes: usize,
    inbound: Arc<Mutex<Inbound>>,
    stop: Arc<AtomicBool>,
    stats: Arc<TcpStats>,
    health: Arc<HealthState>,
}

impl Clone for ReaderCtx {
    fn clone(&self) -> Self {
        ReaderCtx {
            local: self.local,
            nodes: self.nodes,
            inbound: Arc::clone(&self.inbound),
            stop: Arc::clone(&self.stop),
            stats: Arc::clone(&self.stats),
            health: Arc::clone(&self.health),
        }
    }
}

/// Accepts connections until the stop flag rises, spawning one reader
/// per connection.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    local: NodeId,
    nodes: usize,
    inbound: Arc<Mutex<Inbound>>,
    stop: Arc<AtomicBool>,
    stats: Arc<TcpStats>,
    health: Arc<HealthState>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let ctx = ReaderCtx {
        local,
        nodes,
        inbound,
        stop,
        stats,
        health,
    };
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if ctx.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if ctx.stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from shutdown()
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let ctx_r = ctx.clone();
        let handle = std::thread::spawn(move || {
            reader_loop(stream, ctx_r);
        });
        lock(&readers).push(handle);
    }
}

/// Reads the hello, then dispatches on the role byte: peer connections
/// stream protocol frames to the handler; prober connections are
/// answered with health reports below the protocol seam. Any malformed
/// input (bad hello, bad header, undecodable payload) closes the
/// connection; the process never panics on wire bytes.
fn reader_loop(mut stream: TcpStream, ctx: ReaderCtx) {
    let mut hello = [0u8; HELLO_LEN];
    if read_exact_polled(&mut stream, &mut hello, &ctx.stop).is_err() {
        return;
    }
    if hello[0..2] != HELLO_MAGIC || hello[2] != HELLO_VERSION {
        ctx.stats.decode_errors.inc();
        return;
    }
    if hello[3] == HELLO_ROLE_PROBER {
        prober_loop(stream, &ctx);
        return;
    }
    if hello[3] != HELLO_ROLE_PEER {
        ctx.stats.decode_errors.inc();
        return;
    }
    let from = u32::from_be_bytes([hello[4], hello[5], hello[6], hello[7]]) as usize;
    if from >= ctx.nodes {
        ctx.stats.decode_errors.inc();
        return;
    }
    let from = NodeId(from);

    let mut header = [0u8; frame::HEADER_LEN];
    loop {
        if read_exact_polled(&mut stream, &mut header, &ctx.stop).is_err() {
            return;
        }
        let len = match frame::payload_len(&header) {
            Ok(len) => len,
            Err(_) => {
                ctx.stats.decode_errors.inc();
                return;
            }
        };
        let mut buf = vec![0u8; frame::HEADER_LEN + len];
        buf[..frame::HEADER_LEN].copy_from_slice(&header);
        if read_exact_polled(&mut stream, &mut buf[frame::HEADER_LEN..], &ctx.stop).is_err() {
            return;
        }
        // Control frames are not legal on peer connections: frame::decode
        // rejects them, which closes this connection like any other
        // malformed input.
        match frame::decode(&buf) {
            Ok(msg) => {
                ctx.stats.frames_in.inc();
                ctx.stats.bytes_in.add(buf.len() as u64);
                lock(&ctx.inbound).dispatch(from, msg);
            }
            Err(_) => {
                ctx.stats.decode_errors.inc();
                return;
            }
        }
    }
}

/// Serves one prober connection: each [`ControlMsg::HealthProbe`] frame
/// is answered with a [`ControlMsg::HealthReport`] on the same stream.
/// Anything else closes the connection. The Athena protocol (and its
/// trace) never observes this exchange.
fn prober_loop(mut stream: TcpStream, ctx: &ReaderCtx) {
    let mut header = [0u8; frame::HEADER_LEN];
    loop {
        if read_exact_polled(&mut stream, &mut header, &ctx.stop).is_err() {
            return;
        }
        let len = match frame::payload_len(&header) {
            Ok(len) => len,
            Err(_) => {
                ctx.stats.decode_errors.inc();
                return;
            }
        };
        let mut buf = vec![0u8; frame::HEADER_LEN + len];
        buf[..frame::HEADER_LEN].copy_from_slice(&header);
        if read_exact_polled(&mut stream, &mut buf[frame::HEADER_LEN..], &ctx.stop).is_err() {
            return;
        }
        match frame::decode_any(&buf) {
            Ok(WireFrame::Control(ControlMsg::HealthProbe { seq })) => {
                let report = ctx.health.report(ctx.local, seq);
                let Ok(reply) = frame::encode_control(&ControlMsg::HealthReport(report)) else {
                    return;
                };
                if stream.write_all(&reply).is_err() {
                    return;
                }
                ctx.stats.probes_answered.inc();
            }
            Ok(_) | Err(_) => {
                ctx.stats.decode_errors.inc();
                return;
            }
        }
    }
}

/// `read_exact` that survives the read-timeout polling: partial reads
/// accumulate across timeouts, and the stop flag aborts cleanly between
/// chunks (never mid-frame corruption — a frame is either fully read or
/// the connection is abandoned).
fn read_exact_polled(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> Result<(), ()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(()), // peer closed
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return Err(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    Ok(())
}
